"""Scalar schedules for annealed hyperparameters."""

from __future__ import annotations

__all__ = ["linear_schedule"]


def linear_schedule(start: float, end: float, fraction: float) -> float:
    """Linear interpolation clamped to [start, end] by ``fraction`` in [0,1].

    >>> linear_schedule(1.0, 0.0, 0.25)
    0.75
    """
    fraction = min(max(fraction, 0.0), 1.0)
    return start + (end - start) * fraction
