"""Physics tests for the grid thermal solver (the HotSpot stand-in)."""

import numpy as np
import pytest

from repro.chiplet import Chiplet, ChipletSystem, Interposer, Placement
from repro.thermal import GridThermalSolver, ThermalConfig
from repro.thermal.config import KELVIN_OFFSET
from repro.thermal.materials import MATERIALS, Material
from repro.thermal.stack import Layer, LayerStack, default_chiplet_stack


def one_die_system(interposer, power=50.0, w=8.0, h=8.0):
    return ChipletSystem(
        "one", interposer, (Chiplet("die", w, h, power),)
    )


class TestBasicPhysics:
    def test_zero_power_is_ambient(self, small_interposer, small_config, small_solver):
        system = one_die_system(small_interposer, power=0.0)
        p = Placement(system)
        p.place("die", 10, 10)
        result = small_solver.evaluate(p)
        assert result.max_temperature == pytest.approx(
            small_config.ambient, abs=1e-6
        )

    def test_power_raises_temperature(self, small_interposer, small_config, small_solver):
        system = one_die_system(small_interposer, power=50.0)
        p = Placement(system)
        p.place("die", 10, 10)
        result = small_solver.evaluate(p)
        assert result.max_temperature > small_config.ambient + 5.0

    def test_linearity_in_power(self, small_interposer, small_solver, small_config):
        """Doubling power doubles the rise (LTI network)."""
        rises = []
        for power in (20.0, 40.0):
            system = one_die_system(small_interposer, power=power)
            p = Placement(system)
            p.place("die", 11, 11)
            result = small_solver.evaluate(p)
            rises.append(result.max_temperature - small_config.ambient)
        assert rises[1] == pytest.approx(2.0 * rises[0], rel=1e-9)

    def test_superposition_exact_homogeneous(
        self, small_interposer, small_solver, small_config
    ):
        """With the homogeneous chiplet layer, fields superpose exactly."""
        sys_a = one_die_system(small_interposer, power=30.0)
        sys_b = ChipletSystem(
            "b", small_interposer, (Chiplet("die2", 6, 6, 20.0),)
        )
        both = ChipletSystem(
            "ab",
            small_interposer,
            (Chiplet("die", 8, 8, 30.0), Chiplet("die2", 6, 6, 20.0)),
        )
        pa = Placement(sys_a)
        pa.place("die", 2, 2)
        pb = Placement(sys_b)
        pb.place("die2", 20, 20)
        pab = Placement(both)
        pab.place("die", 2, 2)
        pab.place("die2", 20, 20)
        field_a = small_solver.evaluate(pa).grid_temperatures - small_config.ambient
        field_b = small_solver.evaluate(pb).grid_temperatures - small_config.ambient
        field_ab = small_solver.evaluate(pab).grid_temperatures - small_config.ambient
        assert np.allclose(field_ab, field_a + field_b, atol=1e-8)

    def test_energy_balance(self, small_interposer, small_config):
        """Heat leaving through the boundaries equals injected power."""
        solver = GridThermalSolver(small_interposer, small_config)
        system = one_die_system(small_interposer, power=42.0)
        p = Placement(system)
        p.place("die", 11, 11)
        result = solver.evaluate(p)
        temps = result.grid_temperatures
        static = solver._static
        top = temps[-1].ravel()
        out_top = (static["g_ambient_top"] * (top - small_config.ambient)).sum()
        bottom = temps[0].ravel()
        out_bot = (static["g_ambient_bot"] * (bottom - small_config.ambient)).sum()
        assert out_top + out_bot == pytest.approx(42.0, rel=1e-6)

    def test_hotter_near_die(self, small_interposer, small_config, small_solver):
        system = one_die_system(small_interposer, power=50.0)
        p = Placement(system)
        p.place("die", 11, 11)  # center-ish
        temps = small_solver.evaluate(p).grid_temperatures
        chip = temps[small_config.stack.chiplet_layer_index]
        center = chip[chip.shape[0] // 2, chip.shape[1] // 2]
        corner = chip[0, 0]
        assert center > corner + 1.0

    def test_per_die_temperatures_ordered_by_power_density(
        self, small_system, small_solver
    ):
        p = Placement(small_system)
        p.place("hot", 2, 2)
        p.place("warm", 2, 22)
        p.place("cold", 24, 2)
        result = small_solver.evaluate(p)
        assert (
            result.chiplet_temperatures["hot"]
            > result.chiplet_temperatures["warm"]
            > result.chiplet_temperatures["cold"]
        )
        assert result.hottest_chiplet == "hot"
        assert result.max_temperature == result.chiplet_temperatures["hot"]

    def test_empty_placement(self, small_system, small_solver, small_config):
        result = small_solver.evaluate(Placement(small_system))
        assert result.max_temperature == small_config.ambient


class TestSolverConfigurations:
    def test_factorization_reuse_matches_direct(self, small_interposer, small_config):
        fresh = GridThermalSolver(small_interposer, small_config)
        cached = GridThermalSolver(
            small_interposer, small_config, reuse_factorization=True
        )
        system = one_die_system(small_interposer)
        p = Placement(system)
        p.place("die", 5, 12)
        t1 = fresh.evaluate(p).max_temperature
        t2 = cached.evaluate(p).max_temperature
        t3 = cached.evaluate(p).max_temperature  # reuse path
        assert t1 == pytest.approx(t2, abs=1e-9)
        assert t2 == pytest.approx(t3, abs=1e-9)

    def test_reused_factorization_bitwise_identical(
        self, small_interposer, small_config
    ):
        """The docstring's promise, verified to the last bit.

        With the homogeneous chiplet layer the conductance matrix is
        placement-independent, so the cached LU must give *bitwise*
        identical temperature fields to a fresh ``spsolve`` for any
        placement — including ones the factorization never saw.
        """
        fresh = GridThermalSolver(small_interposer, small_config)
        cached = GridThermalSolver(
            small_interposer, small_config, reuse_factorization=True
        )
        system = one_die_system(small_interposer)
        for x, y in ((5.0, 12.0), (0.0, 0.0), (17.0, 3.0)):
            p = Placement(system)
            p.place("die", x, y)
            footprints = p.footprints()
            powers = {"die": system.chiplet("die").power}
            t_fresh = fresh.solve_footprints(footprints, powers)
            t_cached = cached.solve_footprints(footprints, powers)
            assert np.array_equal(t_fresh, t_cached)
        assert cached._factor is not None
        assert fresh._factor is None

    def test_heterogeneous_layer_ignores_reuse(self, small_interposer):
        """Heterogeneous mode must re-assemble per placement.

        The matrix depends on die coverage there, so the solver ignores
        ``reuse_factorization`` (documented on the class) rather than
        serving stale temperatures from an unrelated placement.
        """
        config = ThermalConfig(
            rows=16, cols=16, package_margin=6.0,
            heterogeneous_chiplet_layer=True,
        )
        solver = GridThermalSolver(
            small_interposer, config, reuse_factorization=True
        )
        reference = GridThermalSolver(small_interposer, config)
        system = one_die_system(small_interposer)
        for x, y in ((5.0, 12.0), (15.0, 2.0)):
            p = Placement(system)
            p.place("die", x, y)
            footprints = p.footprints()
            powers = {"die": system.chiplet("die").power}
            assert np.array_equal(
                solver.solve_footprints(footprints, powers),
                reference.solve_footprints(footprints, powers),
            )
        assert solver._factor is None  # no stale factorization was cached

    def test_heterogeneous_layer_changes_result(self, small_interposer):
        config_hom = ThermalConfig(rows=24, cols=24, package_margin=6.0)
        config_het = ThermalConfig(
            rows=24, cols=24, package_margin=6.0, heterogeneous_chiplet_layer=True
        )
        system = one_die_system(small_interposer)
        p = Placement(system)
        p.place("die", 11, 11)
        t_hom = GridThermalSolver(small_interposer, config_hom).evaluate(p)
        t_het = GridThermalSolver(small_interposer, config_het).evaluate(p)
        # Underfill between dies conducts worse laterally -> hotter die.
        assert t_het.max_temperature > t_hom.max_temperature

    def test_adiabatic_bottom(self, small_interposer):
        config = ThermalConfig(rows=24, cols=24, package_margin=6.0, r_board=None)
        solver = GridThermalSolver(small_interposer, config)
        system = one_die_system(small_interposer)
        p = Placement(system)
        p.place("die", 11, 11)
        result = solver.evaluate(p)
        assert result.max_temperature > config.ambient

    def test_stronger_convection_runs_cooler(self, small_interposer):
        system = one_die_system(small_interposer)
        temps = []
        for r_conv in (0.5, 0.1):
            config = ThermalConfig(
                rows=24, cols=24, package_margin=6.0, r_convection=r_conv
            )
            p = Placement(system)
            p.place("die", 11, 11)
            temps.append(
                GridThermalSolver(small_interposer, config).evaluate(p).max_temperature
            )
        assert temps[1] < temps[0]

    def test_bigger_margin_cools_edge_dies(self, small_interposer):
        """A wider package overhang gives edge dies more lateral escape."""
        system = one_die_system(small_interposer)
        temps = []
        for margin in (2.0, 12.0):
            config = ThermalConfig(rows=32, cols=32, package_margin=margin)
            p = Placement(system)
            p.place("die", 0.0, 0.0)  # corner die
            temps.append(
                GridThermalSolver(small_interposer, config).evaluate(p).max_temperature
            )
        assert temps[1] < temps[0]


class TestStackAndMaterials:
    def test_material_validation(self):
        with pytest.raises(ValueError):
            Material("bad", -1.0)

    def test_conductivity_mm(self):
        assert MATERIALS["copper"].conductivity_mm == pytest.approx(0.4)

    def test_stack_needs_chiplet_layer(self):
        with pytest.raises(ValueError):
            LayerStack((Layer("only", MATERIALS["silicon"], 1.0),))

    def test_stack_rejects_two_chiplet_layers(self):
        with pytest.raises(ValueError):
            LayerStack(
                (
                    Layer("a", MATERIALS["silicon"], 1.0, is_chiplet_layer=True),
                    Layer("b", MATERIALS["silicon"], 1.0, is_chiplet_layer=True),
                )
            )

    def test_default_stack_shape(self):
        stack = default_chiplet_stack()
        assert stack.n_layers == 6
        assert stack.layers[stack.chiplet_layer_index].name == "chiplets"
        assert stack.total_thickness == pytest.approx(8.82)

    def test_layer_index_lookup(self):
        stack = default_chiplet_stack()
        assert stack.layer_index("sink") == 5
        with pytest.raises(KeyError):
            stack.layer_index("ghost")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ThermalConfig(rows=1)
        with pytest.raises(ValueError):
            ThermalConfig(r_convection=0.0)
        with pytest.raises(ValueError):
            ThermalConfig(package_margin=-1.0)
        with pytest.raises(ValueError):
            ThermalConfig(r_board=0.0)

    def test_ambient_celsius(self):
        config = ThermalConfig()
        assert config.ambient_celsius == pytest.approx(45.0)
        assert config.ambient == pytest.approx(45.0 + KELVIN_OFFSET)
