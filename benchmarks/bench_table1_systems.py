"""Table I: four methods on Multi-GPU, CPU-DRAM and Ascend 910.

One benchmark per system; each runs all four methods at the configured
budget, prints the measured-vs-paper block, and appends to the JSON
artifact.  The *shape* to reproduce: RLPlanner variants beat TAP-2.5D on
reward at matched-or-lower runtime, and TAP-2.5D(HotSpot) is the slowest
per evaluation.
"""

import json
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.experiments.report import format_comparison, format_table
from repro.experiments.runner import run_all_methods
from repro.systems import get_benchmark

ARTIFACT_DIR = Path("bench_results")


@pytest.mark.parametrize("system_name", ["multi_gpu", "cpu_dram", "ascend910"])
def test_table1_system(benchmark, bench_budget, system_name):
    spec = get_benchmark(system_name)
    results = benchmark.pedantic(
        run_all_methods,
        args=(spec, bench_budget),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(results, title=f"Table I — {system_name}"))
    print(format_comparison(results, spec.paper_reference, system_name))

    ARTIFACT_DIR.mkdir(exist_ok=True)
    path = ARTIFACT_DIR / f"table1_{system_name}.json"
    path.write_text(
        json.dumps(
            {
                "results": [asdict(r) for r in results],
                "paper": spec.paper_reference,
                "budget": asdict(bench_budget),
            },
            indent=2,
            default=str,
        )
    )

    by_method = {r.method: r for r in results}
    # Every method produced a legal, evaluated floorplan.
    assert len(by_method) == 4
    for res in results:
        assert res.reward < 0.0
        assert res.wirelength > 0.0
    # Shape: the solver-in-the-loop SA pays far more per evaluation.
    hotspot = by_method["TAP-2.5D(HotSpot)"]
    evals = hotspot.extra["evaluations"]
    assert hotspot.runtime_s / max(evals, 1) > 0.05
