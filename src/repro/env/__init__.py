"""Sequential chiplet-placement MDP."""

from repro.env.floorplan_env import EnvConfig, FloorplanEnv, StepResult
from repro.env.mask import feasible_cells
from repro.env.state import ObservationBuilder

__all__ = [
    "EnvConfig",
    "FloorplanEnv",
    "StepResult",
    "feasible_cells",
    "ObservationBuilder",
]
