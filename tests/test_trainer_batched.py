"""Regression harness for the batched rollout engine.

Two guarantees are locked in here:

1. **Golden equivalence** — ``batch_size=1`` training reproduces the
   pre-refactor sequential trainer exactly.  The golden trace in
   ``tests/data/golden_sequential_trainer.json`` was generated from the
   seed trainer *before* the batched engine landed (regenerate only
   deliberately, via ``scripts/gen_golden_trainer.py``).  The comparison
   is strict; it pins this platform's BLAS behavior, which is the
   configuration the repo's tier-1 gate runs on.
2. **Batch-width invariance** — any ``batch_size >= 2`` produces the
   same trajectories as any other (per-episode RNG streams plus
   shape-stable per-row GEMMs), so the knob trades only speed.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from golden_utils import (
    GOLDEN_PATH,
    build_golden_env,
    build_golden_trainer,
    run_golden,
)
from repro.agent import TrainerConfig

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def golden_env():
    return build_golden_env()


@pytest.fixture(scope="module")
def golden_record():
    return json.loads((REPO_ROOT / GOLDEN_PATH).read_text())


class TestGoldenEquivalence:
    def test_batch_size_1_reproduces_pre_refactor_trainer(
        self, golden_env, golden_record
    ):
        record = run_golden(build_golden_trainer(golden_env))
        assert record["epochs"] == golden_record["epochs"]
        assert record["mean_rewards"] == pytest.approx(
            golden_record["mean_rewards"], rel=1e-12
        )
        assert record["max_rewards"] == pytest.approx(
            golden_record["max_rewards"], rel=1e-12
        )
        assert record["best_reward"] == pytest.approx(
            golden_record["best_reward"], rel=1e-12
        )
        assert record["deadlock_count"] == golden_record["deadlock_count"]
        # The actual product: the best floorplan, position for position.
        assert record["best_placement"] == golden_record["best_placement"]


class TestBatchWidthInvariance:
    def test_widths_produce_identical_trajectories(self, golden_env):
        records = {
            width: run_golden(
                build_golden_trainer(golden_env, batch_size=width)
            )
            for width in (2, 3, 6)
        }
        reference = records[2]
        for width in (3, 6):
            assert records[width]["mean_rewards"] == reference["mean_rewards"]
            assert records[width]["max_rewards"] == reference["max_rewards"]
            assert records[width]["best_reward"] == reference["best_reward"]
            assert (
                records[width]["best_placement"] == reference["best_placement"]
            )

    def test_batched_reproducible_with_seed(self, golden_env):
        first = run_golden(build_golden_trainer(golden_env, batch_size=4))
        second = run_golden(build_golden_trainer(golden_env, batch_size=4))
        assert first["mean_rewards"] == second["mean_rewards"]
        assert first["best_placement"] == second["best_placement"]


class TestBatchedCollection:
    def test_collect_episodes_counts(self, golden_env):
        trainer = build_golden_trainer(golden_env, batch_size=4)
        collected = trainer.collect_episodes(6)  # 4 + 2: uneven final wave
        assert len(collected) == 6
        for episode, info in collected:
            assert episode.length == golden_env.episode_length or info.get(
                "deadlock"
            )
            assert "breakdown" in info or info.get("deadlock")

    def test_width_larger_than_epoch_clamps(self, golden_env):
        trainer = build_golden_trainer(
            golden_env, batch_size=64, episodes_per_epoch=3, epochs=1
        )
        result = trainer.train()
        assert result.epochs_run == 1
        assert result.best_breakdown is not None

    def test_rnd_variant_runs_batched(self, golden_env):
        trainer = build_golden_trainer(
            golden_env, batch_size=3, epochs=2, use_rnd=True
        )
        result = trainer.train()
        assert "rnd_loss" in result.history[-1]

    def test_best_placement_reevaluates_to_best_reward(self, golden_env):
        trainer = build_golden_trainer(golden_env, batch_size=6, epochs=2)
        result = trainer.train()
        re_eval = golden_env.reward_calculator.evaluate(result.best_placement)
        assert re_eval.reward == pytest.approx(result.best_reward, abs=1e-6)

    def test_batch_size_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(batch_size=0)
