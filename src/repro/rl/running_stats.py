"""Streaming mean/variance tracker (Welford / parallel-batch update).

Used to normalize RND intrinsic rewards and predictor inputs, exactly as
in Burda et al. (2018).
"""

from __future__ import annotations

import numpy as np

__all__ = ["RunningMeanStd"]


class RunningMeanStd:
    """Tracks elementwise mean and variance of a stream of batches."""

    def __init__(self, shape: tuple = (), epsilon: float = 1e-4):
        self.mean = np.zeros(shape, dtype=np.float64)
        self.var = np.ones(shape, dtype=np.float64)
        self.count = float(epsilon)

    def update(self, batch: np.ndarray) -> None:
        """Fold a batch (leading axis = samples) into the statistics."""
        batch = np.asarray(batch, dtype=np.float64)
        if batch.ndim == 0:
            batch = batch.reshape(1)
        batch_mean = batch.mean(axis=0)
        batch_var = batch.var(axis=0)
        batch_count = batch.shape[0]
        self._merge(batch_mean, batch_var, batch_count)

    def _merge(self, batch_mean, batch_var, batch_count) -> None:
        delta = batch_mean - self.mean
        total = self.count + batch_count
        new_mean = self.mean + delta * batch_count / total
        m_self = self.var * self.count
        m_batch = batch_var * batch_count
        m_combined = m_self + m_batch + delta**2 * self.count * batch_count / total
        self.mean = new_mean
        self.var = m_combined / total
        self.count = total

    @property
    def std(self) -> np.ndarray:
        return np.sqrt(self.var + 1e-12)

    def normalize(self, values: np.ndarray, center: bool = True) -> np.ndarray:
        """(x - mean) / std, or x / std when ``center`` is False."""
        values = np.asarray(values, dtype=np.float64)
        if center:
            return (values - self.mean) / self.std
        return values / self.std
