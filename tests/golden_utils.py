"""Fixed scenario shared by the golden-trainer test and its generator.

The golden regression (``tests/data/golden_sequential_trainer.json``)
pins the sequential (``batch_size=1``) training path to the exact
trajectory the pre-refactor trainer produced.  Both the checked-in
generator (``scripts/gen_golden_trainer.py``) and the regression test
import this module so the scenario can never drift between them.
"""

from __future__ import annotations

from repro.agent import RLPlannerTrainer, TrainerConfig
from repro.chiplet import Chiplet, ChipletSystem, Interposer, Net
from repro.env import EnvConfig, FloorplanEnv
from repro.reward import RewardCalculator, RewardConfig
from repro.rl import PPOConfig
from repro.thermal import FastThermalModel, ThermalConfig, characterize_tables

GOLDEN_SEED = 123
GOLDEN_PATH = "tests/data/golden_sequential_trainer.json"


def build_golden_system() -> ChipletSystem:
    """Three-die system; mirrors the shared test fixture deliberately."""
    return ChipletSystem(
        "golden",
        Interposer(30.0, 30.0),
        (
            Chiplet("hot", 8.0, 8.0, 60.0, kind="gpu"),
            Chiplet("warm", 6.0, 6.0, 15.0, kind="cpu"),
            Chiplet("cold", 4.0, 6.0, 3.0, kind="io"),
        ),
        (
            Net("hot", "warm", wires=512, name="hw"),
            Net("warm", "cold", wires=128, name="wc"),
        ),
    )


def build_golden_env(system: ChipletSystem | None = None) -> FloorplanEnv:
    system = system or build_golden_system()
    config = ThermalConfig(rows=32, cols=32, package_margin=8.0)
    sizes = []
    for chiplet in system.chiplets:
        sizes.append((chiplet.width, chiplet.height))
        if chiplet.rotatable:
            sizes.append((chiplet.height, chiplet.width))
    tables = characterize_tables(
        system.interposer, sizes, config, position_samples=(5, 5)
    )
    calc = RewardCalculator(
        FastThermalModel(tables, config),
        RewardConfig(lambda_wl=1e-4, use_bump_assignment=False),
    )
    return FloorplanEnv(system, calc, EnvConfig(grid_size=12))


def build_golden_trainer(env: FloorplanEnv, **overrides) -> RLPlannerTrainer:
    defaults = dict(
        epochs=4,
        episodes_per_epoch=6,
        seed=GOLDEN_SEED,
        log_every=0,
        encoder_channels=(4, 8, 8),
        ppo=PPOConfig(minibatch_size=8, update_epochs=2),
    )
    defaults.update(overrides)
    return RLPlannerTrainer(env, TrainerConfig(**defaults))


def run_golden(trainer: RLPlannerTrainer) -> dict:
    """Train and distill the result into a JSON-serializable record."""
    result = trainer.train()
    return {
        "seed": trainer.config.seed,
        "epochs": result.epochs_run,
        "mean_rewards": [h["mean_reward"] for h in result.history],
        "max_rewards": [h["max_reward"] for h in result.history],
        "best_reward": result.best_reward,
        "best_placement": (
            result.best_placement.as_dict()
            if result.best_placement is not None
            else None
        ),
        "deadlock_count": result.deadlock_count,
    }
