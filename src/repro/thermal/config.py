"""Thermal solver configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.thermal.stack import LayerStack, default_chiplet_stack

__all__ = ["ThermalConfig"]

KELVIN_OFFSET = 273.15


@dataclass(frozen=True)
class ThermalConfig:
    """Parameters shared by the grid solver and the surrogate.

    Attributes
    ----------
    rows, cols:
        Grid resolution of every layer (HotSpot grid mode analog); the
        grid spans the whole package (interposer + margin).
    package_margin:
        Overhang of the spreader/sink package beyond the interposer on
        each side, in mm.  A realistic margin keeps the placement region
        away from the package's thermal boundary.
    ambient:
        Ambient temperature in K (HotSpot default 45 degC).
    r_convection:
        Total convective resistance sink-top -> ambient in K/W
        (HotSpot's ``r_convec``), distributed over the sink cells in
        proportion to cell area.
    r_board:
        Total secondary-path resistance interposer-bottom -> ambient in
        K/W; ``None`` makes the bottom adiabatic.
    stack:
        Layer stack (see :mod:`repro.thermal.stack`).
    heterogeneous_chiplet_layer:
        When True, cells of the chiplet layer blend silicon (under dies)
        with underfill (between dies), making the conductance matrix
        placement-dependent.  HotSpot models the die layer as homogeneous
        silicon with only the power map varying, so the default is False;
        the surrogate's LTI assumption is then exact up to table
        interpolation, matching the paper's sub-Kelvin errors.
    """

    rows: int = 64
    cols: int = 64
    package_margin: float = 12.0
    ambient: float = 45.0 + KELVIN_OFFSET
    r_convection: float = 0.25
    r_board: float | None = 20.0
    stack: LayerStack = field(default_factory=default_chiplet_stack)
    heterogeneous_chiplet_layer: bool = False

    def __post_init__(self) -> None:
        if self.rows < 2 or self.cols < 2:
            raise ValueError("thermal grid needs at least 2x2 cells")
        if self.package_margin < 0:
            raise ValueError("package_margin cannot be negative")
        if self.ambient <= 0:
            raise ValueError("ambient must be in Kelvin and positive")
        if self.r_convection <= 0:
            raise ValueError("r_convection must be positive")
        if self.r_board is not None and self.r_board <= 0:
            raise ValueError("r_board must be positive or None")

    @property
    def ambient_celsius(self) -> float:
        return self.ambient - KELVIN_OFFSET
