"""Tests for ASCII rendering."""

import numpy as np
import pytest

from repro.chiplet import Placement
from repro.viz import render_floorplan, render_thermal_map


class TestFloorplanRendering:
    def test_contains_legend_and_dies(self, small_system):
        placement = Placement(small_system)
        placement.place("hot", 0, 0)
        placement.place("warm", 20, 20)
        art = render_floorplan(placement, width=40, height=20)
        assert "A = hot" in art
        assert "B = warm" in art
        body = [line for line in art.splitlines() if line.startswith("|")]
        # Die A sits at the origin -> bottom-left of the flipped canvas.
        lower_half = "".join(body[len(body) // 2 :])
        upper_half = "".join(body[: len(body) // 2])
        assert "A" in lower_half and "A" not in upper_half
        assert "B" in upper_half
        assert "small" in art  # system name in header

    def test_empty_placement(self, small_system):
        art = render_floorplan(Placement(small_system), width=20, height=10)
        assert art.count(".") > 100

    def test_dimensions(self, small_system):
        placement = Placement(small_system)
        placement.place("hot", 5, 5)
        art = render_floorplan(placement, width=30, height=12)
        body_rows = [
            line for line in art.splitlines() if line.startswith("|")
        ]
        assert len(body_rows) == 12
        assert all(len(row) == 32 for row in body_rows)


class TestThermalRendering:
    def test_shade_extremes(self):
        field = np.zeros((10, 10))
        field[5, 5] = 100.0
        art = render_thermal_map(field, width=10, height=10)
        assert "@" in art
        assert "min 0.00 K" in art
        assert "max 100.00 K" in art

    def test_constant_field(self):
        art = render_thermal_map(np.full((5, 5), 300.0), width=5, height=5)
        assert "min 300.00" in art

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            render_thermal_map(np.zeros(5))

    def test_resampling_shapes(self):
        art = render_thermal_map(np.random.rand(64, 64), width=20, height=8)
        body_rows = [line for line in art.splitlines() if line.startswith("|")]
        assert len(body_rows) == 8
