"""One-time characterization of the fast thermal model's tables.

For each distinct die size appearing in a system (including the rotated
orientation of rotatable dies):

1. the die is placed alone at every point of an ``ny x nx`` grid of
   feasible center positions and the package is solved; the hottest-cell
   rise per watt at each position fills the **2D self-resistance table**;
2. from the same solves, the temperature rise per watt of every
   chiplet-layer cell *outside* the die is binned by its distance to the
   die center, giving the **1D mutual-resistance table** for that die
   acting as a heat source (averaged over positions).

This is exactly the paper's characterization recipe, with our grid
solver standing in for HotSpot.  Tables depend only on the package
geometry and the set of die sizes, so they are cached to ``.npz`` keyed
by a fingerprint of those inputs.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np

from repro.chiplet import ChipletSystem, Interposer
from repro.geometry import Rect
from repro.parallel.cache import FileLock, atomic_replace
from repro.thermal.config import ThermalConfig
from repro.thermal.fast_model import ResistanceTables, SizeTables, size_key
from repro.thermal.grid_solver import GridThermalSolver
from repro.utils import get_logger

__all__ = [
    "characterize_tables",
    "characterize_for_system",
    "load_or_characterize",
    "tables_fingerprint",
]

_REFERENCE_POWER = 10.0  # W; the network is linear so the value is arbitrary
_logger = get_logger("thermal.characterize")


def tables_fingerprint(
    interposer: Interposer,
    sizes,
    config: ThermalConfig,
    position_samples: tuple,
) -> str:
    """Stable hash identifying a characterization run's inputs."""
    stack_desc = ";".join(
        f"{layer.name}:{layer.material.name}:{layer.thickness}:"
        f"{layer.is_chiplet_layer}:{layer.fill_material.name}"
        for layer in config.stack.layers
    )
    keys = sorted(size_key(w, h) for w, h in sizes)
    desc = (
        "v3"
        f"|ip={interposer.width}x{interposer.height}"
        f"|margin={config.package_margin}"
        f"|grid={config.rows}x{config.cols}"
        f"|amb={config.ambient}|rc={config.r_convection}|rb={config.r_board}"
        f"|het={config.heterogeneous_chiplet_layer}"
        f"|stack={stack_desc}|pos={position_samples}|sizes={keys}"
    )
    return hashlib.sha256(desc.encode("utf-8")).hexdigest()[:16]


def characterize_tables(
    interposer: Interposer,
    sizes,
    config: ThermalConfig | None = None,
    position_samples: tuple = (5, 5),
    solver: GridThermalSolver | None = None,
) -> ResistanceTables:
    """Build resistance tables for the given die sizes on one package.

    Parameters
    ----------
    interposer:
        Package placement region.
    sizes:
        Iterable of ``(width, height)`` pairs in mm.
    config:
        Thermal configuration shared with the ground-truth evaluations.
    position_samples:
        ``(ny, nx)`` self-table resolution; 5x5 keeps the one-time cost
        at ``25 * n_sizes`` solves while capturing edge effects.
    solver:
        Reuse an existing solver (must match ``interposer``/``config``).
    """
    config = config or ThermalConfig()
    solver = solver or GridThermalSolver(interposer, config, reuse_factorization=True)
    ny, nx = position_samples
    if ny < 1 or nx < 1:
        raise ValueError("position_samples must be at least (1, 1)")

    unique_sizes = _deduplicate_sizes(sizes)
    tables = ResistanceTables(
        ambient=config.ambient,
        interposer_width=interposer.width,
        interposer_height=interposer.height,
        fingerprint=tables_fingerprint(
            interposer, unique_sizes, config, position_samples
        ),
    )
    for width, height in unique_sizes:
        tables.add(
            _characterize_one_size(
                solver, interposer, config, width, height, ny, nx
            )
        )
        _logger.debug("characterized %sx%s mm", width, height)
    return tables


def characterize_for_system(
    system: ChipletSystem,
    config: ThermalConfig | None = None,
    position_samples: tuple = (5, 5),
    include_rotations: bool = True,
) -> ResistanceTables:
    """Characterize every die size (and rotation) used by ``system``."""
    sizes = []
    for chiplet in system.chiplets:
        sizes.append((chiplet.width, chiplet.height))
        if include_rotations and chiplet.rotatable:
            sizes.append((chiplet.height, chiplet.width))
    return characterize_tables(
        system.interposer, sizes, config, position_samples
    )


def load_or_characterize(
    interposer: Interposer,
    sizes,
    config: ThermalConfig | None = None,
    position_samples: tuple = (5, 5),
    cache_dir=None,
) -> ResistanceTables:
    """Disk-cached :func:`characterize_tables`, safe under concurrency.

    The cache key is the fingerprint of all inputs, so changing the grid
    resolution or the stack invalidates stale tables automatically.

    Any number of processes may request the same entry concurrently
    (the parallel experiment scheduler fans arms of one benchmark over
    a worker pool): a sidecar file lock elects exactly one writer, the
    losers load the winner's tables, and the ``.npz`` is published via
    atomic rename so a reader can never observe a torn file.  The
    save/load round-trip is bit-exact (binary ``.npy`` array storage),
    so cached and freshly characterized tables are interchangeable.
    """
    config = config or ThermalConfig()
    unique_sizes = _deduplicate_sizes(sizes)
    fingerprint = tables_fingerprint(
        interposer, unique_sizes, config, position_samples
    )
    if cache_dir is None:
        return characterize_tables(
            interposer, unique_sizes, config, position_samples
        )
    cache_path = Path(cache_dir) / f"thermal_tables_{fingerprint}.npz"
    if cache_path.exists():
        _logger.info("loading cached thermal tables %s", cache_path.name)
        return ResistanceTables.load(cache_path)
    with FileLock(cache_path.with_name(cache_path.name + ".lock")):
        # Double-check inside the lock: another process may have
        # characterized and published while we waited.
        if cache_path.exists():
            _logger.info(
                "loading cached thermal tables %s (characterized by a "
                "concurrent process)",
                cache_path.name,
            )
            return ResistanceTables.load(cache_path)
        tables = characterize_tables(
            interposer, unique_sizes, config, position_samples
        )
        with atomic_replace(cache_path, suffix=".npz") as tmp_path:
            tables.save(tmp_path)
        _logger.info("cached thermal tables to %s", cache_path.name)
    return tables


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------


def _deduplicate_sizes(sizes) -> list:
    seen = {}
    for width, height in sizes:
        seen.setdefault(size_key(width, height), (float(width), float(height)))
    return list(seen.values())


def _characterize_one_size(
    solver: GridThermalSolver,
    interposer: Interposer,
    config: ThermalConfig,
    width: float,
    height: float,
    ny: int,
    nx: int,
) -> SizeTables:
    """Solves for one die size: self table + self profile + mutual table."""
    if width > interposer.width or height > interposer.height:
        raise ValueError(
            f"die {width}x{height} mm does not fit interposer "
            f"{interposer.width}x{interposer.height} mm"
        )
    xs = _center_samples(width, interposer.width, nx)
    ys = _center_samples(height, interposer.height, ny)
    r_self = np.zeros((len(ys), len(xs)))

    grid = solver.grid
    bin_width = max(grid.dx, grid.dy)
    max_dist = float(np.hypot(interposer.width, interposer.height))
    edges = np.arange(0.0, max_dist + bin_width, bin_width)
    n_bins = len(edges) - 1
    # One radial mutual profile per characterized source position.
    r_mutual = np.zeros((len(ys), len(xs), n_bins))

    # Self-profile bins roughly match the solver cell granularity.
    nu = int(np.clip(round(width / grid.dx), 3, 9))
    nv = int(np.clip(round(height / grid.dy), 3, 9))
    profile_sum = np.zeros((nv, nu))
    profile_count = np.zeros((nv, nu), dtype=np.int64)

    # Cell-center coordinate field (interposer frame), reused per solve.
    mesh_x, mesh_y = solver.cell_centers()
    on_interposer = solver.interposer_mask()
    chip_idx = config.stack.chiplet_layer_index
    # Residuals of the radial model per cell (anisotropy correction).
    delta_sum = np.zeros(solver.grid.shape)
    delta_count = np.zeros(solver.grid.shape, dtype=np.int64)

    for iy, cy in enumerate(ys):
        for ix, cx in enumerate(xs):
            rect = Rect.from_center(cx, cy, width, height)
            temps = solver.solve_footprints({"src": rect}, {"src": _REFERENCE_POWER})
            chip_layer = temps[chip_idx]
            rise = chip_layer - config.ambient
            cover = solver.chip_coverage(rect)
            under_die = cover >= 0.5
            if not under_die.any():
                under_die = cover > 0.0
            peak = rise[under_die].max()
            r_self[iy, ix] = peak / _REFERENCE_POWER
            # Normalized self-rise shape under the die.
            u = (mesh_x[under_die] - rect.x) / rect.w
            v = (mesh_y[under_die] - rect.y) / rect.h
            bu = np.clip((u * nu).astype(int), 0, nu - 1)
            bv = np.clip((v * nv).astype(int), 0, nv - 1)
            np.add.at(profile_sum, (bv, bu), rise[under_die] / peak)
            np.add.at(profile_count, (bv, bu), 1)
            # Mutual: rise per watt at interposer cells outside the die
            # footprint, binned radially for this source position.
            outside = (cover <= 0.0) & on_interposer
            dist = np.hypot(mesh_x - cx, mesh_y - cy)[outside]
            values = (rise[outside] / _REFERENCE_POWER).ravel()
            bin_idx = np.clip(np.digitize(dist.ravel(), edges) - 1, 0, n_bins - 1)
            mut_sum = np.zeros(n_bins)
            mut_count = np.zeros(n_bins, dtype=np.int64)
            np.add.at(mut_sum, bin_idx, values)
            np.add.at(mut_count, bin_idx, 1)
            valid = mut_count > 0
            bin_centers = 0.5 * (edges[:-1] + edges[1:])
            r_mutual[iy, ix] = np.interp(
                bin_centers,
                bin_centers[valid],
                mut_sum[valid] / np.maximum(mut_count[valid], 1),
            )
            # Per-cell residual of the radial model for this source.
            radial_pred = np.interp(
                np.hypot(mesh_x - cx, mesh_y - cy), bin_centers, r_mutual[iy, ix]
            )
            residual = rise / _REFERENCE_POWER - radial_pred
            delta_sum[outside] += residual[outside]
            delta_count[outside] += 1

    centers = 0.5 * (edges[:-1] + edges[1:])
    delta_xs, delta_ys, mut_delta = _crop_delta(
        solver, delta_sum, delta_count, on_interposer
    )
    profile = np.where(
        profile_count > 0, profile_sum / np.maximum(profile_count, 1), 0.0
    )
    # Empty bins (possible for slim dies) inherit the row maximum so the
    # profile stays sane; renormalize to peak 1.0.
    if (profile_count == 0).any():
        fill = profile[profile_count > 0].mean() if (profile_count > 0).any() else 1.0
        profile[profile_count == 0] = fill
    profile /= profile.max()
    return SizeTables(
        width=width,
        height=height,
        xs=xs,
        ys=ys,
        r_self=r_self,
        mut_distances=centers,
        r_mutual=r_mutual,
        profile=profile,
        delta_xs=delta_xs,
        delta_ys=delta_ys,
        mut_delta=mut_delta,
    )


def _crop_delta(solver, delta_sum, delta_count, on_interposer):
    """Average the residual field and crop it to the interposer cells."""
    delta = np.where(delta_count > 0, delta_sum / np.maximum(delta_count, 1), 0.0)
    rows_in = np.where(on_interposer.any(axis=1))[0]
    cols_in = np.where(on_interposer.any(axis=0))[0]
    r0, r1 = rows_in[0], rows_in[-1] + 1
    c0, c1 = cols_in[0], cols_in[-1] + 1
    mesh_x, mesh_y = solver.cell_centers()
    delta_xs = mesh_x[0, c0:c1]
    delta_ys = mesh_y[r0:r1, 0]
    return delta_xs, delta_ys, delta[r0:r1, c0:c1]


def _center_samples(die_extent: float, region_extent: float, n: int) -> np.ndarray:
    """Feasible die-center coordinates along one axis, n samples."""
    lo = die_extent / 2.0
    hi = region_extent - die_extent / 2.0
    if hi <= lo:
        return np.array([region_extent / 2.0])
    return np.linspace(lo, hi, max(n, 1))
