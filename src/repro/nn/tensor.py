"""Reverse-mode autograd tensor.

A :class:`Tensor` wraps a numpy array and records the operations applied
to it; :meth:`Tensor.backward` walks the recorded graph in reverse
topological order accumulating gradients.  The op set is exactly what
PPO + RND training needs — elementwise arithmetic, matmul, conv2d,
reductions, stable log-softmax, clipping — nothing speculative.

Broadcasting follows numpy; gradients of broadcast operands are summed
back to the operand's shape (:func:`_unbroadcast`).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

import numpy as np

__all__ = ["Tensor", "no_grad"]

# Graph recording is toggled per *thread*: a worker thread collecting
# rollouts under ``no_grad()`` must not disable recording for a trainer
# thread mid-backward (two interleaved save/restore pairs on one global
# can even leave it stuck off after both exit).
_grad_state = threading.local()


def _grad_enabled() -> bool:
    return getattr(_grad_state, "enabled", True)


@contextmanager
def no_grad():
    """Disable graph recording (inference / rollout collection).

    Thread-local: only the calling thread stops recording.
    """
    previous = _grad_enabled()
    _grad_state.enabled = False
    try:
        yield
    finally:
        _grad_state.enabled = previous


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum along axes that were size-1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with a gradient tape.

    Parameters
    ----------
    data:
        Array-like; stored as float64.
    requires_grad:
        Leaf tensors with True accumulate ``.grad`` during backward.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = None
        self.requires_grad = bool(requires_grad)
        self._backward = None
        self._parents = ()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def _from_op(cls, data, parents, backward) -> "Tensor":
        out = cls(data)
        if _grad_enabled() and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def detach(self) -> "Tensor":
        """A new leaf tensor sharing the same values."""
        return Tensor(self.data)

    def numpy(self) -> np.ndarray:
        """The underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    # ------------------------------------------------------------------
    # backward pass
    # ------------------------------------------------------------------

    def backward(self, grad=None) -> None:
        """Backpropagate from this tensor (defaults to d(self)/d(self)=1)."""
        if not self.requires_grad:
            raise RuntimeError("called backward on a tensor without grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("backward without grad requires a scalar")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)

        # Reverse topological order over the recorded graph.
        order = []
        visited = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        grads = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                # Leaf: accumulate.
                node.grad = node_grad if node.grad is None else node.grad + node_grad
                continue
            for parent, parent_grad in node._backward(node_grad):
                if not parent.requires_grad:
                    continue
                key = id(parent)
                grads[key] = (
                    parent_grad if key not in grads else grads[key] + parent_grad
                )

    # ------------------------------------------------------------------
    # elementwise arithmetic
    # ------------------------------------------------------------------

    @staticmethod
    def _coerce(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def __add__(self, other):
        other = self._coerce(other)
        data = self.data + other.data

        def backward(grad):
            return (
                (self, _unbroadcast(grad, self.shape)),
                (other, _unbroadcast(grad, other.shape)),
            )

        return Tensor._from_op(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        def backward(grad):
            return ((self, -grad),)

        return Tensor._from_op(-self.data, (self,), backward)

    def __sub__(self, other):
        return self + (-self._coerce(other))

    def __rsub__(self, other):
        return self._coerce(other) + (-self)

    def __mul__(self, other):
        other = self._coerce(other)
        data = self.data * other.data

        def backward(grad):
            return (
                (self, _unbroadcast(grad * other.data, self.shape)),
                (other, _unbroadcast(grad * self.data, other.shape)),
            )

        return Tensor._from_op(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._coerce(other)
        data = self.data / other.data

        def backward(grad):
            return (
                (self, _unbroadcast(grad / other.data, self.shape)),
                (
                    other,
                    _unbroadcast(
                        -grad * self.data / (other.data**2), other.shape
                    ),
                ),
            )

        return Tensor._from_op(data, (self, other), backward)

    def __rtruediv__(self, other):
        return self._coerce(other) / self

    def __pow__(self, exponent: float):
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        data = self.data**exponent

        def backward(grad):
            return ((self, grad * exponent * self.data ** (exponent - 1)),)

        return Tensor._from_op(data, (self,), backward)

    # ------------------------------------------------------------------
    # nonlinearities
    # ------------------------------------------------------------------

    def relu(self):
        if not _grad_enabled():
            # Inference fast path: no mask materialization, no closure.
            return Tensor(np.maximum(self.data, 0.0))
        mask = self.data > 0

        def backward(grad):
            return ((self, grad * mask),)

        return Tensor._from_op(self.data * mask, (self,), backward)

    def tanh(self):
        out_data = np.tanh(self.data)

        def backward(grad):
            return ((self, grad * (1.0 - out_data**2)),)

        return Tensor._from_op(out_data, (self,), backward)

    def exp(self):
        out_data = np.exp(self.data)

        def backward(grad):
            return ((self, grad * out_data),)

        return Tensor._from_op(out_data, (self,), backward)

    def log(self):
        def backward(grad):
            return ((self, grad / self.data),)

        return Tensor._from_op(np.log(self.data), (self,), backward)

    def clip(self, low: float, high: float):
        """Clamp values; gradient is zero outside [low, high] (PPO clip)."""
        inside = (self.data >= low) & (self.data <= high)

        def backward(grad):
            return ((self, grad * inside),)

        return Tensor._from_op(np.clip(self.data, low, high), (self,), backward)

    def minimum(self, other):
        """Elementwise min; the gradient follows the smaller operand."""
        other = self._coerce(other)
        take_self = self.data <= other.data
        data = np.where(take_self, self.data, other.data)

        def backward(grad):
            return (
                (self, _unbroadcast(grad * take_self, self.shape)),
                (other, _unbroadcast(grad * ~take_self, other.shape)),
            )

        return Tensor._from_op(data, (self, other), backward)

    def abs(self):
        sign = np.sign(self.data)

        def backward(grad):
            return ((self, grad * sign),)

        return Tensor._from_op(np.abs(self.data), (self,), backward)

    # ------------------------------------------------------------------
    # reductions and shaping
    # ------------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False):
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            return ((self, np.broadcast_to(g, self.shape).copy()),)

        return Tensor._from_op(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False):
        count = self.size if axis is None else self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)

        def backward(grad):
            return ((self, grad.reshape(self.shape)),)

        return Tensor._from_op(data, (self,), backward)

    def flatten_batch(self):
        """Reshape (N, ...) -> (N, -1)."""
        return self.reshape(self.shape[0], -1)

    def transpose(self, axes=None):
        data = self.data.transpose(axes)
        inverse = None if axes is None else tuple(np.argsort(axes))

        def backward(grad):
            return ((self, grad.transpose(inverse)),)

        return Tensor._from_op(data, (self,), backward)

    # ------------------------------------------------------------------
    # linear algebra
    # ------------------------------------------------------------------

    def matmul(self, other):
        other = self._coerce(other)
        data = self.data @ other.data

        def backward(grad):
            return (
                (self, grad @ other.data.swapaxes(-1, -2)),
                (other, self.data.swapaxes(-1, -2) @ grad),
            )

        return Tensor._from_op(data, (self, other), backward)

    __matmul__ = matmul

    # ------------------------------------------------------------------
    # softmax family
    # ------------------------------------------------------------------

    def log_softmax(self, axis: int = -1):
        """Numerically stable log-softmax along ``axis``."""
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - log_norm
        softmax = np.exp(out_data)

        def backward(grad):
            return (
                (
                    self,
                    grad - softmax * grad.sum(axis=axis, keepdims=True),
                ),
            )

        return Tensor._from_op(out_data, (self,), backward)

    def softmax(self, axis: int = -1):
        return self.log_softmax(axis=axis).exp()

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------

    def gather(self, indices: np.ndarray, axis: int = -1):
        """Select one element per row along ``axis`` (log-prob of action).

        ``indices`` is an integer array with one fewer dimension than the
        tensor; gradients scatter back to the selected positions.
        """
        indices = np.asarray(indices)
        expanded = np.expand_dims(indices, axis)
        data = np.take_along_axis(self.data, expanded, axis=axis).squeeze(axis)

        def backward(grad):
            full = np.zeros_like(self.data)
            np.put_along_axis(
                full, expanded, np.expand_dims(grad, axis), axis=axis
            )
            return ((self, full),)

        return Tensor._from_op(data, (self,), backward)

    # ------------------------------------------------------------------
    # convolution (im2col)
    # ------------------------------------------------------------------

    def conv2d(self, weight: "Tensor", bias: "Tensor" = None, stride: int = 1, padding: int = 0):
        """2D convolution: input (N,C,H,W), weight (F,C,kh,kw), bias (F,)."""
        x = self.data
        w = weight.data
        n, c, h, wdt = x.shape
        f, c2, kh, kw = w.shape
        if c != c2:
            raise ValueError(f"channel mismatch: input {c}, weight {c2}")
        out_h = (h + 2 * padding - kh) // stride + 1
        out_w = (wdt + 2 * padding - kw) // stride + 1
        if padding:
            # Zero-pad via slice assignment: np.pad's generic machinery
            # costs ~0.5 ms per call, which dominated single-row rollout
            # forwards.
            x_pad = np.zeros(
                (n, c, h + 2 * padding, wdt + 2 * padding), dtype=x.dtype
            )
            x_pad[:, :, padding:-padding, padding:-padding] = x
        else:
            x_pad = x
        cols = _im2col(x_pad, kh, kw, stride, out_h, out_w)  # (C*kh*kw, N, L)
        w_mat = w.reshape(f, -1)  # (F, C*kh*kw)
        # One identically-shaped (F,K)@(K,L) BLAS GEMM per batch row: a
        # row's result is bitwise independent of the batch size (a single
        # flattened GEMM is faster but lets BLAS pick kernels by total
        # width, which breaks the batched rollout engine's exact
        # batch-width invariance).
        out = np.empty((n, f, out_h * out_w))
        for row in range(n):
            np.matmul(w_mat, cols[:, row], out=out[row])
        out = out.reshape(n, f, out_h, out_w)
        if bias is not None:
            out = out + bias.data.reshape(1, f, 1, 1)

        parents = (self, weight) + ((bias,) if bias is not None else ())

        def backward(grad):
            # Flattened GEMMs (batch inside the column axis): gradients
            # only need determinism for identical inputs, not per-row
            # batch-width invariance.
            grad_mat = grad.transpose(1, 0, 2, 3).reshape(f, -1)  # (F, N*L)
            cols_flat = cols.reshape(cols.shape[0], -1)  # (K, N*L)
            grad_w = (grad_mat @ cols_flat.T).reshape(w.shape)
            grad_cols = w_mat.T @ grad_mat
            grad_x_pad = _col2im(
                grad_cols, x_pad.shape, kh, kw, stride, out_h, out_w
            )
            if padding:
                grad_x = grad_x_pad[:, :, padding:-padding, padding:-padding]
            else:
                grad_x = grad_x_pad
            results = [(self, grad_x), (weight, grad_w)]
            if bias is not None:
                results.append((bias, grad.sum(axis=(0, 2, 3))))
            return tuple(results)

        return Tensor._from_op(out, parents, backward)


def _im2col(x_pad, kh, kw, stride, out_h, out_w):
    """Unfold padded input (N,C,H,W) into (C*kh*kw, N, out_h*out_w).

    The kernel axis leads so that materializing this layout walks the
    input nearly sequentially (~8x faster than the batch-major unfold
    for rollout-sized batches); each batch row is then a contiguous-
    column (K, L) GEMM operand.
    """
    n, c, _, _ = x_pad.shape
    windows = np.lib.stride_tricks.sliding_window_view(x_pad, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]
    # (N, C, out_h, out_w, kh, kw) -> (C*kh*kw, N, out_h*out_w)
    return np.ascontiguousarray(
        windows.transpose(1, 4, 5, 0, 2, 3).reshape(
            c * kh * kw, n, out_h * out_w
        )
    )


def _col2im(cols, x_shape, kh, kw, stride, out_h, out_w):
    """Fold (C*kh*kw, N*L) gradients back onto the padded input."""
    n, c, h, w = x_shape
    grad = np.zeros(x_shape, dtype=cols.dtype)
    cols6 = cols.reshape(c, kh, kw, n, out_h, out_w)
    for i in range(kh):
        for j in range(kw):
            grad[
                :, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride
            ] += cols6[:, i, j].transpose(1, 0, 2, 3)
    return grad
