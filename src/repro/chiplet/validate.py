"""Design-rule validation for systems and placements.

The environment's action mask *prevents* illegal states during RL
placement; these checkers *verify* them, and are what tests and the SA
baseline (whose moves can propose anything) rely on.
"""

from __future__ import annotations

from repro.chiplet.system import ChipletSystem, Placement

__all__ = ["ValidationError", "validate_system", "validate_placement"]


class ValidationError(ValueError):
    """A system or placement violates a structural or design rule."""


def validate_system(system: ChipletSystem) -> None:
    """Check that a system is placeable at all.

    Raises
    ------
    ValidationError
        If any chiplet cannot fit on the interposer in either orientation,
        or the summed chiplet area exceeds the interposer area.
    """
    interposer = system.interposer
    for chiplet in system.chiplets:
        fits_upright = (
            chiplet.width <= interposer.width and chiplet.height <= interposer.height
        )
        fits_rotated = (
            chiplet.height <= interposer.width and chiplet.width <= interposer.height
        )
        if not (fits_upright or fits_rotated):
            raise ValidationError(
                f"chiplet {chiplet.name!r} ({chiplet.width}x{chiplet.height} mm) "
                f"cannot fit on interposer {interposer.width}x{interposer.height} mm"
            )
    if system.total_chiplet_area > interposer.area:
        raise ValidationError(
            f"system {system.name!r} over-packs the interposer: "
            f"{system.total_chiplet_area:.1f} mm^2 of chiplets on "
            f"{interposer.area:.1f} mm^2"
        )


def placement_violations(placement: Placement, require_complete: bool = True) -> list:
    """Return a list of human-readable violations (empty when legal)."""
    system = placement.system
    interposer = system.interposer
    problems = []
    if require_complete and not placement.is_complete:
        missing = set(system.chiplet_names) - set(placement.placed_names)
        problems.append(f"unplaced chiplets: {sorted(missing)}")
    rects = placement.footprints()
    bounds = interposer.bounds
    for name, rect in rects.items():
        if not bounds.contains_rect(rect):
            problems.append(f"{name} out of interposer bounds: {rect}")
    names = list(rects)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            if rects[a].overlaps(rects[b]):
                problems.append(f"{a} overlaps {b}")
            elif rects[a].gap(rects[b]) < interposer.min_spacing - 1e-9:
                problems.append(
                    f"{a} and {b} closer than min_spacing="
                    f"{interposer.min_spacing} mm"
                )
    return problems


def validate_placement(placement: Placement, require_complete: bool = True) -> None:
    """Raise :class:`ValidationError` when the placement breaks any rule."""
    problems = placement_violations(placement, require_complete=require_complete)
    if problems:
        raise ValidationError("; ".join(problems))
