"""Socket framing: round-trips, integrity failures, chaos enactment.

Covers the PR-9 wire format underneath remote collection:

* frames round-trip (kind, meta, blob) — including empty and
  multi-megabyte blobs — over a real socket pair;
* every way a frame can go wrong maps onto the fault taxonomy:
  corruption, truncation, bad magic, wrong version, absurd lengths and
  mid-frame timeouts raise ``FrameIntegrityError``; a clean EOF between
  frames raises ``ConnectionClosed``; both are ``OSError`` s the retry
  policy classifies as *transient* (fence, reconnect, re-dispatch);
* an idle receive timeout is **not** a fault when the caller opted in
  (``idle_ok`` — the heartbeat poll loop's normal outcome);
* chaos enactment at ``transport.send`` / ``transport.recv``: ``drop``
  makes frames vanish, ``corrupt`` flips a post-CRC bit so the peer's
  checksum trips, ``disconnect`` severs the connection mid-conversation.
"""

import socket
import struct
import threading

import pytest

from repro.parallel.chaos import ChaosInjector, ChaosSpec, set_chaos
from repro.parallel.faults import RetryPolicy
from repro.parallel.transport import (
    _HEADER,
    MAGIC,
    MAX_FRAME_BYTES,
    ConnectionClosed,
    FrameIntegrityError,
    TransportError,
    recv_frame,
    send_frame,
)


@pytest.fixture
def pair():
    left, right = socket.socketpair()
    left.settimeout(5.0)
    right.settimeout(5.0)
    yield left, right
    left.close()
    right.close()


@pytest.fixture(autouse=True)
def _no_chaos():
    yield
    set_chaos(None)


def _inject(*specs):
    set_chaos(ChaosInjector([ChaosSpec(**spec) for spec in specs]))


class TestRoundTrip:
    def test_kind_meta_blob(self, pair):
        left, right = pair
        send_frame(left, "task", {"epoch": 3, "start": 10}, b"weights")
        kind, meta, blob = recv_frame(right)
        assert kind == "task"
        assert meta == {"epoch": 3, "start": 10}
        assert blob == b"weights"

    def test_empty_meta_and_blob(self, pair):
        left, right = pair
        send_frame(left, "heartbeat")
        assert recv_frame(right) == ("heartbeat", {}, b"")

    def test_large_blob(self, pair):
        left, right = pair
        blob = bytes(range(256)) * 16384  # 4 MiB
        writer = threading.Thread(
            target=send_frame, args=(left, "result", None, blob)
        )
        writer.start()
        kind, _, got = recv_frame(right)
        writer.join()
        assert kind == "result"
        assert got == blob

    def test_frames_are_ordered(self, pair):
        left, right = pair
        for index in range(5):
            send_frame(left, "seq", {"n": index})
        assert [recv_frame(right)[1]["n"] for _ in range(5)] == list(range(5))

    def test_send_lock_serializes_writers(self, pair):
        left, right = pair
        lock = threading.Lock()
        blob = b"x" * (1 << 20)
        threads = [
            threading.Thread(
                target=send_frame,
                args=(left, "result", {"w": index}, blob),
                kwargs={"lock": lock},
            )
            for index in range(4)
        ]
        for thread in threads:
            thread.start()
        frames = [recv_frame(right) for _ in range(4)]
        for thread in threads:
            thread.join()
        assert sorted(meta["w"] for _, meta, _ in frames) == [0, 1, 2, 3]
        assert all(got == blob for _, _, got in frames)


class TestFailureClassification:
    def test_clean_eof_between_frames(self, pair):
        left, right = pair
        left.close()
        with pytest.raises(ConnectionClosed):
            recv_frame(right)

    def test_truncated_frame_is_integrity_error(self, pair):
        left, right = pair
        header = _HEADER.pack(MAGIC, 1, 10, 100, 0)
        left.sendall(header + b"only-part")  # promises 110 bytes
        left.close()
        with pytest.raises(FrameIntegrityError, match="mid-frame|short read"):
            recv_frame(right)

    def test_bad_magic(self, pair):
        left, right = pair
        left.sendall(_HEADER.pack(b"NOPE", 1, 0, 0, 0))
        with pytest.raises(FrameIntegrityError, match="magic"):
            recv_frame(right)

    def test_wrong_version(self, pair):
        left, right = pair
        left.sendall(_HEADER.pack(MAGIC, 99, 0, 0, 0))
        with pytest.raises(FrameIntegrityError, match="version"):
            recv_frame(right)

    def test_absurd_length_fails_fast(self, pair):
        left, right = pair
        left.sendall(_HEADER.pack(MAGIC, 1, 16, MAX_FRAME_BYTES, 0))
        with pytest.raises(FrameIntegrityError, match="length"):
            recv_frame(right)

    def test_checksum_mismatch(self, pair):
        left, right = pair
        send_frame(left, "task", {"epoch": 1}, b"payload-bytes")
        raw = bytearray()
        while len(raw) < _HEADER.size:
            raw.extend(right.recv(1 << 16))
        raw[-1] ^= 0x01  # flip one payload bit in transit
        relay, target = socket.socketpair()
        relay.sendall(bytes(raw))
        relay.close()
        target.settimeout(5.0)
        try:
            with pytest.raises(FrameIntegrityError, match="checksum"):
                recv_frame(target)
        finally:
            target.close()

    def test_meta_without_kind_is_integrity_error(self, pair):
        left, right = pair
        meta_bytes = b'{"no_kind": 1}'
        import zlib

        crc = zlib.crc32(meta_bytes)
        left.sendall(
            _HEADER.pack(MAGIC, 1, len(meta_bytes), 0, crc) + meta_bytes
        )
        with pytest.raises(FrameIntegrityError, match="kind"):
            recv_frame(right)

    def test_idle_timeout_ok_returns_none(self, pair):
        _, right = pair
        right.settimeout(0.05)
        assert recv_frame(right, idle_ok=True) is None

    def test_idle_timeout_without_opt_in_raises(self, pair):
        _, right = pair
        right.settimeout(0.05)
        with pytest.raises(FrameIntegrityError, match="waiting for a frame"):
            recv_frame(right)

    def test_timeout_mid_frame_is_integrity_error_even_with_idle_ok(
        self, pair
    ):
        left, right = pair
        header = _HEADER.pack(MAGIC, 1, 10, 0, 0)
        left.sendall(header)  # promises 10 meta bytes that never come
        right.settimeout(0.1)
        with pytest.raises(FrameIntegrityError, match="mid-frame"):
            recv_frame(right, idle_ok=True)

    @pytest.mark.parametrize(
        "error",
        [
            FrameIntegrityError("checksum"),
            ConnectionClosed("eof"),
            TransportError("base"),
        ],
    )
    def test_transport_errors_are_transient(self, error):
        # The whole recovery story hangs on this: fence + reconnect +
        # re-dispatch only happens for errors the policy retries.
        assert isinstance(error, OSError)
        assert RetryPolicy.is_transient(error)


class TestChaosEnactment:
    def test_send_drop_vanishes_frame(self, pair):
        left, right = pair
        _inject(dict(point="transport.send", mode="drop", times=1))
        send_frame(left, "lost", detail="worker:w0")
        send_frame(left, "kept", detail="worker:w0")
        assert recv_frame(right)[0] == "kept"

    def test_send_corrupt_trips_peer_checksum(self, pair):
        left, right = pair
        _inject(dict(point="transport.send", mode="corrupt", times=1))
        send_frame(left, "task", {"epoch": 1}, b"weights", detail="w0")
        with pytest.raises(FrameIntegrityError, match="checksum"):
            recv_frame(right)

    def test_send_corrupt_without_blob_hits_meta(self, pair):
        left, right = pair
        _inject(dict(point="transport.send", mode="corrupt", times=1))
        send_frame(left, "heartbeat", {"lease": "lease-1"}, detail="w0")
        with pytest.raises(FrameIntegrityError, match="checksum"):
            recv_frame(right)

    def test_send_disconnect_severs_both_ends(self, pair):
        left, right = pair
        _inject(dict(point="transport.send", mode="disconnect", times=1))
        with pytest.raises(ConnectionClosed, match="chaos"):
            send_frame(left, "task", {}, b"x", detail="w0")
        # The frame itself made it out before the cut — the peer reads
        # it, then sees EOF (disconnect models a failure *after* send).
        assert recv_frame(right)[0] == "task"
        with pytest.raises(ConnectionClosed):
            recv_frame(right)

    def test_recv_drop_discards_delivered_frame(self, pair):
        left, right = pair
        send_frame(left, "first")
        send_frame(left, "second")
        _inject(dict(point="transport.recv", mode="drop", times=1))
        # The drop consumes "first" off the wire; the caller sees the
        # next frame as if "first" never arrived.
        assert recv_frame(right)[0] == "second"

    def test_recv_corrupt_trips_local_checksum(self, pair):
        left, right = pair
        send_frame(left, "task", {"epoch": 1}, b"weights")
        _inject(dict(point="transport.recv", mode="corrupt", times=1))
        with pytest.raises(FrameIntegrityError, match="checksum"):
            recv_frame(right)

    def test_recv_disconnect_closes_before_reading(self, pair):
        left, right = pair
        send_frame(left, "task")
        _inject(dict(point="transport.recv", mode="disconnect", times=1))
        with pytest.raises(ConnectionClosed, match="chaos"):
            recv_frame(right)

    def test_detail_match_scopes_injection(self, pair):
        left, right = pair
        _inject(
            dict(
                point="transport.send", mode="drop", match="worker:w1", times=1
            )
        )
        send_frame(left, "kept", detail="coordinator")  # no match
        assert recv_frame(right)[0] == "kept"
        send_frame(left, "lost", detail="worker:w1:result")
        send_frame(left, "after", detail="worker:w1:result")
        assert recv_frame(right)[0] == "after"

    def test_header_layout_is_stable(self):
        # The wire format is a cross-machine contract; changing it must
        # be a deliberate versioned act, not a refactor side effect.
        assert _HEADER.size == struct.calcsize(">4sBxIQI")
        assert MAGIC == b"RLPT"
