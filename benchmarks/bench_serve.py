"""Serving throughput and tail latency: cold start vs the warm path.

Starts one in-process :class:`~repro.serve.FloorplanServer` (real HTTP,
one thread per request) over fresh store/cache roots and measures the
three request regimes the serve layer distinguishes:

* **cold start** — the first place request: thermal characterization,
  evaluator construction, and the full method arm, end to end.  This is
  what every invocation paid before the service existed.
* **memoized repeat** — the identical request again: answered from the
  content-addressed run store with zero evaluator calls.  Latency is
  measured per request under concurrent client threads; p50/p99 and
  sustained requests/sec are reported.
* **warm evaluate** — placement-evaluation requests against the warm
  ``FastThermalModel`` bundle, fired from concurrent clients so the
  micro-batcher coalesces them into ``evaluate_batch`` calls.

A machine-readable summary lands in ``BENCH_serve.json`` after every
run (smoke included).  The headline target — memoized repeats >= 10x
faster than cold start — holds on any host (the cold path runs seconds
of annealing; the warm path is one store read), so it is enforced even
in ``--smoke`` mode and hard-enforced under ``--strict``.

The bench also asserts, bitwise, that the memoized repeat returns the
same semantic fields the cold request computed — a perf number for a
cache that returned different answers would be meaningless.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke    # CI
    PYTHONPATH=src python benchmarks/bench_serve.py --strict   # enforce
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.experiments.runner import ExperimentBudget
from repro.serve import FloorplanServer, ServeClient
from repro.serve.schema import budget_to_dict

METHOD = "TAP-2.5D*(FastThermal)"


def percentiles(latencies_ms: list) -> dict:
    ordered = sorted(latencies_ms)
    # Nearest-rank percentiles: honest for the small-n smoke runs where
    # interpolated quantiles would invent latencies no request had.
    def rank(q: float) -> float:
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    return {
        "p50_ms": rank(0.50),
        "p99_ms": rank(0.99),
        "max_ms": ordered[-1],
        "n": len(ordered),
    }


def fire(client_fn, total: int, threads: int) -> dict:
    """Run ``total`` requests over ``threads`` clients; latency stats."""
    latencies: list = []

    def one(_index: int) -> float:
        start = time.perf_counter()
        client_fn()
        return (time.perf_counter() - start) * 1000.0

    wall_start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=threads) as pool:
        latencies = list(pool.map(one, range(total)))
    wall = time.perf_counter() - wall_start
    stats = percentiles(latencies)
    stats["requests_per_second"] = total / wall
    stats["threads"] = threads
    return stats


def semantic_fields(response: dict) -> tuple:
    result = response["result"]
    return (
        result["reward"],
        result["wirelength"],
        result["temperature_c"],
        response["placement"],
    )


def run(args) -> int:
    cpu_count = os.cpu_count() or 1
    budget = ExperimentBudget(
        rl_epochs=1,
        episodes_per_epoch=2,
        grid_size=args.grid,
        sa_iterations_hotspot=args.sa_iterations,
        sa_chains=args.sa_chains,
        rollout_batch_size=2,
        position_samples=(args.positions, args.positions),
        seed=args.seed,
    )
    budget_dict = budget_to_dict(budget)
    print(
        f"scenario: system={args.system} method={METHOD} "
        f"grid={args.grid} sa_iterations={args.sa_iterations} "
        f"on {cpu_count} cpu core(s)"
    )
    with tempfile.TemporaryDirectory() as tmp:
        server = FloorplanServer(
            "127.0.0.1",
            0,
            store_dir=f"{tmp}/store",
            cache_dir=f"{tmp}/cache",
            window_s=args.batch_window_ms / 1000.0,
            max_batch=args.max_batch,
        ).start()
        try:
            client = ServeClient(server.url)

            # -- cold start (characterization + evaluators + full arm) --
            start = time.perf_counter()
            cold = client.place(args.system, METHOD, budget_dict)
            cold_s = time.perf_counter() - start
            assert cold["cache"] == "miss", cold["cache"]
            print(f"cold start: {cold_s * 1000.0:9.1f} ms (cache=miss)")

            # -- memoized repeats (store hits, zero evaluator calls) ----
            def repeat():
                response = client.place(args.system, METHOD, budget_dict)
                if response["cache"] != "hit":
                    raise AssertionError(
                        f"expected a store hit, got {response['cache']}"
                    )
                if response["evaluator_calls"] != 0:
                    raise AssertionError("memoized repeat ran the evaluator")
                if semantic_fields(response) != semantic_fields(cold):
                    raise AssertionError(
                        "memoized repeat diverged from the cold result"
                    )

            memoized = fire(repeat, args.requests, args.threads)
            print(
                f"memoized:  p50 {memoized['p50_ms']:7.1f} ms  "
                f"p99 {memoized['p99_ms']:7.1f} ms  "
                f"{memoized['requests_per_second']:8.1f} req/s "
                f"({args.requests} requests, {args.threads} threads)"
            )

            # -- warm evaluates through the micro-batcher ---------------
            placement = cold["placement"]

            def evaluate():
                client.evaluate(args.system, placement, "fast", budget_dict)

            warm_eval = fire(evaluate, args.requests, args.threads)
            batcher = client.stats()["batchers"]["evaluate"]
            warm_eval["largest_batch"] = batcher["largest_batch"]
            print(
                f"evaluate:  p50 {warm_eval['p50_ms']:7.1f} ms  "
                f"p99 {warm_eval['p99_ms']:7.1f} ms  "
                f"{warm_eval['requests_per_second']:8.1f} req/s "
                f"(largest coalesced batch: {batcher['largest_batch']})"
            )
        finally:
            server.close()

    speedup = (cold_s * 1000.0) / memoized["p50_ms"]
    target_met = speedup >= args.target
    verdict = "  [ok]" if target_met else f"  [below {args.target:.0f}x target]"
    print(f"warm-path speedup vs cold start: {speedup:.1f}x{verdict}")
    status = 0 if target_met or not args.strict else 1

    payload = {
        "benchmark": "bench_serve",
        "mode": "smoke" if args.smoke else "full",
        "cpu_count": cpu_count,
        "scenario": {
            "system": args.system,
            "method": METHOD,
            "grid_size": args.grid,
            "sa_iterations": args.sa_iterations,
            "sa_chains": args.sa_chains,
            "position_samples": args.positions,
            "requests": args.requests,
            "threads": args.threads,
            "batch_window_ms": args.batch_window_ms,
        },
        "cold_start_ms": cold_s * 1000.0,
        "memoized_repeat": memoized,
        "warm_evaluate": warm_eval,
        "warm_speedup_vs_cold": speedup,
        "target": args.target,
        # The cold path anneals for seconds while the warm path reads
        # one store entry, so unlike the multi-core benches this target
        # binds on any host, single-core included.
        "target_enforceable_on_host": True,
        "target_met": target_met,
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--system", type=str, default="synthetic1")
    parser.add_argument("--grid", type=int, default=16)
    parser.add_argument("--sa-iterations", type=int, default=60)
    parser.add_argument("--sa-chains", type=int, default=4)
    parser.add_argument(
        "--positions",
        type=int,
        default=3,
        help="characterization samples per axis (the cold-start cost)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--requests",
        type=int,
        default=200,
        help="requests per warm-path measurement",
    )
    parser.add_argument(
        "--threads", type=int, default=8, help="concurrent client threads"
    )
    parser.add_argument("--batch-window-ms", type=float, default=2.0)
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument(
        "--target",
        type=float,
        default=10.0,
        help="required cold/warm latency multiple (binds on any host)",
    )
    parser.add_argument(
        "--out", type=str, default="BENCH_serve.json",
        help="machine-readable result path",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero when the warm path misses the target",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shrink the workload for CI (the 10x target still applies)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.grid = min(args.grid, 12)
        args.sa_iterations = min(args.sa_iterations, 24)
        args.positions = min(args.positions, 2)
        args.requests = min(args.requests, 60)
        args.threads = min(args.threads, 4)
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
