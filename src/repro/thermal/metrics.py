"""Accuracy metrics for surrogate-vs-solver comparisons (paper Table II)."""

from __future__ import annotations

import numpy as np

__all__ = ["error_metrics"]


def error_metrics(predicted, reference) -> dict:
    """MSE / RMSE / MAE / MAPE between two temperature arrays.

    Parameters
    ----------
    predicted, reference:
        Array-likes of equal length, in Kelvin (MAPE is computed on the
        Kelvin values, matching the paper's sub-0.1 % figures).

    Returns
    -------
    dict with keys ``mse`` (K^2), ``rmse`` (K), ``mae`` (K), ``mape``
    (percent) and ``n`` (sample count).
    """
    pred = np.asarray(predicted, dtype=np.float64)
    ref = np.asarray(reference, dtype=np.float64)
    if pred.shape != ref.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {ref.shape}")
    if pred.size == 0:
        raise ValueError("need at least one sample")
    if np.any(ref == 0.0):
        raise ValueError("reference contains zeros; MAPE undefined")
    err = pred - ref
    mse = float(np.mean(err**2))
    return {
        "mse": mse,
        "rmse": float(np.sqrt(mse)),
        "mae": float(np.mean(np.abs(err))),
        "mape": float(np.mean(np.abs(err / ref))) * 100.0,
        "n": int(pred.size),
    }
