"""Table II: fast thermal model accuracy and per-evaluation speed.

Two real timing benchmarks (the paper's "inference speed" row):

* ``test_bench_solver_evaluation``  — one HotSpot-style full solve
* ``test_bench_fast_model_evaluation`` — one surrogate evaluation

plus the accuracy study over the synthetic dataset, which prints the
MSE/RMSE/MAE/MAPE block next to the paper's numbers and saves a JSON
artifact under ``bench_results/``.
"""

import json
from pathlib import Path

import pytest

from repro.baselines.random_search import random_legal_placement
from repro.experiments import run_table2
from repro.experiments.runner import DEFAULT_CACHE_DIR
from repro.systems.synthetic import (
    DATASET_INTERPOSER,
    DATASET_SIZES,
    synthetic_system,
)
from repro.thermal import FastThermalModel, GridThermalSolver, ThermalConfig
from repro.thermal.characterize import load_or_characterize
from repro.utils import new_rng

ARTIFACT_DIR = Path("bench_results")


@pytest.fixture(scope="module")
def thermal_setup():
    config = ThermalConfig(r_convection=0.12)
    sizes = [(w, h) for w in DATASET_SIZES for h in DATASET_SIZES]
    tables = load_or_characterize(
        DATASET_INTERPOSER, sizes, config, cache_dir=DEFAULT_CACHE_DIR
    )
    fast_model = FastThermalModel(tables, config)
    solver = GridThermalSolver(DATASET_INTERPOSER, config)
    system = synthetic_system(seed=123)
    placement = random_legal_placement(
        system, new_rng(5), allow_rotation=False
    )
    return solver, fast_model, placement


def test_bench_solver_evaluation(benchmark, thermal_setup):
    """One full-grid steady-state solve (HotSpot stand-in)."""
    solver, _, placement = thermal_setup
    result = benchmark.pedantic(
        solver.evaluate, args=(placement,), rounds=3, iterations=1
    )
    assert result.max_temperature > 300.0


def test_bench_fast_model_evaluation(benchmark, thermal_setup):
    """One surrogate evaluation (the paper's 0.1 s vs 12.9 s row)."""
    _, fast_model, placement = thermal_setup
    result = benchmark.pedantic(
        fast_model.evaluate, args=(placement,), rounds=20, iterations=5
    )
    assert result.max_temperature > 300.0


def test_table2_accuracy(benchmark, table2_n_systems):
    """Full Table II regeneration on the synthetic dataset."""
    result = benchmark.pedantic(
        run_table2,
        kwargs={"n_systems": table2_n_systems, "seed": 7},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())
    ARTIFACT_DIR.mkdir(exist_ok=True)
    (ARTIFACT_DIR / "table2.json").write_text(
        json.dumps(
            {
                "metrics": result.metrics,
                "speedup": result.speedup,
                "solver_ms": result.solver_time_per_eval * 1e3,
                "fast_ms": result.fast_time_per_eval * 1e3,
                "n_systems": result.n_systems,
                "paper": {
                    "mse": 0.1732,
                    "rmse": 0.4162,
                    "mae": 0.2523,
                    "mape": 0.0726,
                    "speedup": 127,
                },
            },
            indent=2,
        )
    )
    # Shape assertions: sub-Kelvin accuracy, order-of-magnitude speedup.
    assert result.metrics["mae"] < 1.0
    assert result.speedup > 50.0
