"""Table II: fast thermal model accuracy and speed vs the full solver.

The paper evaluates 2,000 synthetic systems; MSE/RMSE/MAE/MAPE of the
maximum temperature plus per-inference wall clock.  The harness defaults
to a subset for runtime and exposes ``n_systems`` for the full run.

The dataset evaluation is embarrassingly parallel — every system is
solved independently — so ``jobs=N`` shards the index range into
contiguous chunks and fans them over a process pool.  Each chunk job
replays the dataset generator from index 0 (generation is seeded from
one RNG stream, so chunk ``[start, stop)`` must consume exactly the
random draws the sequential run consumed before ``start``; generating
a system + placement costs microseconds against the milliseconds of its
ground-truth solve), which makes sharded predictions **bitwise
identical** to the sequential run at any worker count.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.experiments.runner import DEFAULT_CACHE_DIR, as_store
from repro.parallel import JobSpec, run_jobs
from repro.store import store_key
from repro.systems.synthetic import (
    DATASET_INTERPOSER,
    DATASET_SIZES,
    synthetic_thermal_dataset,
)
from repro.thermal import (
    FastThermalModel,
    GridThermalSolver,
    ThermalConfig,
    error_metrics,
)
from repro.thermal.characterize import load_or_characterize
from repro.utils import get_logger

__all__ = ["Table2Result", "run_table2", "run_table2_chunk"]

_logger = get_logger("experiments.table2")


@dataclass
class Table2Result:
    """Accuracy metrics and timing of the surrogate-vs-solver study."""

    metrics: dict
    solver_time_per_eval: float
    fast_time_per_eval: float
    characterization_time: float
    n_systems: int
    predictions: list = field(default_factory=list)
    references: list = field(default_factory=list)

    @property
    def speedup(self) -> float:
        return self.solver_time_per_eval / max(self.fast_time_per_eval, 1e-12)

    def format(self) -> str:
        m = self.metrics
        return "\n".join(
            [
                "Table II — fast thermal model vs grid solver "
                f"({self.n_systems} systems)",
                f"  MSE   {m['mse']:.4f} K^2   (paper 0.1732)",
                f"  RMSE  {m['rmse']:.4f} K    (paper 0.4162)",
                f"  MAE   {m['mae']:.4f} K    (paper 0.2523)",
                f"  MAPE  {m['mape']:.4f} %   (paper 0.0726)",
                f"  solver {self.solver_time_per_eval*1e3:.1f} ms/eval, "
                f"fast {self.fast_time_per_eval*1e3:.3f} ms/eval "
                f"-> {self.speedup:.0f}x speedup (paper 127x)",
            ]
        )


def _dataset_tables(config, position_samples, cache_dir):
    """The one characterization shared by every dataset system."""
    sizes = [(w, h) for w in DATASET_SIZES for h in DATASET_SIZES]
    return load_or_characterize(
        DATASET_INTERPOSER,
        sizes,
        config,
        position_samples=position_samples,
        cache_dir=cache_dir,
    )


def run_table2_chunk(
    start: int,
    stop: int,
    seed: int,
    thermal_config: ThermalConfig,
    position_samples: tuple,
    cache_dir,
) -> dict:
    """Evaluate dataset indices ``[start, stop)`` — the shard job unit.

    Loads the (prewarmed) shared tables from the disk cache, replays the
    seeded dataset generator up to ``start`` to reproduce the sequential
    RNG state exactly, and evaluates its slice with both the ground-
    truth solver and the surrogate.
    """
    tables = _dataset_tables(thermal_config, position_samples, cache_dir)
    fast_model = FastThermalModel(tables, thermal_config)
    solver = GridThermalSolver(DATASET_INTERPOSER, thermal_config)
    predictions, references = [], []
    solver_time = fast_time = 0.0
    for index, (system, placement) in enumerate(
        synthetic_thermal_dataset(stop, seed=seed)
    ):
        if index < start:
            continue  # generated (RNG replay) but not evaluated
        ref = solver.evaluate(placement)
        fast = fast_model.evaluate(placement)
        solver_time += ref.elapsed
        fast_time += fast.elapsed
        references.append(float(ref.max_temperature))
        predictions.append(float(fast.max_temperature))
    _logger.info("table2: chunk [%d, %d) done", start, stop)
    return {
        "predictions": predictions,
        "references": references,
        "solver_time": solver_time,
        "fast_time": fast_time,
    }


def _chunk_ranges(n: int, chunks: int) -> list:
    """Contiguous, near-equal [start, stop) ranges covering range(n)."""
    chunks = max(min(chunks, n), 1)
    base, remainder = divmod(n, chunks)
    ranges, start = [], 0
    for i in range(chunks):
        stop = start + base + (1 if i < remainder else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


#: Target shard size (dataset systems per chunk) when a run store is
#: active: the chunk count becomes ``ceil(n_systems / 25)`` — a
#: function of ``n_systems`` alone, never of ``jobs`` — so chunk
#: boundaries, and therefore shard store keys, are stable across
#: resumes at any worker count.  (``_chunk_ranges`` balances the
#: chunks near-equally, so actual sizes are <= 25, not exactly 25.)
_STORE_CHUNK_SIZE = 25


def _chunk_store_key(start, stop, seed, config, position_samples) -> str:
    """Content-addressed key of one dataset shard."""
    return store_key(
        "table2_chunk",
        {
            "start": start,
            "stop": stop,
            "seed": seed,
            "thermal": asdict(config),
            "position_samples": tuple(position_samples),
        },
    )


def run_table2(
    n_systems: int = 300,
    seed: int = 7,
    thermal_config: ThermalConfig | None = None,
    cache_dir=None,
    position_samples: tuple = (7, 7),
    jobs: int = 1,
    store=None,
    policy=None,
    job_timeout: float | None = None,
    keep_going: bool = False,
    report=None,
) -> Table2Result:
    """Regenerate Table II on ``n_systems`` random systems.

    ``jobs=1`` is the original sequential loop, kept bit for bit;
    ``jobs=N`` prewarms the shared characterization once, then shards
    the dataset into N contiguous chunks evaluated in worker processes.
    Predictions/references (and therefore every accuracy metric) are
    bitwise identical either way; only the per-eval timings — wall
    clock, never deterministic — vary.

    ``store`` makes the sweep resumable: every shard publishes its
    chunk under a content-addressed key and a re-run skips published
    shards.  With a store the chunk count is derived from
    ``n_systems`` alone (``ceil(n / _STORE_CHUNK_SIZE)``, regardless of
    ``jobs`` — even at ``jobs=1``), so chunk boundaries and their keys
    are stable when a sweep is resumed at a different worker count.
    Cached chunks
    carry the *original* run's wall-clock timings; the accuracy
    metrics are bitwise reproducible, the ms/eval figures are not
    re-measured.

    ``policy``/``job_timeout``/``keep_going``/``report`` are the
    :func:`repro.parallel.run_jobs` fault-tolerance knobs.  Under
    ``keep_going`` a quarantined shard drops its slice of the dataset:
    the metrics and the recorded ``n_systems`` then cover only the
    evaluated systems (and the report flags the sweep as partial).
    """
    config = thermal_config or ThermalConfig(r_convection=0.12)
    cache_dir = DEFAULT_CACHE_DIR if cache_dir is None else Path(cache_dir)
    store = as_store(store)

    t0 = time.perf_counter()
    tables = _dataset_tables(config, position_samples, cache_dir)
    characterization_time = time.perf_counter() - t0

    if jobs <= 1 and store is None:
        fast_model = FastThermalModel(tables, config)
        # Fresh factorization per evaluation mirrors a HotSpot run's cost.
        solver = GridThermalSolver(DATASET_INTERPOSER, config)

        predictions, references = [], []
        solver_time = fast_time = 0.0
        for index, (system, placement) in enumerate(
            synthetic_thermal_dataset(n_systems, seed=seed)
        ):
            ref = solver.evaluate(placement)
            fast = fast_model.evaluate(placement)
            solver_time += ref.elapsed
            fast_time += fast.elapsed
            references.append(ref.max_temperature)
            predictions.append(fast.max_temperature)
            if (index + 1) % 100 == 0:
                _logger.info("table2: %d/%d systems", index + 1, n_systems)
    else:
        specs = [
            JobSpec(
                job_id=f"table2/{start}-{stop}",
                fn=run_table2_chunk,
                kwargs=dict(
                    start=start,
                    stop=stop,
                    seed=seed,
                    thermal_config=config,
                    position_samples=position_samples,
                    cache_dir=cache_dir,
                ),
                store_key=(
                    _chunk_store_key(
                        start, stop, seed, config, position_samples
                    )
                    if store is not None
                    else None
                ),
            )
            for start, stop in _chunk_ranges(
                n_systems,
                -(-n_systems // _STORE_CHUNK_SIZE)  # ceil division
                if store is not None
                else max(jobs, 1),
            )
        ]
        outcome = run_jobs(
            specs,
            jobs=max(jobs, 1),
            store=store,
            policy=policy,
            job_timeout=job_timeout,
            keep_going=keep_going,
            report=report,
        )
        predictions, references = [], []
        solver_time = fast_time = 0.0
        for spec in specs:  # submission order == index order
            if spec.job_id not in outcome:
                _logger.warning(
                    "table2: shard %s was quarantined; metrics cover "
                    "the surviving shards only",
                    spec.job_id,
                )
                continue
            chunk = outcome[spec.job_id]
            predictions.extend(chunk["predictions"])
            references.extend(chunk["references"])
            solver_time += chunk["solver_time"]
            fast_time += chunk["fast_time"]

    evaluated = len(predictions)
    metrics = error_metrics(predictions, references)
    return Table2Result(
        metrics=metrics,
        solver_time_per_eval=solver_time / max(evaluated, 1),
        fast_time_per_eval=fast_time / max(evaluated, 1),
        characterization_time=characterization_time,
        n_systems=evaluated,
        predictions=[float(p) for p in predictions],
        references=[float(r) for r in references],
    )
