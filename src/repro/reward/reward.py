"""The joint wirelength/temperature reward.

The paper defines

    R = -lambda * W - mu * (max(T - T0, 0))^alpha / (1 + exp(-(T - T0)))

with ``W`` the total (microbump-assigned) wirelength, ``T`` the maximum
operating temperature, ``T0`` the temperature limit, and ``alpha`` a
smoothing exponent at ``T = T0``.  Below the limit only wirelength
matters; above it the thermal penalty takes over.

The calculator composes a wirelength evaluator (bump assignment or the
fast estimator) with a thermal evaluator (grid solver or fast model), so
all four method combinations of Tables I/III are a matter of wiring.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.bumps import (
    BumpAssigner,
    estimate_wirelength,
    estimate_wirelength_batch,
)
from repro.chiplet import Placement
from repro.thermal.config import KELVIN_OFFSET

__all__ = ["RewardConfig", "RewardBreakdown", "RewardCalculator"]


@dataclass(frozen=True)
class RewardConfig:
    """Weights and limits of the reward.

    Attributes
    ----------
    lambda_wl:
        Wirelength weight in 1/mm.  The defaults below were calibrated so
        reward magnitudes land in the paper's reported range (single
        digits to tens); benchmark definitions override per system.
    mu:
        Thermal-penalty weight.
    t_limit:
        ``T0`` in degC.
    alpha:
        Exponent of the above-limit excess.
    use_bump_assignment:
        True evaluates W via per-wire microbump assignment (the paper's
        reward calculator); False uses the bundle estimator.
    """

    lambda_wl: float = 3.3e-4
    mu: float = 1.0
    t_limit: float = 85.0
    alpha: float = 1.0
    use_bump_assignment: bool = True

    def __post_init__(self) -> None:
        if self.lambda_wl < 0 or self.mu < 0:
            raise ValueError("reward weights must be non-negative")
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")

    def thermal_penalty(self, t_celsius: float) -> float:
        """The paper's smoothed above-limit penalty (>= 0)."""
        excess = max(t_celsius - self.t_limit, 0.0)
        if excess == 0.0:
            return 0.0
        return excess**self.alpha / (1.0 + math.exp(-(t_celsius - self.t_limit)))

    def combine(self, wirelength_mm: float, t_celsius: float) -> float:
        """Reward of a (wirelength, max temperature) pair."""
        return -self.lambda_wl * wirelength_mm - self.mu * self.thermal_penalty(
            t_celsius
        )

    def thermal_penalty_many(self, t_celsius: np.ndarray) -> np.ndarray:
        """Elementwise :meth:`thermal_penalty` over a temperature array.

        Each element runs the exact scalar operations (the logistic term
        is only evaluated where the excess is positive, so no overflow
        for far-below-limit temperatures either).
        """
        t_celsius = np.asarray(t_celsius, dtype=np.float64)
        excess = np.maximum(t_celsius - self.t_limit, 0.0)
        penalty = np.zeros_like(excess)
        hot = excess > 0.0
        if np.any(hot):
            t_hot = t_celsius[hot]
            penalty[hot] = excess[hot] ** self.alpha / (
                1.0 + np.exp(-(t_hot - self.t_limit))
            )
        return penalty

    def combine_many(
        self, wirelength_mm: np.ndarray, t_celsius: np.ndarray
    ) -> np.ndarray:
        """Elementwise :meth:`combine` over wirelength/temperature arrays."""
        return -self.lambda_wl * np.asarray(
            wirelength_mm, dtype=np.float64
        ) - self.mu * self.thermal_penalty_many(t_celsius)


@dataclass(frozen=True)
class RewardBreakdown:
    """Reward with its ingredients, for logging and tables."""

    reward: float
    wirelength: float
    max_temperature_c: float
    thermal_penalty: float
    elapsed_wirelength: float = 0.0
    elapsed_thermal: float = 0.0

    @property
    def elapsed(self) -> float:
        return self.elapsed_wirelength + self.elapsed_thermal


class RewardCalculator:
    """Evaluate placements: microbump assignment, thermal analysis, reward.

    Parameters
    ----------
    thermal_evaluator:
        Object with ``evaluate(placement) -> ThermalResult`` — either
        :class:`~repro.thermal.GridThermalSolver` (the HotSpot stand-in)
        or :class:`~repro.thermal.FastThermalModel` (the paper's).
    config:
        Reward weights/limits.
    assigner:
        Microbump assigner used when ``config.use_bump_assignment``.
    """

    def __init__(
        self,
        thermal_evaluator,
        config: RewardConfig | None = None,
        assigner: BumpAssigner | None = None,
    ):
        self.thermal = thermal_evaluator
        self.config = config or RewardConfig()
        # Dense default pitch/rings: enough perimeter capacity for the
        # kilowire coherence buses of the CPU-DRAM benchmark.
        self.assigner = assigner or BumpAssigner(
            pitch=0.25, rings=6, wire_group_size=8
        )
        self.evaluation_count = 0

    def wirelength(self, placement: Placement) -> float:
        """Total wirelength in mm under the configured evaluator."""
        if self.config.use_bump_assignment:
            return self.assigner.assign(placement).total_wirelength
        return estimate_wirelength(placement)

    def wirelength_many(self, placements) -> np.ndarray:
        """Batched :meth:`wirelength`.

        The bundle estimator vectorizes across the batch; per-wire bump
        assignment is inherently sequential (sites are allocated
        greedily per placement) and runs as a loop.
        """
        placements = list(placements)
        if self.config.use_bump_assignment:
            return np.array(
                [
                    self.assigner.assign(p).total_wirelength
                    for p in placements
                ]
            )
        return estimate_wirelength_batch(placements)

    def evaluate_many(self, placements) -> np.ndarray:
        """Rewards of a batch of placements in one vectorized pass.

        The search-baseline hot path: multi-chain annealers and batched
        random search only need the scalar objective per candidate, so
        this skips the per-placement :class:`RewardBreakdown`
        construction of :meth:`evaluate_batch` and fans the whole batch
        into the batched wirelength estimator and the thermal
        evaluator's vectorized peak-temperature path
        (``max_temperatures``) when it offers one.  Rewards match
        :meth:`evaluate` to float rounding.

        Thermal evaluators that declare ``exact_batched_rewards``
        (:class:`~repro.thermal.GridThermalSolver` does) are routed
        through :meth:`evaluate_many_exact` instead: their per-candidate
        cost dwarfs the reward arithmetic, and the callers that batch
        them (the multi-chain HotSpot SA arm) rely on rewards being
        *bitwise* equal to scalar evaluation, not merely close.
        """
        placements = list(placements)
        if not placements:
            return np.empty(0)
        if getattr(self.thermal, "exact_batched_rewards", False):
            return self.evaluate_many_exact(placements)
        wirelengths = self.wirelength_many(placements)
        batch_temps = getattr(self.thermal, "max_temperatures", None)
        if batch_temps is not None:
            max_temps = np.asarray(batch_temps(placements), dtype=np.float64)
        else:
            max_temps = np.array(
                [self.thermal.evaluate(p).max_temperature for p in placements]
            )
        t_celsius = max_temps - KELVIN_OFFSET
        self.evaluation_count += len(placements)
        return self.config.combine_many(wirelengths, t_celsius)

    def evaluate_many_exact(self, placements) -> np.ndarray:
        """Batched rewards **bitwise identical** to scalar :meth:`evaluate`.

        The exact-evaluator adapter behind the multi-chain HotSpot SA
        arm: ``SimulatedAnnealing.run_chains`` reproduces M sequential
        seeded runs only if every batched cost equals the scalar cost
        bit for bit (Metropolis accept/reject comparisons amplify any
        last-ulp difference into divergent trajectories).  The fully
        vectorized path cannot promise that — the batched bundle
        wirelength sums nets in a different order and the batched
        penalty uses ``np.exp`` where the scalar uses ``math.exp`` — so
        this adapter batches only the thermal analysis (the evaluator's
        ``max_temperatures`` multi-RHS path, bitwise by construction)
        and keeps wirelength and reward combination on the scalar
        codepaths per placement.  For solver-backed rewards the thermal
        solve is >99 % of the cost, so the amortization is preserved.
        """
        placements = list(placements)
        if not placements:
            return np.empty(0)
        batch_temps = getattr(self.thermal, "max_temperatures", None)
        if batch_temps is not None:
            max_temps = np.asarray(batch_temps(placements), dtype=np.float64)
        else:
            max_temps = np.array(
                [self.thermal.evaluate(p).max_temperature for p in placements]
            )
        rewards = np.empty(len(placements))
        for i, placement in enumerate(placements):
            rewards[i] = self.config.combine(
                self.wirelength(placement), max_temps[i] - KELVIN_OFFSET
            )
        self.evaluation_count += len(placements)
        return rewards

    def evaluate_batch(self, placements) -> list:
        """Evaluate a batch of completed placements in one pass.

        All placements share this calculator's (already characterized)
        thermal evaluator and bump assigner.  When the thermal evaluator
        offers a vectorized ``evaluate_batch`` (the fast model does),
        the whole batch's thermal analysis runs as one vectorized pass;
        otherwise it degrades to per-placement evaluation.  Returns one
        :class:`RewardBreakdown` per placement, in order.
        """
        placements = list(placements)
        batch_eval = getattr(self.thermal, "evaluate_batch", None)
        if batch_eval is None:
            return [self.evaluate(placement) for placement in placements]
        if not placements:
            return []
        breakdowns = []
        start = time.perf_counter()
        wirelengths = [self.wirelength(p) for p in placements]
        t_wl = (time.perf_counter() - start) / len(placements)
        for wirelength, thermal_result in zip(wirelengths, batch_eval(placements)):
            t_celsius = thermal_result.max_temperature - KELVIN_OFFSET
            self.evaluation_count += 1
            breakdowns.append(
                RewardBreakdown(
                    reward=self.config.combine(wirelength, t_celsius),
                    wirelength=wirelength,
                    max_temperature_c=t_celsius,
                    thermal_penalty=self.config.thermal_penalty(t_celsius),
                    elapsed_wirelength=t_wl,
                    elapsed_thermal=thermal_result.elapsed,
                )
            )
        return breakdowns

    def evaluate(self, placement: Placement) -> RewardBreakdown:
        """Full reward evaluation of a complete placement."""
        start = time.perf_counter()
        wirelength = self.wirelength(placement)
        t_wl = time.perf_counter() - start

        thermal_result = self.thermal.evaluate(placement)
        t_celsius = thermal_result.max_temperature - KELVIN_OFFSET
        self.evaluation_count += 1
        return RewardBreakdown(
            reward=self.config.combine(wirelength, t_celsius),
            wirelength=wirelength,
            max_temperature_c=t_celsius,
            thermal_penalty=self.config.thermal_penalty(t_celsius),
            elapsed_wirelength=t_wl,
            elapsed_thermal=thermal_result.elapsed,
        )
