"""Minimal reverse-mode autograd framework in pure numpy.

The paper trains its agent with PyTorch; this environment has no GPU
frameworks, so the reproduction ships its own: a :class:`Tensor` with
reverse-mode autodiff, the layers PPO/RND need (Conv2d, Linear), Adam,
and a masked categorical distribution.  The numerics match the standard
definitions; only wall-clock differs.
"""

from repro.nn.tensor import Tensor, no_grad
from repro.nn.layers import (
    Conv2d,
    Flatten,
    Linear,
    Module,
    ReLU,
    Sequential,
    Tanh,
)
from repro.nn.optim import SGD, Adam, clip_grad_norm
from repro.nn.distributions import MaskedCategorical
from repro.nn.init import kaiming_uniform, orthogonal
from repro.nn.serialization import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointSchemaError,
    LegacyCheckpointError,
    PayloadIntegrityError,
    dumps_payload,
    load_payload,
    load_state_dict,
    loads_payload,
    save_payload,
    save_state_dict,
)

__all__ = [
    "Tensor",
    "no_grad",
    "Module",
    "Linear",
    "Conv2d",
    "Sequential",
    "ReLU",
    "Tanh",
    "Flatten",
    "Adam",
    "SGD",
    "clip_grad_norm",
    "MaskedCategorical",
    "kaiming_uniform",
    "orthogonal",
    "save_state_dict",
    "load_state_dict",
    "save_payload",
    "load_payload",
    "dumps_payload",
    "loads_payload",
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointSchemaError",
    "LegacyCheckpointError",
    "PayloadIntegrityError",
]
