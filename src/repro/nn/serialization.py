"""Checkpointing: state dicts and versioned payloads to/from ``.npz``.

Two layers:

* :func:`save_state_dict` / :func:`load_state_dict` — the original flat
  ``{name: array}`` archive.  Still used for weight-only exports; a
  file written this way carries **no** schema marker.
* :func:`save_payload` / :func:`load_payload` — the versioned
  checkpoint schema (``CHECKPOINT_SCHEMA_VERSION``).  A payload is an
  arbitrarily nested dict whose leaves may be numpy arrays, JSON
  scalars (int/float/bool/str/None — including the arbitrary-precision
  integers inside ``bit_generator.state``), or any picklable object
  (reward breakdowns, placements).  Arrays land natively in the
  ``.npz``; everything else is described by a JSON ``__meta__`` tree
  so floats and big ints round-trip **bitwise** (Python's JSON float
  repr is shortest-exact, and its ints are unbounded).
* :func:`dumps_payload` / :func:`loads_payload` — the same schema,
  round-tripped through ``bytes`` instead of a file.  This is how the
  distributed episode collector ships the trainer's policy weights to
  its worker processes once per epoch: the bytes a worker decodes are
  exactly the bytes :func:`save_payload` would have written.

The split exists so resumable checkpoints can be told apart from legacy
weight-only files: :func:`load_payload` raises
:class:`LegacyCheckpointError` on an archive without ``__meta__``
instead of silently resuming with reset optimizer/RNG state.

Every payload (bytes or file) is sealed with a SHA-256 **integrity
footer**: truncated or bit-flipped payloads fail loudly as
:class:`PayloadIntegrityError` — an ``OSError`` subclass, so the retry
policy classifies corruption-in-transit as transient (re-broadcast /
re-read) while the store's corrupt-quarantine path still catches it as
a :class:`CheckpointSchemaError`.
"""

from __future__ import annotations

import hashlib
import io
import json
import pickle
import zlib
from pathlib import Path

import numpy as np

from repro.parallel.cache import atomic_replace

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointSchemaError",
    "LegacyCheckpointError",
    "PayloadIntegrityError",
    "save_state_dict",
    "load_state_dict",
    "save_payload",
    "load_payload",
    "dumps_payload",
    "loads_payload",
]

#: Bump on any incompatible change to the payload layout or to what the
#: trainer/annealer pack into their checkpoints.  Old files then fail
#: loudly (``CheckpointSchemaError``) instead of resuming wrong.
#: v2: trainer checkpoints gained the distributed-collection state
#: (``collect_jobs`` and the explicit ``best_episode`` selection index).
#: v3: payloads carry a SHA-256 integrity footer, so corruption fails
#: as ``PayloadIntegrityError`` instead of a confusing unpickle error.
CHECKPOINT_SCHEMA_VERSION = 3

_META_KEY = "__meta__"
_FORMAT = "repro-checkpoint"

#: Trailing integrity footer: 8-byte magic + SHA-256 of everything
#: before it.  Appended *outside* the npz archive so verification needs
#: no zip parsing — a truncated file fails before np.load ever runs.
_FOOTER_MAGIC = b"RPRSHA2\x00"
_DIGEST_BYTES = 32
_FOOTER_BYTES = len(_FOOTER_MAGIC) + _DIGEST_BYTES

#: Leading marker of a zlib-compressed payload (``compress=True``).
#: The compressed stream wraps the *entire* sealed payload — archive
#: bytes plus integrity footer — so the footer digest is always
#: computed and verified over the uncompressed bytes: compression is a
#: pure transport encoding, invisible to the schema.  Footer-less
#: legacy bytes can never start with this marker (npz archives start
#: with zip's ``PK``), so auto-detection on load is unambiguous.
_ZLIB_MAGIC = b"RPRZLB1\x00"

#: zlib level used for ``compress=True``.  Level 1 targets the
#: broadcast use case: policy-weight payloads are re-sent to every
#: collection worker every epoch, so encode speed matters more than
#: the last few percent of ratio (the arrays inside the archive are
#: already npz-deflated; what shrinks here is mostly the repeated
#: metadata/framing and any pickled progress state).
_ZLIB_LEVEL = 1


class CheckpointSchemaError(RuntimeError):
    """The checkpoint's schema version or kind does not match."""


class LegacyCheckpointError(CheckpointSchemaError):
    """A weight-only legacy archive was given where a full versioned
    checkpoint is required (it has no optimizer/RNG payload to resume
    from)."""


class PayloadIntegrityError(CheckpointSchemaError, OSError):
    """The payload bytes fail their SHA-256 integrity footer.

    Deliberately double-classified: as a :class:`CheckpointSchemaError`
    the run store quarantines a corrupted artifact to ``*.corrupt``
    like any other schema failure, and as an ``OSError`` the fault
    layer (:data:`repro.parallel.faults.TRANSIENT_EXCEPTIONS`)
    classifies corruption-in-transit as *transient* — a re-broadcast or
    re-read of the same source bytes is expected to succeed.
    """


def _seal(data: bytes) -> bytes:
    """Append the integrity footer to serialized payload bytes."""
    return data + _FOOTER_MAGIC + hashlib.sha256(data).digest()


def _maybe_decompress(data: bytes, source: str) -> bytes:
    """Undo the optional zlib transport encoding (see ``_ZLIB_MAGIC``).

    Bytes without the marker pass through untouched.  A marked stream
    that fails to inflate was corrupted in transit, which is exactly
    what :class:`PayloadIntegrityError` means — the sealed payload
    inside would have failed its footer too, we just find out earlier.
    """
    if not data.startswith(_ZLIB_MAGIC):
        return data
    try:
        return zlib.decompress(data[len(_ZLIB_MAGIC) :])
    except zlib.error as error:
        raise PayloadIntegrityError(
            f"{source}: compressed payload bytes fail to inflate "
            f"({error}) — the stream was corrupted in transit or on disk"
        ) from error


def _unseal(data: bytes, source: str) -> bytes:
    """Verify and strip the integrity footer; raise on any mismatch.

    Bytes without the footer magic fall through unchanged: legacy
    archives (schema v2 payloads, weight-only state dicts) must keep
    raising their specific, actionable errors downstream
    (``CheckpointSchemaError`` version mismatch /
    ``LegacyCheckpointError``) rather than a generic corruption one.
    """
    if (
        len(data) >= _FOOTER_BYTES
        and data[-_FOOTER_BYTES : -_DIGEST_BYTES] == _FOOTER_MAGIC
    ):
        body, digest = data[:-_FOOTER_BYTES], data[-_DIGEST_BYTES:]
        if hashlib.sha256(body).digest() != digest:
            raise PayloadIntegrityError(
                f"{source}: payload bytes fail their SHA-256 integrity "
                "footer — the archive was corrupted in transit or on disk"
            )
        return body
    return data


def save_state_dict(state: dict, path) -> None:
    """Write a ``{name: array}`` state dict to ``path`` (.npz)."""
    np.savez_compressed(Path(path), **state)


def load_state_dict(path) -> dict:
    """Read a state dict previously written by :func:`save_state_dict`."""
    with np.load(Path(path)) as data:
        return {key: data[key].copy() for key in data.files}


# ----------------------------------------------------------------------
# versioned nested payloads
# ----------------------------------------------------------------------

_JSON_SCALARS = (bool, int, float, str, type(None))


def _encode(value, arrays: dict):
    """Encode ``value`` into a JSON-able tree, hoisting arrays out."""
    if isinstance(value, np.ndarray):
        slot = f"a{len(arrays)}"
        arrays[slot] = value
        return {"t": "array", "slot": slot}
    if isinstance(value, np.generic):  # numpy scalar: keep dtype exactly
        slot = f"a{len(arrays)}"
        arrays[slot] = np.asarray(value)
        return {"t": "scalar", "slot": slot}
    if isinstance(value, _JSON_SCALARS):
        return {"t": "json", "v": value}
    if isinstance(value, dict):
        items = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"payload dict keys must be str, got {type(key).__name__}"
                )
            items[key] = _encode(item, arrays)
        return {"t": "dict", "items": items}
    if isinstance(value, (list, tuple)):
        return {
            "t": "tuple" if isinstance(value, tuple) else "list",
            "items": [_encode(item, arrays) for item in value],
        }
    # Anything else (placements, breakdowns, ...) rides along pickled.
    slot = f"a{len(arrays)}"
    arrays[slot] = np.frombuffer(
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL), dtype=np.uint8
    )
    return {"t": "pickle", "slot": slot}


def _decode(node, arrays: dict):
    kind = node["t"]
    if kind == "array":
        return arrays[node["slot"]].copy()
    if kind == "scalar":
        return arrays[node["slot"]][()]
    if kind == "json":
        return node["v"]
    if kind == "dict":
        return {key: _decode(item, arrays) for key, item in node["items"].items()}
    if kind == "list":
        return [_decode(item, arrays) for item in node["items"]]
    if kind == "tuple":
        return tuple(_decode(item, arrays) for item in node["items"])
    if kind == "pickle":
        return pickle.loads(arrays[node["slot"]].tobytes())
    raise CheckpointSchemaError(f"unknown payload node type {kind!r}")


def _pack(payload: dict, kind: str) -> dict:
    """Encode a payload into the flat ``{slot: array}`` npz mapping."""
    arrays: dict = {}
    tree = _encode(payload, arrays)
    meta = {
        "format": _FORMAT,
        "version": CHECKPOINT_SCHEMA_VERSION,
        "kind": kind,
        "tree": tree,
    }
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    return arrays


def _unpack(arrays: dict, kind: str | None, source: str) -> dict:
    """Decode a ``{slot: array}`` mapping back into the payload."""
    if _META_KEY not in arrays:
        raise LegacyCheckpointError(
            f"{source} is a legacy weight-only state dict (no {_META_KEY!r} "
            "schema marker): it carries no optimizer, RNG or progress "
            "state and cannot resume a run.  Re-save it with "
            "save_payload / RLPlannerTrainer.save_checkpoint, or load "
            "the raw weights explicitly via load_state_dict."
        )
    meta = json.loads(arrays.pop(_META_KEY).tobytes().decode("utf-8"))
    if meta.get("format") != _FORMAT:
        raise CheckpointSchemaError(
            f"{source}: unrecognized checkpoint format {meta.get('format')!r}"
        )
    version = meta.get("version")
    if version != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointSchemaError(
            f"{source}: checkpoint schema version {version} != supported "
            f"{CHECKPOINT_SCHEMA_VERSION}; regenerate the checkpoint "
            "(there is no in-place upgrade path)"
        )
    if kind is not None and meta.get("kind") != kind:
        raise CheckpointSchemaError(
            f"{source}: checkpoint kind {meta.get('kind')!r} != expected "
            f"{kind!r}"
        )
    return _decode(meta["tree"], arrays)


def save_payload(payload: dict, path, kind: str, *, compress: bool = False) -> None:
    """Write a nested checkpoint payload to ``path`` (.npz).

    ``kind`` names what the payload is (``"rlplanner-trainer"``,
    ``"sa-engine"``, ...); :func:`load_payload` refuses to hand a
    payload of one kind to a consumer expecting another.

    The write is atomic (temp file + ``os.replace``): checkpoints are
    typically overwritten in place, and a kill mid-write must corrupt
    the *new* file, never the last good one.  The written bytes are
    exactly :func:`dumps_payload`'s (integrity footer included), so the
    two forms are interchangeable byte-for-byte.  ``compress=True``
    applies the same opt-in zlib transport encoding (auto-detected on
    load, decoded payload bitwise identical).
    """
    data = dumps_payload(payload, kind, compress=compress)
    path = Path(path)
    if not path.suffix:
        path = path.with_suffix(".npz")  # historical np.savez convention
    with atomic_replace(path, suffix=".npz") as tmp:
        Path(tmp).write_bytes(data)


def load_payload(path, kind: str | None = None) -> dict:
    """Read a payload written by :func:`save_payload`.

    Raises
    ------
    LegacyCheckpointError
        The file is a plain (weight-only) state-dict archive with no
        schema marker — it cannot seed a bitwise resume.
    PayloadIntegrityError
        The file fails its integrity footer (corrupted/truncated).
    CheckpointSchemaError
        Schema version or ``kind`` mismatch.
    """
    path = Path(path)
    return loads_payload(path.read_bytes(), kind, source=str(path))


def dumps_payload(payload: dict, kind: str, *, compress: bool = False) -> bytes:
    """Serialize a payload to ``bytes`` (same schema as the ``.npz``).

    Used where the payload crosses a process boundary instead of a
    filesystem: the collector broadcasts policy weights to its workers
    as one opaque byte string per epoch.  The bytes end in a SHA-256
    integrity footer so corruption in transit fails loudly (and
    transiently) at :func:`loads_payload`.

    ``compress=True`` additionally zlib-wraps the sealed bytes (marked
    with a leading magic so :func:`loads_payload` auto-detects it;
    no flag needed on the receiving side).  The integrity footer is
    computed — and verified — over the *uncompressed* bytes, so the
    decoded payload is bitwise identical to the uncompressed form and
    a decompressed stream still fails loudly on any bit flip the
    deflate framing happened to survive.
    """
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **_pack(payload, kind))
    data = _seal(buffer.getvalue())
    if compress:
        return _ZLIB_MAGIC + zlib.compress(data, _ZLIB_LEVEL)
    return data


def loads_payload(
    data: bytes, kind: str | None = None, *, source: str = "<payload bytes>"
) -> dict:
    """Decode a payload produced by :func:`dumps_payload`.

    Verifies the integrity footer first; an archive that then fails to
    parse at all (a truncation that also destroyed the footer) raises
    :class:`PayloadIntegrityError` rather than a raw zip error.
    Zlib-compressed payloads (``dumps_payload(..., compress=True)``)
    are detected by their leading magic and inflated transparently.
    """
    body = _unseal(_maybe_decompress(data, source), source)
    try:
        with np.load(io.BytesIO(body)) as npz:
            arrays = {key: npz[key].copy() for key in npz.files}
    except PayloadIntegrityError:
        raise
    except Exception as error:
        raise PayloadIntegrityError(
            f"{source}: payload bytes are not a readable archive "
            f"({error!r}) — truncated or corrupted"
        ) from error
    return _unpack(arrays, kind, source)
