"""Tests for the transient thermal solver (extension)."""

import numpy as np
import pytest

from repro.chiplet import Chiplet, ChipletSystem, Placement
from repro.thermal import GridThermalSolver, ThermalConfig
from repro.thermal.transient import (
    TransientThermalSolver,
    VOLUMETRIC_HEAT_CAPACITY,
)


@pytest.fixture(scope="module")
def setup(request):
    from repro.chiplet import Interposer

    interposer = Interposer(30.0, 30.0)
    config = ThermalConfig(rows=24, cols=24, package_margin=8.0)
    solver = GridThermalSolver(interposer, config, reuse_factorization=True)
    system = ChipletSystem(
        "transient", interposer, (Chiplet("die", 8.0, 8.0, 40.0),)
    )
    placement = Placement(system)
    placement.place("die", 11.0, 11.0)
    return solver, config, placement


class TestConstruction:
    def test_rejects_bad_dt(self, setup):
        solver, _, _ = setup
        with pytest.raises(ValueError):
            TransientThermalSolver(solver, dt=0.0)

    def test_rejects_heterogeneous_mode(self):
        from repro.chiplet import Interposer

        config = ThermalConfig(
            rows=16, cols=16, package_margin=4.0, heterogeneous_chiplet_layer=True
        )
        solver = GridThermalSolver(Interposer(20, 20), config)
        with pytest.raises(ValueError, match="homogeneous"):
            TransientThermalSolver(solver)

    def test_capacity_table_covers_default_stack(self, setup):
        solver, config, _ = setup
        for layer in config.stack.layers:
            assert layer.material.name in VOLUMETRIC_HEAT_CAPACITY


class TestPhysics:
    def test_zero_power_stays_ambient(self, setup):
        solver, config, placement = setup
        system = placement.system
        cold = ChipletSystem(
            "cold", system.interposer, (Chiplet("die", 8.0, 8.0, 0.0),)
        )
        p = Placement(cold)
        p.place("die", 11.0, 11.0)
        transient = TransientThermalSolver(solver, dt=0.5)
        result = transient.simulate(p, duration=5.0)
        np.testing.assert_allclose(
            result.max_temperature, config.ambient, atol=1e-9
        )

    def test_monotone_step_response(self, setup):
        solver, _, placement = setup
        transient = TransientThermalSolver(solver, dt=0.5)
        result = transient.simulate(placement, duration=20.0)
        diffs = np.diff(result.max_temperature)
        assert (diffs >= -1e-9).all()
        assert result.max_temperature[0] < result.max_temperature[-1]

    def test_converges_to_steady_state(self, setup):
        solver, _, placement = setup
        steady = solver.evaluate(placement).max_temperature
        transient = TransientThermalSolver(solver, dt=2.0)
        result = transient.simulate(placement, duration=2000.0)
        assert result.final_max_temperature == pytest.approx(steady, abs=0.3)

    def test_power_off_cools_back_down(self, setup):
        solver, config, placement = setup
        transient = TransientThermalSolver(solver, dt=0.5)
        heat = transient.simulate(placement, duration=30.0)
        cool = transient.simulate(
            placement,
            duration=2000.0,
            power_scale=lambda t: 0.0,
            initial_field=heat.final_field,
        )
        assert cool.max_temperature[-1] == pytest.approx(
            config.ambient, abs=0.3
        )
        assert cool.max_temperature[0] > cool.max_temperature[-1]

    def test_duty_cycle_cooler_than_constant(self, setup):
        solver, _, placement = setup
        transient = TransientThermalSolver(solver, dt=0.5)
        constant = transient.simulate(placement, duration=60.0)
        pulsed = transient.simulate(
            placement,
            duration=60.0,
            power_scale=lambda t: 1.0 if (t % 10.0) < 5.0 else 0.0,
        )
        assert pulsed.max_temperature.max() < constant.max_temperature.max()

    def test_per_die_traces_present(self, setup):
        solver, _, placement = setup
        transient = TransientThermalSolver(solver, dt=1.0)
        result = transient.simulate(placement, duration=5.0)
        assert "die" in result.chiplet_temperatures
        assert len(result.chiplet_temperatures["die"]) == len(result.times)


class TestMetrics:
    def test_time_to_fraction(self, setup):
        solver, _, placement = setup
        transient = TransientThermalSolver(solver, dt=0.5)
        result = transient.simulate(placement, duration=300.0)
        t50 = result.time_to_fraction(0.5)
        t90 = result.time_to_fraction(0.9)
        assert 0.0 < t50 < t90 <= 300.0

    def test_time_to_fraction_validation(self, setup):
        solver, config, placement = setup
        transient = TransientThermalSolver(solver, dt=0.5)
        result = transient.simulate(placement, duration=10.0)
        with pytest.raises(ValueError):
            result.time_to_fraction(1.5)

    def test_bad_initial_field_rejected(self, setup):
        solver, _, placement = setup
        transient = TransientThermalSolver(solver, dt=0.5)
        with pytest.raises(ValueError, match="shape"):
            transient.simulate(
                placement, duration=1.0, initial_field=np.zeros((2, 2))
            )


class TestBundledSystemSmoke:
    """Bitwise pin of ``simulate()``/``time_to_fraction()`` on a bundled
    benchmark (satellite: transient smoke coverage beyond the synthetic
    single-die fixture).  The physics tests above argue correctness;
    this pins the exact numbers so solver refactors cannot silently
    change transient results on a real system geometry.
    """

    @pytest.fixture(scope="class")
    def multi_gpu_result(self):
        from repro.systems import get_benchmark

        system = get_benchmark("multi_gpu").system
        config = ThermalConfig(rows=20, cols=20, package_margin=8.0)
        solver = GridThermalSolver(
            system.interposer, config, reuse_factorization=True
        )
        placement = Placement(system)
        # A fixed, non-overlapping 4x3 arrangement on the 55x55 mm
        # interposer — deterministic input, nothing searched.
        cols = [2.0, 16.0, 30.0, 41.0]
        rows = [2.0, 21.0, 41.0]
        for i, chiplet in enumerate(system.chiplets):
            placement.place(chiplet.name, cols[i % 4], rows[i // 4])
        transient = TransientThermalSolver(solver, dt=1.0)
        return transient.simulate(placement, duration=40.0)

    def test_trace_shape(self, multi_gpu_result):
        assert len(multi_gpu_result.times) == 41
        assert len(multi_gpu_result.max_temperature) == 41
        assert set(multi_gpu_result.chiplet_temperatures) == {
            f"{kind}{i}{j}" if kind == "hbm" else f"{kind}{i}"
            for kind in ("gpu", "hbm")
            for i in range(4)
            for j in (range(2) if kind == "hbm" else [None])
        }

    def test_simulate_is_bitwise_pinned(self, multi_gpu_result):
        result = multi_gpu_result
        assert float(result.max_temperature[0]).hex() == "0x1.3e26666666666p+8"
        assert (
            float(result.final_max_temperature).hex() == "0x1.bfc5e369be9aap+8"
        )
        assert (
            float(result.chiplet_temperatures["gpu0"][-1]).hex()
            == "0x1.bc7293d998e12p+8"
        )

    def test_time_to_fraction_is_bitwise_pinned(self, multi_gpu_result):
        assert (
            float(multi_gpu_result.time_to_fraction(0.9)).hex()
            == "0x1.f000000000000p+4"
        )
