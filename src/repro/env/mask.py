"""Action-mask computation.

The action space is the set of grid cells where the current chiplet's
lower-left corner may land.  A cell is feasible when the footprint stays
on the interposer and keeps ``min_spacing`` clearance from every placed
die.  Infeasible-region marking is vectorized per placed die, so the
cost is O(placed * blocked cells), not O(cells * placed).

:func:`feasible_cells_batch` computes masks for many episodes at once;
it shares the in-bounds region across the batch and memoizes the carved
bounds of identical placed rectangles, and is guaranteed cell-for-cell
identical to calling :func:`feasible_cells` per episode (both run the
same bound arithmetic).
"""

from __future__ import annotations

import numpy as np

from repro.geometry import PlacementGrid, Rect

__all__ = ["feasible_cells", "feasible_cells_batch"]


def _inbounds_region(
    grid: PlacementGrid, die_width: float, die_height: float
) -> tuple | None:
    """``(last_row, last_col)`` of feasible lower-left origins, or None."""
    max_x = grid.width - die_width
    max_y = grid.height - die_height
    if max_x < 0 or max_y < 0:
        return None  # die does not fit at all
    # Cell origins are col*dx / row*dy; feasible while origin <= max.
    last_col = int(np.floor(max_x / grid.dx + 1e-9))
    last_row = int(np.floor(max_y / grid.dy + 1e-9))
    return last_row, last_col


def _carve_bounds(
    grid: PlacementGrid,
    rect: Rect,
    die_width: float,
    die_height: float,
    min_spacing: float,
) -> tuple | None:
    """Row/col slice bounds blocked by one placed die, or None if empty.

    These are the origins where ``[x, x+w) x [y, y+h)`` would come within
    ``min_spacing`` of ``rect``.
    """
    x_lo = rect.x - min_spacing - die_width
    x_hi = rect.x2 + min_spacing
    y_lo = rect.y - min_spacing - die_height
    y_hi = rect.y2 + min_spacing
    col_lo = max(int(np.floor(x_lo / grid.dx + 1e-9)) + 1, 0)
    col_hi = min(int(np.ceil(x_hi / grid.dx - 1e-9)), grid.cols)
    row_lo = max(int(np.floor(y_lo / grid.dy + 1e-9)) + 1, 0)
    row_hi = min(int(np.ceil(y_hi / grid.dy - 1e-9)), grid.rows)
    if col_lo < col_hi and row_lo < row_hi:
        return row_lo, row_hi, col_lo, col_hi
    return None


def feasible_cells(
    grid: PlacementGrid,
    die_width: float,
    die_height: float,
    placed: list,
    min_spacing: float = 0.0,
) -> np.ndarray:
    """Boolean (rows, cols) mask of feasible lower-left cells.

    Parameters
    ----------
    grid:
        Placement grid over the interposer.
    die_width, die_height:
        Footprint of the die about to be placed, in mm.
    placed:
        Footprint :class:`Rect` of every already-placed die.
    min_spacing:
        Minimum boundary clearance in mm.
    """
    mask = np.zeros(grid.shape, dtype=bool)
    # In-bounds region: lower-left cells whose origin keeps the die inside.
    region = _inbounds_region(grid, die_width, die_height)
    if region is None:
        return mask
    last_row, last_col = region
    mask[: last_row + 1, : last_col + 1] = True

    # Carve out the forbidden neighbourhood of each placed die.
    for rect in placed:
        bounds = _carve_bounds(grid, rect, die_width, die_height, min_spacing)
        if bounds is not None:
            row_lo, row_hi, col_lo, col_hi = bounds
            mask[row_lo:row_hi, col_lo:col_hi] = False
    return mask


def feasible_cells_batch(
    grid: PlacementGrid,
    die_width: float,
    die_height: float,
    placed_per_episode: list,
    min_spacing: float = 0.0,
) -> np.ndarray:
    """Boolean (n, rows, cols) masks for ``n`` independent episodes.

    ``placed_per_episode[i]`` is the placed-footprint list of episode
    ``i``.  The in-bounds region is computed once for the whole batch and
    carve bounds are memoized across episodes (lockstep rollouts place
    the same die sizes, so identical rectangles recur often).
    """
    n = len(placed_per_episode)
    masks = np.zeros((n,) + grid.shape, dtype=bool)
    region = _inbounds_region(grid, die_width, die_height)
    if region is None or n == 0:
        return masks
    last_row, last_col = region
    masks[:, : last_row + 1, : last_col + 1] = True

    bounds_cache: dict = {}
    for i, placed in enumerate(placed_per_episode):
        for rect in placed:
            key = (rect.x, rect.y, rect.w, rect.h)
            if key in bounds_cache:
                bounds = bounds_cache[key]
            else:
                bounds = _carve_bounds(
                    grid, rect, die_width, die_height, min_spacing
                )
                bounds_cache[key] = bounds
            if bounds is not None:
                row_lo, row_hi, col_lo, col_hi = bounds
                masks[i, row_lo:row_hi, col_lo:col_hi] = False
    return masks
