"""Material library for the compact thermal model.

Conductivities are room-temperature bulk values from standard references
(the same ballpark HotSpot's example configs use).  Temperature dependence
is ignored, consistent with HotSpot's linear RC formulation.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Material", "MATERIALS"]


@dataclass(frozen=True)
class Material:
    """A thermally homogeneous material.

    Attributes
    ----------
    name:
        Identifier (key in :data:`MATERIALS`).
    conductivity:
        Thermal conductivity k in W/(m K).
    """

    name: str
    conductivity: float

    def __post_init__(self) -> None:
        if self.conductivity <= 0:
            raise ValueError(f"{self.name}: conductivity must be positive")

    @property
    def conductivity_mm(self) -> float:
        """k in W/(mm K) — the geometry code works in millimetres."""
        return self.conductivity / 1000.0


MATERIALS = {
    "silicon": Material("silicon", 120.0),  # lightly doped Si near 350 K
    "copper": Material("copper", 400.0),
    "aluminum": Material("aluminum", 205.0),
    "tim": Material("tim", 5.0),  # decent thermal grease / gel
    "underfill": Material("underfill", 0.9),  # epoxy underfill between dies
    "fr4": Material("fr4", 0.3),
    "solder": Material("solder", 50.0),  # microbump/C4 layer, effective
    "air": Material("air", 0.026),
}
