"""Transient thermal simulation (extension; HotSpot's second mode).

The steady-state solver answers "how hot does this floorplan get";
the transient solver answers "how fast" — relevant for duty-cycled
accelerators where a floorplan that clears the limit in steady state may
still overshoot during bursts, and vice versa.

The RC network gains per-cell heat capacities ``C`` and is integrated
with implicit (backward) Euler:

    (C/dt + G) T_{n+1} = (C/dt) T_n + q(t_{n+1})

Backward Euler is unconditionally stable, so the step size is chosen for
accuracy only; the iteration matrix is factorized once per ``dt``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.chiplet import Placement
from repro.thermal.grid_solver import GridThermalSolver

__all__ = ["VOLUMETRIC_HEAT_CAPACITY", "TransientResult", "TransientThermalSolver"]

# Volumetric heat capacity in J/(mm^3 K) (= rho * c_p / 1e9).
VOLUMETRIC_HEAT_CAPACITY = {
    "silicon": 1.66e-3,
    "copper": 3.45e-3,
    "aluminum": 2.42e-3,
    "tim": 2.0e-3,
    "underfill": 1.7e-3,
    "fr4": 1.6e-3,
    "solder": 1.7e-3,
    "air": 1.2e-6,
}


@dataclass
class TransientResult:
    """Time series of one transient simulation."""

    times: np.ndarray
    max_temperature: np.ndarray  # K, hottest chiplet-layer cell over time
    chiplet_temperatures: dict  # name -> array over time (K)
    final_field: np.ndarray  # (L, R, C) temperatures at the end
    metadata: dict = field(default_factory=dict)

    @property
    def final_max_temperature(self) -> float:
        return float(self.max_temperature[-1])

    def time_to_fraction(self, fraction: float = 0.9) -> float:
        """First time the max rise reaches ``fraction`` of its final rise.

        The classic step-response metric (0.9 -> "t90").
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        rise = self.max_temperature - self.max_temperature[0]
        final_rise = rise[-1]
        if final_rise <= 0:
            raise ValueError("no temperature rise in this simulation")
        above = np.flatnonzero(rise >= fraction * final_rise)
        if not len(above):
            raise ValueError("simulation too short to reach the fraction")
        return float(self.times[above[0]])


class TransientThermalSolver:
    """Implicit-Euler integrator over a :class:`GridThermalSolver` network.

    Parameters
    ----------
    solver:
        The steady-state solver whose conductance matrix and package
        geometry are reused.  Must be in the default homogeneous mode
        (the matrix is then placement-independent).
    dt:
        Time step in seconds.  Package-level thermal time constants are
        O(1-100 s); 0.25 s resolves them comfortably.
    """

    def __init__(self, solver: GridThermalSolver, dt: float = 0.25):
        if dt <= 0:
            raise ValueError("dt must be positive")
        if solver.config.heterogeneous_chiplet_layer:
            raise ValueError(
                "transient solver requires the homogeneous chiplet layer"
            )
        self.solver = solver
        self.dt = dt
        self._capacitance = self._cell_capacitances()
        conductance = solver._assemble_matrix(
            solver._chiplet_layer_conductivity({})
        ).tocsc()
        iteration_matrix = (
            sp.diags(self._capacitance / dt).tocsc() + conductance
        )
        self._step_factor = spla.factorized(iteration_matrix)

    def _cell_capacitances(self) -> np.ndarray:
        """Per-node heat capacity in J/K, layer by layer."""
        solver = self.solver
        grid = solver.grid
        cell_area = grid.cell_area
        caps = []
        core = solver._core_cover.ravel()
        for layer in solver.config.stack.layers:
            volume = cell_area * layer.thickness
            c_core = VOLUMETRIC_HEAT_CAPACITY[layer.material.name] * volume
            if layer.periphery_material is not None:
                c_peri = (
                    VOLUMETRIC_HEAT_CAPACITY[layer.periphery_material.name]
                    * volume
                )
                caps.append(core * c_core + (1.0 - core) * c_peri)
            else:
                caps.append(np.full(grid.n_cells, c_core))
        return np.concatenate(caps)

    # ------------------------------------------------------------------

    def simulate(
        self,
        placement: Placement,
        duration: float,
        power_scale=None,
        initial_field: np.ndarray | None = None,
    ) -> TransientResult:
        """Integrate the package temperature over ``duration`` seconds.

        Parameters
        ----------
        placement:
            The floorplan whose power map drives the simulation.
        duration:
            Simulated time in seconds.
        power_scale:
            Optional ``f(t) -> float`` multiplying all chiplet powers at
            time ``t`` (duty cycling); default is a unit step.
        initial_field:
            Starting temperatures, shape ``(L, R, C)``; defaults to
            ambient everywhere.
        """
        solver = self.solver
        n_steps = max(int(round(duration / self.dt)), 1)
        footprints = placement.footprints()
        powers = {
            name: placement.system.chiplet(name).power for name in footprints
        }
        rhs_full = solver._assemble_rhs(footprints, powers)
        rhs_ambient = solver._assemble_rhs({}, {})
        rhs_power = rhs_full - rhs_ambient  # pure injection part

        if initial_field is None:
            temps = np.full(rhs_full.shape, solver.config.ambient)
        else:
            temps = np.asarray(initial_field, dtype=np.float64).ravel().copy()
            if temps.shape != rhs_full.shape:
                raise ValueError("initial_field has the wrong shape")

        chip_idx = solver.config.stack.chiplet_layer_index
        rows, cols = solver.grid.shape
        n_per_layer = rows * cols
        chip_slice = slice(chip_idx * n_per_layer, (chip_idx + 1) * n_per_layer)
        die_masks = {
            name: (solver.chip_coverage(rect) >= 0.5).ravel()
            for name, rect in footprints.items()
        }

        times = np.empty(n_steps + 1)
        max_trace = np.empty(n_steps + 1)
        die_traces = {name: np.empty(n_steps + 1) for name in footprints}
        c_over_dt = self._capacitance / self.dt

        def record(step: int, t: float) -> None:
            chip_layer = temps[chip_slice]
            times[step] = t
            max_trace[step] = chip_layer.max()
            for name, mask in die_masks.items():
                die_traces[name][step] = (
                    chip_layer[mask].max() if mask.any() else temps.max()
                )

        record(0, 0.0)
        for step in range(1, n_steps + 1):
            t = step * self.dt
            scale = 1.0 if power_scale is None else float(power_scale(t))
            rhs = c_over_dt * temps + rhs_ambient + scale * rhs_power
            temps = self._step_factor(rhs)
            record(step, t)

        return TransientResult(
            times=times,
            max_temperature=max_trace,
            chiplet_temperatures=die_traces,
            final_field=temps.reshape(
                solver.config.stack.n_layers, rows, cols
            ),
            metadata={"dt": self.dt, "n_steps": n_steps},
        )
