"""The sequential-placement environment (paper Fig. 1's left block).

Chiplets are placed one per step, largest first.  The action is the grid
cell receiving the current chiplet's lower-left corner (optionally x2
for 90-degree rotation).  Infeasible cells are masked.  The reward is
terminal: after the last placement the reward calculator performs
microbump assignment and thermal analysis.

A *deadlock* (no feasible cell for the current die) ends the episode
with a configurable penalty; the mask makes this rare but tight packings
can still paint themselves into a corner.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chiplet import ChipletSystem, Placement
from repro.env.mask import feasible_cells
from repro.env.state import ObservationBuilder
from repro.geometry import PlacementGrid
from repro.reward import RewardCalculator

__all__ = ["EnvConfig", "StepResult", "FloorplanEnv"]


@dataclass(frozen=True)
class EnvConfig:
    """Environment parameters.

    Attributes
    ----------
    grid_size:
        Placement grid resolution (``grid_size x grid_size`` actions).
    allow_rotation:
        Doubles the action space with 90-degree-rotated placements.
    deadlock_penalty:
        Terminal reward when the mask empties mid-episode; should sit
        well below any achievable legal reward.
    """

    grid_size: int = 32
    allow_rotation: bool = False
    deadlock_penalty: float = -100.0

    def __post_init__(self) -> None:
        if self.grid_size < 2:
            raise ValueError("grid_size must be at least 2")


@dataclass
class StepResult:
    """Return value of :meth:`FloorplanEnv.step`."""

    observation: np.ndarray | None
    mask: np.ndarray | None
    reward: float
    done: bool
    info: dict = field(default_factory=dict)


class FloorplanEnv:
    """Sequential chiplet-placement MDP for one system.

    Parameters
    ----------
    system:
        The design to floorplan.
    reward_calculator:
        Terminal evaluator (bump assignment + thermal + reward).
    config:
        Grid resolution and episode options.
    """

    def __init__(
        self,
        system: ChipletSystem,
        reward_calculator: RewardCalculator,
        config: EnvConfig | None = None,
    ):
        self.system = system
        self.reward_calculator = reward_calculator
        self.config = config or EnvConfig()
        interposer = system.interposer
        self.grid = PlacementGrid(
            interposer.width,
            interposer.height,
            self.config.grid_size,
            self.config.grid_size,
        )
        self.observation_builder = ObservationBuilder(system, self.grid)
        self.order = system.placement_order()
        self.placement: Placement | None = None
        self._step_index = 0
        self.episode_count = 0

    # ------------------------------------------------------------------

    @property
    def n_actions(self) -> int:
        base = self.grid.n_cells
        return base * 2 if self.config.allow_rotation else base

    @property
    def observation_shape(self) -> tuple:
        return self.observation_builder.shape

    @property
    def episode_length(self) -> int:
        return self.system.n_chiplets

    @property
    def current_chiplet_name(self) -> str:
        return self.order[self._step_index]

    def reset(self) -> tuple:
        """Start a new episode; returns (observation, action_mask)."""
        self.placement = Placement(self.system)
        self._step_index = 0
        self.episode_count += 1
        return self._observe()

    def step(self, action: int) -> StepResult:
        """Place the current chiplet at the decoded action cell."""
        if self.placement is None:
            raise RuntimeError("call reset() before step()")
        if not 0 <= action < self.n_actions:
            raise ValueError(f"action {action} out of range")
        mask = self._current_mask()
        if not mask[action]:
            raise ValueError(f"action {action} is masked as infeasible")

        cell_index, rotated = self._decode(action)
        row, col = self.grid.unflatten(cell_index)
        x, y = self.grid.cell_origin(row, col)
        name = self.current_chiplet_name
        self.placement.place(name, x, y, rotated=rotated)
        self._step_index += 1

        if self._step_index == self.system.n_chiplets:
            breakdown = self.reward_calculator.evaluate(self.placement)
            return StepResult(
                observation=None,
                mask=None,
                reward=breakdown.reward,
                done=True,
                info={
                    "breakdown": breakdown,
                    "placement": self.placement.copy(),
                },
            )

        observation, next_mask = self._observe()
        if not next_mask.any():
            # The remaining die cannot be placed anywhere: deadlock.
            return StepResult(
                observation=None,
                mask=None,
                reward=self.config.deadlock_penalty,
                done=True,
                info={
                    "deadlock": True,
                    "unplaceable": self.current_chiplet_name,
                    "placement": self.placement.copy(),
                },
            )
        return StepResult(
            observation=observation,
            mask=next_mask,
            reward=0.0,
            done=False,
            info={},
        )

    # ------------------------------------------------------------------

    def _decode(self, action: int) -> tuple:
        """Action id -> (cell index, rotated)."""
        if self.config.allow_rotation and action >= self.grid.n_cells:
            return action - self.grid.n_cells, True
        return action, False

    def _observe(self) -> tuple:
        observation = self.observation_builder.build(
            self.placement, self.current_chiplet_name
        )
        return observation, self._current_mask()

    def _current_mask(self) -> np.ndarray:
        """Flat feasibility mask for the current chiplet."""
        chiplet = self.system.chiplet(self.current_chiplet_name)
        placed = [
            self.placement.footprint(name)
            for name in self.placement.placed_names
        ]
        spacing = self.system.interposer.min_spacing
        upright = feasible_cells(
            self.grid, chiplet.width, chiplet.height, placed, spacing
        ).ravel()
        if not self.config.allow_rotation:
            return upright
        if chiplet.rotatable and chiplet.width != chiplet.height:
            rotated = feasible_cells(
                self.grid, chiplet.height, chiplet.width, placed, spacing
            ).ravel()
        elif chiplet.rotatable:
            rotated = upright.copy()
        else:
            rotated = np.zeros_like(upright)
        return np.concatenate([upright, rotated])
