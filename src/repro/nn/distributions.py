"""Masked categorical distribution for discrete action spaces.

The environment marks infeasible placements in an action mask; the agent
"sets the probability of infeasible actions to 0" (paper Fig. 1) by
assigning them ``-inf`` logits before the softmax.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["MaskedCategorical"]

_MASK_VALUE = -1e9  # effectively -inf without NaN risk in the softmax


class MaskedCategorical:
    """Categorical over logits with a feasibility mask.

    Parameters
    ----------
    logits:
        Tensor of shape (N, A).
    mask:
        Boolean array (N, A); True = feasible.  Every row must have at
        least one feasible action.
    """

    def __init__(self, logits: Tensor, mask: np.ndarray):
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != logits.shape:
            raise ValueError(
                f"mask shape {mask.shape} != logits shape {logits.shape}"
            )
        if not mask.any(axis=-1).all():
            raise ValueError("some rows have no feasible action")
        self.mask = mask
        penalty = np.where(mask, 0.0, _MASK_VALUE)
        self.masked_logits = logits + Tensor(penalty)
        self.log_probs = self.masked_logits.log_softmax(axis=-1)

    @property
    def probs(self) -> np.ndarray:
        """Probability matrix as a plain array (no graph)."""
        return np.exp(self.log_probs.data)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one action per row (Gumbel-max, vectorized)."""
        gumbel = rng.gumbel(size=self.masked_logits.shape)
        scores = self.masked_logits.data + gumbel
        scores[~self.mask] = -np.inf
        return scores.argmax(axis=-1)

    def sample_per_row(self, rngs) -> np.ndarray:
        """Draw one action per row, row ``i`` from ``rngs[i]``.

        Each row consumes exactly one ``gumbel(size=n_actions)`` draw
        from its own generator, so a rollout's action sequence depends
        only on its episode stream — never on which other episodes share
        the batch.  This is what makes lockstep batched collection
        reproducible at any batch width.
        """
        if len(rngs) != self.masked_logits.shape[0]:
            raise ValueError(
                f"need {self.masked_logits.shape[0]} generators, got {len(rngs)}"
            )
        n_actions = self.masked_logits.shape[-1]
        gumbel = np.stack([rng.gumbel(size=n_actions) for rng in rngs])
        scores = self.masked_logits.data + gumbel
        scores[~self.mask] = -np.inf
        return scores.argmax(axis=-1)

    def mode(self) -> np.ndarray:
        """Most probable feasible action per row."""
        scores = self.masked_logits.data.copy()
        scores[~self.mask] = -np.inf
        return scores.argmax(axis=-1)

    def log_prob(self, actions: np.ndarray) -> Tensor:
        """Log probability of the given actions (differentiable)."""
        actions = np.asarray(actions)
        if (~np.take_along_axis(
            self.mask, actions[:, None], axis=-1
        )).any():
            raise ValueError("log_prob of an infeasible action")
        return self.log_probs.gather(actions, axis=-1)

    def entropy(self) -> Tensor:
        """Shannon entropy per row (differentiable).

        Masked actions contribute 0 (their probability underflows to 0).
        """
        probs = self.log_probs.exp()
        # p * log p with masked entries suppressed via their ~0 probability.
        plogp = probs * self.log_probs
        return -plogp.sum(axis=-1)
