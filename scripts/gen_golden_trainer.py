"""Regenerate the golden sequential-trainer trajectory.

Run from the repo root:

    PYTHONPATH=src python scripts/gen_golden_trainer.py

Only rerun this when an *intentional* behavior change invalidates the
golden values — the whole point of ``tests/data/
golden_sequential_trainer.json`` is that ``batch_size=1`` training stays
bitwise-faithful to the original sequential trainer.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tests"))

from golden_utils import GOLDEN_PATH, build_golden_env, build_golden_trainer, run_golden


def main() -> int:
    env = build_golden_env()
    trainer = build_golden_trainer(env)
    record = run_golden(trainer)
    out_path = REPO_ROOT / GOLDEN_PATH
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {out_path}")
    print(f"best_reward = {record['best_reward']:.6f}")
    print(f"mean_rewards = {record['mean_rewards']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
