"""Experiment harness: one module per paper table, plus ablations."""

from repro.experiments.report import MethodResult, format_table, save_results
from repro.experiments.runner import (
    ExperimentBudget,
    build_evaluators,
    method_arm_jobs,
    run_all_methods,
    run_method_arm,
)
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.ablations import run_ablations

__all__ = [
    "MethodResult",
    "format_table",
    "save_results",
    "ExperimentBudget",
    "build_evaluators",
    "method_arm_jobs",
    "run_all_methods",
    "run_method_arm",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_ablations",
]
