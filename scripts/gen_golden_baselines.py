"""Regenerate the golden single-chain baseline results.

Run from the repo root:

    PYTHONPATH=src python scripts/gen_golden_baselines.py

Only rerun this when an *intentional* behavior change invalidates the
golden values — the whole point of ``tests/data/golden_baselines.json``
is that the ``n_chains=1`` search baselines stay bitwise-faithful to the
original sequential engines (floats are compared via ``float.hex()``).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tests"))

from golden_baseline_utils import GOLDEN_BASELINES_PATH, run_golden_baselines


def main() -> int:
    record = run_golden_baselines()
    out_path = REPO_ROOT / GOLDEN_BASELINES_PATH
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {out_path}")
    for method, data in record.items():
        key = "best_cost" if "best_cost" in data else "reward"
        print(f"{method}: {key} = {float.fromhex(data[key]):.6f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
