"""Tests for the benchmark system definitions and the synthetic generator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.random_search import random_legal_placement
from repro.chiplet.validate import validate_system
from repro.systems import (
    benchmark_names,
    get_benchmark,
    synthetic_system,
    synthetic_thermal_dataset,
)
from repro.systems.synthetic import DATASET_INTERPOSER, DATASET_SIZES


class TestRegistry:
    def test_names(self):
        names = benchmark_names()
        assert "multi_gpu" in names
        assert "cpu_dram" in names
        assert "ascend910" in names
        assert "synthetic1" in names and "synthetic5" in names

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_benchmark("nonexistent")


@pytest.mark.parametrize("name", ["multi_gpu", "cpu_dram", "ascend910"])
class TestNamedBenchmarks:
    def test_structurally_valid(self, name):
        spec = get_benchmark(name)
        validate_system(spec.system)

    def test_placeable(self, name):
        spec = get_benchmark(name)
        rng = np.random.default_rng(0)
        placement = random_legal_placement(spec.system, rng)
        assert placement.is_complete

    def test_netlist_connected_power_dies(self, name):
        spec = get_benchmark(name)
        graph = spec.system.connectivity_graph()
        import networkx as nx

        powered = [c.name for c in spec.system.chiplets if c.power > 0]
        sub = graph.subgraph(powered)
        assert nx.is_connected(sub)

    def test_paper_reference_complete(self, name):
        spec = get_benchmark(name)
        for method in (
            "RLPlanner",
            "RLPlanner(RND)",
            "TAP-2.5D(HotSpot)",
            "TAP-2.5D*(FastThermal)",
        ):
            assert method in spec.paper_reference
            assert "reward" in spec.paper_reference[method]

    def test_reward_config_sane(self, name):
        spec = get_benchmark(name)
        assert 0 < spec.reward_config.lambda_wl < 1e-2
        assert spec.reward_config.t_limit == 85.0


class TestBenchmarkShapes:
    def test_multi_gpu_inventory(self):
        system = get_benchmark("multi_gpu").system
        kinds = [c.kind for c in system.chiplets]
        assert kinds.count("gpu") == 4
        assert kinds.count("hbm") == 8
        assert len(system.nets) == 6 + 8

    def test_ascend_dummies_unpowered(self):
        system = get_benchmark("ascend910").system
        dummies = [c for c in system.chiplets if c.kind == "dummy"]
        assert len(dummies) == 2
        assert all(d.power == 0.0 for d in dummies)

    def test_cpu_dram_memory_channels(self):
        system = get_benchmark("cpu_dram").system
        channels = [n for n in system.nets if n.name.startswith("c") and "d" in n.name]
        assert len(channels) == 4


class TestSyntheticGenerator:
    def test_deterministic(self):
        a = synthetic_system(seed=42)
        b = synthetic_system(seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        assert synthetic_system(seed=1) != synthetic_system(seed=2)

    def test_cases_fixed(self):
        spec1 = get_benchmark("synthetic1")
        spec1_again = get_benchmark("synthetic1")
        assert spec1.system == spec1_again.system

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_generated_systems_valid_and_placeable(self, seed):
        system = synthetic_system(seed=seed)
        validate_system(system)
        assert system.n_chiplets >= 2
        assert system.utilization <= 0.56
        # Sizes come from the quantized set.
        for chiplet in system.chiplets:
            assert chiplet.width in DATASET_SIZES
            assert chiplet.height in DATASET_SIZES
        # Netlist is connected over all dies.
        import networkx as nx

        assert nx.is_connected(system.connectivity_graph())

    def test_dataset_yields_legal_placements(self):
        from repro.chiplet.validate import validate_placement

        count = 0
        for system, placement in synthetic_thermal_dataset(5, seed=3):
            assert system.interposer == DATASET_INTERPOSER
            validate_placement(placement)
            count += 1
        assert count == 5

    def test_dataset_without_placements(self):
        systems = list(synthetic_thermal_dataset(3, seed=3, with_placements=False))
        assert len(systems) == 3
        assert all(hasattr(s, "chiplets") for s in systems)
