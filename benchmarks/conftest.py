"""Shared configuration for the benchmark harness.

Budgets are scaled down so ``pytest benchmarks/ --benchmark-only`` runs
in minutes.  Set ``REPRO_BENCH_FULL=1`` for paper-scale budgets (hours),
or tune individual knobs via the environment:

    REPRO_BENCH_EPOCHS        RL training epochs per method (default 12)
    REPRO_BENCH_SA_ITERS      SA iterations with the grid solver (default 60)
    REPRO_BENCH_T2_SYSTEMS    Table II sample count (default 40; paper 2000)
"""

import os

import pytest

from repro.experiments.runner import ExperimentBudget


def _int_env(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


@pytest.fixture(scope="session")
def bench_budget() -> ExperimentBudget:
    if os.environ.get("REPRO_BENCH_FULL"):
        return ExperimentBudget.paper_scale()
    return ExperimentBudget(
        rl_epochs=_int_env("REPRO_BENCH_EPOCHS", 12),
        episodes_per_epoch=8,
        grid_size=24,
        sa_iterations_hotspot=_int_env("REPRO_BENCH_SA_ITERS", 60),
        seed=0,
    )


@pytest.fixture(scope="session")
def table2_n_systems() -> int:
    if os.environ.get("REPRO_BENCH_FULL"):
        return 2000
    return _int_env("REPRO_BENCH_T2_SYSTEMS", 40)
