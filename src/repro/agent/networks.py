"""The actor-critic network (paper Section II-B).

"The policy network and the value network share the same feature
encoding CNN layers and two separate fully connected layers are used to
get the probability matrix and expected reward."

Encoder: three 3x3 conv layers (stride 1, 2, 2) over the observation
image.  Heads: one fully connected layer each — policy logits over the
action grid (masked categorical) and a scalar value.
"""

from __future__ import annotations

import numpy as np

from repro.nn import (
    Conv2d,
    Flatten,
    Linear,
    MaskedCategorical,
    Module,
    ReLU,
    Sequential,
    Tensor,
    no_grad,
)

__all__ = ["ActorCritic"]


class ActorCritic(Module):
    """Shared CNN encoder with policy and value heads.

    Parameters
    ----------
    obs_shape:
        (channels, rows, cols) of the observation image.
    n_actions:
        Size of the flat action space (grid cells, x2 with rotation).
    channels:
        Conv widths of the three encoder layers.
    rng:
        Weight-init random source.
    """

    def __init__(
        self,
        obs_shape: tuple,
        n_actions: int,
        channels: tuple = (16, 32, 32),
        rng: np.random.Generator = None,
    ):
        rng = rng or np.random.default_rng()
        c, rows, cols = obs_shape
        c1, c2, c3 = channels
        self.encoder = Sequential(
            Conv2d(c, c1, 3, stride=1, padding=1, rng=rng),
            ReLU(),
            Conv2d(c1, c2, 3, stride=2, padding=1, rng=rng),
            ReLU(),
            Conv2d(c2, c3, 3, stride=2, padding=1, rng=rng),
            ReLU(),
            Flatten(),
        )
        feat_rows = (rows + 1) // 2
        feat_rows = (feat_rows + 1) // 2
        feat_cols = (cols + 1) // 2
        feat_cols = (feat_cols + 1) // 2
        feature_dim = c3 * feat_rows * feat_cols
        # Small-gain policy head -> near-uniform initial policy.
        self.policy_head = Linear(feature_dim, n_actions, gain=0.01, rng=rng)
        self.value_head = Linear(feature_dim, 1, gain=1.0, rng=rng)
        self.obs_shape = tuple(obs_shape)
        self.n_actions = n_actions

    # ------------------------------------------------------------------

    def evaluate(self, observations: np.ndarray, masks: np.ndarray):
        """Differentiable forward pass for PPO updates.

        Returns (MaskedCategorical, values tensor of shape (N,)).
        """
        obs = Tensor(np.asarray(observations, dtype=np.float64))
        features = self.encoder(obs)
        logits = self.policy_head(features)
        values = self.value_head(features).reshape(-1)
        dist = MaskedCategorical(logits, np.asarray(masks, dtype=bool))
        return dist, values

    def act(
        self,
        observation: np.ndarray,
        mask: np.ndarray,
        rng: np.random.Generator,
        greedy: bool = False,
    ) -> tuple:
        """Rollout action selection (no graph recorded).

        Returns (action, log_prob, value) as Python scalars.
        """
        with no_grad():
            dist, values = self.evaluate(
                observation[None, ...], np.asarray(mask, dtype=bool)[None, ...]
            )
            action = int(dist.mode()[0]) if greedy else int(dist.sample(rng)[0])
            log_prob = float(dist.log_prob(np.array([action])).data[0])
            value = float(values.data[0])
        return action, log_prob, value

    def act_batch(
        self,
        observations: np.ndarray,
        masks: np.ndarray,
        rngs,
        greedy: bool = False,
        static_channels=None,
        shared_rows: bool = False,
    ) -> tuple:
        """Rollout action selection for a whole lockstep batch.

        One forward pass serves every row; row ``i`` samples from
        ``rngs[i]`` so trajectories depend only on their own episode
        stream (see :meth:`MaskedCategorical.sample_per_row`).

        ``static_channels`` names observation channels the caller
        guarantees are identical for every row (lockstep batches share
        their constant channels); their first-conv contribution is then
        computed once per call instead of once per row.  ``shared_rows``
        asserts that *entire rows* are identical (true right after a
        lockstep reset): the forward runs on one row and broadcasts.
        Both guarantees must be structural, not data-dependent, and used
        consistently across calls — that is what keeps batched
        trajectories identical at every batch width.

        The conv layers enforce per-row shape-stable GEMMs for this; the
        dense heads run one (n, features) GEMM and rely on the BLAS
        computing each output row independently of the row count, which
        holds for the supported OpenBLAS builds and is locked in by the
        batch-width-invariance regression tests — a BLAS whose kernels
        mix rows would surface there, not silently.

        Returns (actions, log_probs, values) as 1D numpy arrays.
        """
        with no_grad():
            obs = np.asarray(observations, dtype=np.float64)
            masks = np.asarray(masks, dtype=bool)
            n = obs.shape[0]
            if shared_rows and n > 1:
                features = self._encode_rollout(obs[:1], static_channels)
                logits = self.policy_head(features)
                values_data = np.broadcast_to(
                    self.value_head(features).reshape(-1).data, (n,)
                )
                logits = Tensor(
                    np.broadcast_to(logits.data, (n,) + logits.shape[1:])
                )
            else:
                features = self._encode_rollout(obs, static_channels)
                logits = self.policy_head(features)
                values_data = self.value_head(features).reshape(-1).data
            dist = MaskedCategorical(logits, masks)
            if greedy:
                actions = dist.mode()
            else:
                actions = dist.sample_per_row(rngs)
            log_probs = dist.log_prob(actions).data
        return (
            actions.astype(np.int64),
            np.array(log_probs, dtype=np.float64),
            np.array(values_data, dtype=np.float64),
        )

    def _encode_rollout(self, obs: np.ndarray, static_channels) -> Tensor:
        """Encoder forward with the optional static-channel split."""
        if not static_channels:
            return self.encoder(Tensor(obs))
        static = sorted(static_channels)
        dynamic = [c for c in range(obs.shape[1]) if c not in static]
        conv0 = self.encoder[0]
        weight = conv0.weight.data
        out_dynamic = Tensor(obs[:, dynamic]).conv2d(
            Tensor(weight[:, dynamic]),
            None,
            stride=conv0.stride,
            padding=conv0.padding,
        )
        # Shared contribution (and the bias) from one representative row.
        out_static = Tensor(obs[:1, static]).conv2d(
            Tensor(weight[:, static]),
            conv0.bias,
            stride=conv0.stride,
            padding=conv0.padding,
        )
        x = (out_dynamic + out_static).relu()
        for module in self.encoder.modules[2:]:
            x = module(x)
        return x
