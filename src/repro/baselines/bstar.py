"""B*-tree floorplanning with fast simulated annealing.

The classic monolithic-floorplanning baseline the paper cites as [1]
(Chen & Chang, "Modern floorplanning based on B*-tree and fast simulated
annealing", TCAD'06).  A B*-tree encodes a *compacted* floorplan: the
left child of a node sits immediately to its right, the right child
immediately above it at the same x, with y resolved by a contour.

Compacted floorplans minimize area and wirelength but concentrate heat —
exactly the failure mode the paper's introduction motivates thermal-aware
floorplanning with.  This baseline makes that trade-off measurable: run
it with the same :class:`~repro.reward.RewardCalculator` and compare its
temperature against RLPlanner's.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.baselines.sa import SAConfig, SimulatedAnnealing
from repro.baselines.tap25d import PlacerResult
from repro.chiplet import ChipletSystem, Placement
from repro.chiplet.validate import placement_is_legal, placement_violations
from repro.reward import RewardCalculator

__all__ = ["BStarConfig", "BStarTree", "BStarFloorplanner"]


@dataclass(frozen=True)
class BStarConfig:
    """Annealing parameters for the B*-tree search.

    ``n_chains > 1`` runs that many lockstep chains from independently
    randomized initial trees, evaluating each step's packings through
    the batched reward path; ``1`` is the original sequential engine,
    kept bit-for-bit.
    """

    n_iterations: int = 2000
    initial_temperature: float | None = None
    final_temperature: float = 1e-3
    rotate_fraction: float = 0.3
    swap_fraction: float = 0.4
    move_fraction: float = 0.3
    time_limit: float | None = None
    seed: int = 0
    n_chains: int = 1
    history_stride: int = 1
    checkpoint_every: int = 0

    def __post_init__(self) -> None:
        mix = self.rotate_fraction + self.swap_fraction + self.move_fraction
        if abs(mix - 1.0) > 1e-9:
            raise ValueError("move fractions must sum to 1")
        if self.n_chains < 1:
            raise ValueError("n_chains must be >= 1")


class BStarTree:
    """A B*-tree over the modules of one system.

    Nodes are indexed 0..n-1; ``module[i]`` is the chiplet name at node
    ``i``; ``left``/``right``/``parent`` hold node indices or -1.  The
    tree is kept structurally valid under every perturbation.
    """

    def __init__(self, system: ChipletSystem, rng: np.random.Generator):
        self.system = system
        names = list(system.placement_order())
        n = len(names)
        self.module = names
        self.rotated = [False] * n
        self.left = [-1] * n
        self.right = [-1] * n
        self.parent = [-1] * n
        self.root = 0
        # Initial shape: a left-leaning chain (a row that wraps via the
        # contour), randomized slightly by attaching to random nodes.
        for i in range(1, n):
            target = int(rng.integers(0, i))
            # Walk to a node with a free slot.
            while self.left[target] != -1 and self.right[target] != -1:
                target = self.left[target]
            if self.left[target] == -1:
                self.left[target] = i
            else:
                self.right[target] = i
            self.parent[i] = target

    @property
    def n_nodes(self) -> int:
        return len(self.module)

    def copy(self) -> "BStarTree":
        clone = object.__new__(BStarTree)
        clone.system = self.system
        clone.module = list(self.module)
        clone.rotated = list(self.rotated)
        clone.left = list(self.left)
        clone.right = list(self.right)
        clone.parent = list(self.parent)
        clone.root = self.root
        return clone

    # ------------------------------------------------------------------
    # packing
    # ------------------------------------------------------------------

    def _dims(self, node: int, spacing: float) -> tuple:
        chiplet = self.system.chiplet(self.module[node])
        w, h = chiplet.width, chiplet.height
        if self.rotated[node]:
            w, h = h, w
        return w + spacing, h + spacing

    def pack(self, spacing: float | None = None) -> Placement:
        """Compact the tree into a placement (lower-left packing).

        Each die is padded by the interposer's min_spacing during
        packing so the compacted layout honors the clearance rule.
        The result may exceed the interposer; the caller checks bounds.
        """
        if spacing is None:
            spacing = self.system.interposer.min_spacing
        placement = Placement(self.system)
        placed = []  # (x1, x2, y2) spans for contour queries

        def place(node: int, x: float) -> None:
            w, h = self._dims(node, spacing)
            y = 0.0
            for px1, px2, py2 in placed:
                if px1 < x + w and x < px2:
                    y = max(y, py2)
            placement.place(self.module[node], x, y, self.rotated[node])
            placed.append((x, x + w, y + h))
            if self.left[node] != -1:
                place(self.left[node], x + w)
            if self.right[node] != -1:
                place(self.right[node], x)

        place(self.root, 0.0)
        return placement

    # ------------------------------------------------------------------
    # perturbations
    # ------------------------------------------------------------------

    def rotate_random(self, rng: np.random.Generator) -> bool:
        """Toggle the rotation flag of a random rotatable module."""
        candidates = [
            i
            for i in range(self.n_nodes)
            if self.system.chiplet(self.module[i]).rotatable
        ]
        if not candidates:
            return False
        node = candidates[int(rng.integers(len(candidates)))]
        self.rotated[node] = not self.rotated[node]
        return True

    def swap_random(self, rng: np.random.Generator) -> bool:
        """Exchange the modules (not the structure) of two nodes."""
        if self.n_nodes < 2:
            return False
        i, j = rng.choice(self.n_nodes, size=2, replace=False)
        self.module[i], self.module[j] = self.module[j], self.module[i]
        self.rotated[i], self.rotated[j] = self.rotated[j], self.rotated[i]
        return True

    def move_random(self, rng: np.random.Generator) -> bool:
        """Detach a node with at most one child and reinsert elsewhere."""
        movable = [
            i
            for i in range(self.n_nodes)
            if (self.left[i] == -1 or self.right[i] == -1) and i != self.root
        ]
        if not movable:
            return False
        node = movable[int(rng.integers(len(movable)))]
        self._detach(node)
        self._insert_random(node, rng)
        return True

    def _detach(self, node: int) -> None:
        """Remove a node with <= 1 child, promoting that child."""
        child = self.left[node] if self.left[node] != -1 else self.right[node]
        parent = self.parent[node]
        if child != -1:
            self.parent[child] = parent
        if parent != -1:
            if self.left[parent] == node:
                self.left[parent] = child
            else:
                self.right[parent] = child
        self.left[node] = self.right[node] = self.parent[node] = -1

    def _insert_random(self, node: int, rng: np.random.Generator) -> None:
        """Attach ``node`` at a random free child slot."""
        slots = []
        for i in range(self.n_nodes):
            if i == node:
                continue
            if self.left[i] == -1:
                slots.append((i, "left"))
            if self.right[i] == -1:
                slots.append((i, "right"))
        target, side = slots[int(rng.integers(len(slots)))]
        if side == "left":
            self.left[target] = node
        else:
            self.right[target] = node
        self.parent[node] = target

    def validate(self) -> None:
        """Structural invariants (used by tests and after perturbations)."""
        seen = set()
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node in seen:
                raise AssertionError("cycle in B*-tree")
            seen.add(node)
            for child in (self.left[node], self.right[node]):
                if child != -1:
                    if self.parent[child] != node:
                        raise AssertionError("parent pointer mismatch")
                    stack.append(child)
        if len(seen) != self.n_nodes:
            raise AssertionError("tree does not span all nodes")


class BStarFloorplanner:
    """SA over B*-trees, evaluated with the shared reward calculator.

    Parameters
    ----------
    system:
        The design to floorplan.
    reward_calculator:
        Same objective as every other method in the repo.
    config:
        Annealing parameters.
    """

    def __init__(
        self,
        system: ChipletSystem,
        reward_calculator: RewardCalculator,
        config: BStarConfig | None = None,
    ):
        self.system = system
        self.reward_calculator = reward_calculator
        self.config = config or BStarConfig()

    def _propose(self, tree: BStarTree, rng: np.random.Generator, progress):
        cfg = self.config
        candidate = tree.copy()
        roll = rng.random()
        if roll < cfg.rotate_fraction:
            ok = candidate.rotate_random(rng)
        elif roll < cfg.rotate_fraction + cfg.swap_fraction:
            ok = candidate.swap_random(rng)
        else:
            ok = candidate.move_random(rng)
        if not ok:
            return None
        # Reject packings that fall off the interposer.
        placement = candidate.pack()
        if not placement_is_legal(placement):
            return None
        return candidate

    def _legal_initial_tree(self, rng: np.random.Generator) -> BStarTree:
        """Find a legal initial tree (compacted layouts can overflow)."""
        for _ in range(200):
            tree = BStarTree(self.system, rng)
            if not placement_violations(tree.pack()):
                return tree
        raise RuntimeError(
            f"no legal compacted layout found for {self.system.name!r}"
        )

    def run(self, resume_state=None, checkpoint_fn=None) -> PlacerResult:
        """Anneal; returns the best legal compacted floorplan.

        Multi-chain runs (``config.n_chains > 1``) draw one independent
        random initial tree per chain from the shared seed stream, then
        advance all chains in lockstep with one batched reward
        evaluation per step (every chain packs the same die set, so the
        fast thermal model vectorizes across chains).

        ``checkpoint_fn``/``resume_state`` pass through to the SA
        engine: a resumed run reproduces the uninterrupted run bitwise
        (the snapshot carries the per-chain incumbents, so the initial
        legality search is skipped entirely on resume).
        """
        cfg = self.config
        start = time.perf_counter()
        rng = np.random.default_rng(cfg.seed)

        def evaluate(tree: BStarTree) -> float:
            return -self.reward_calculator.evaluate(tree.pack()).reward

        def evaluate_many(trees):
            return -self.reward_calculator.evaluate_many(
                [tree.pack() for tree in trees]
            )

        engine = SimulatedAnnealing(
            propose=self._propose,
            evaluate=evaluate,
            config=SAConfig(
                n_iterations=cfg.n_iterations,
                initial_temperature=cfg.initial_temperature,
                final_temperature=cfg.final_temperature,
                time_limit=cfg.time_limit,
                seed=cfg.seed,
                n_chains=cfg.n_chains,
                history_stride=cfg.history_stride,
                checkpoint_every=cfg.checkpoint_every,
            ),
            evaluate_many=evaluate_many,
        )
        if cfg.n_chains > 1:
            # A resume only reads the chain count from the initial
            # states (the snapshot carries the incumbents); skip the
            # per-chain legality search then.
            initials = (
                [None] * cfg.n_chains
                if resume_state is not None
                else [
                    self._legal_initial_tree(rng)
                    for _ in range(cfg.n_chains)
                ]
            )
            result = engine.run_chains(
                initials, resume_state=resume_state, checkpoint_fn=checkpoint_fn
            )
        else:
            initial = (
                None
                if resume_state is not None
                else self._legal_initial_tree(rng)
            )
            result = engine.run(
                initial,
                resume_state=resume_state,
                checkpoint_fn=checkpoint_fn,
            )
        best_tree = result.best_state
        placement = best_tree.pack()
        breakdown = self.reward_calculator.evaluate(placement)
        # Fold the interrupted leg's wall clock back in so a resumed
        # run reports its full runtime, not just the final leg.
        prior = resume_state["elapsed"] if resume_state is not None else 0.0
        return PlacerResult(
            placement=placement,
            breakdown=breakdown,
            n_evaluations=result.n_evaluations,
            elapsed=prior + time.perf_counter() - start,
            history=result.history,
        )
