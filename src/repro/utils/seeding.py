"""Deterministic random-number management.

Every stochastic component in the library (environment resets, PPO
minibatch shuffling, RND weight init, synthetic system generation, SA
moves) receives an explicit :class:`numpy.random.Generator`.  This module
centralizes how those generators are derived so that a single integer seed
reproduces an entire experiment.
"""

from __future__ import annotations

import numpy as np

__all__ = ["new_rng", "SeedSequence", "derive_seed"]

# A fixed, arbitrary offset mixed into derived seeds so that streams for
# different purposes never collide even when users pass small seeds.
_STREAM_SALT = 0x5EED_C41B


def new_rng(seed: int | None = None) -> np.random.Generator:
    """Return a fresh :class:`numpy.random.Generator` for ``seed``.

    ``None`` yields an OS-entropy generator (non-reproducible); an integer
    yields a PCG64 stream that is stable across platforms.
    """
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, stream: str) -> int:
    """Derive a per-purpose seed from ``base_seed`` and a stream label.

    The label keeps independent components (e.g. ``"env"`` vs ``"ppo"``)
    on non-overlapping streams while remaining reproducible.
    """
    mix = np.random.SeedSequence([base_seed, _STREAM_SALT, _hash_label(stream)])
    return int(mix.generate_state(1, dtype=np.uint64)[0] % (2**63))


def _hash_label(label: str) -> int:
    """Stable (non-salted) string hash; ``hash()`` is salted per process."""
    value = 0
    for char in label:
        value = (value * 131 + ord(char)) % (2**61 - 1)
    return value


class SeedSequence:
    """Hands out named child generators derived from one base seed.

    Example
    -------
    >>> seeds = SeedSequence(42)
    >>> env_rng = seeds.rng("env")
    >>> ppo_rng = seeds.rng("ppo")
    """

    def __init__(self, base_seed: int) -> None:
        self.base_seed = int(base_seed)

    def seed(self, stream: str) -> int:
        """Integer seed for the named stream."""
        return derive_seed(self.base_seed, stream)

    def rng(self, stream: str) -> np.random.Generator:
        """Generator for the named stream."""
        return new_rng(self.seed(stream))

    def __repr__(self) -> str:
        return f"SeedSequence(base_seed={self.base_seed})"
