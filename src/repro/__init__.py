"""RLPlanner reproduction (DATE 2024).

Reinforcement-learning-based floorplanning for 2.5D chiplet systems
with a fast physics-informed thermal surrogate.  See README.md for a
tour and DESIGN.md for the system inventory.
"""

from repro.chiplet import Chiplet, ChipletSystem, Interposer, Net, Placement
from repro.thermal import (
    FastThermalModel,
    GridThermalSolver,
    ThermalConfig,
    characterize_tables,
)
from repro.reward import RewardCalculator, RewardConfig
from repro.env import EnvConfig, FloorplanEnv
from repro.agent import ActorCritic, RLPlannerTrainer, TrainerConfig
from repro.baselines import TAP25DConfig, TAP25DPlacer, random_search

__version__ = "1.0.0"

__all__ = [
    "Chiplet",
    "ChipletSystem",
    "Interposer",
    "Net",
    "Placement",
    "GridThermalSolver",
    "FastThermalModel",
    "ThermalConfig",
    "characterize_tables",
    "RewardCalculator",
    "RewardConfig",
    "FloorplanEnv",
    "EnvConfig",
    "ActorCritic",
    "RLPlannerTrainer",
    "TrainerConfig",
    "TAP25DPlacer",
    "TAP25DConfig",
    "random_search",
    "__version__",
]
