"""Generic simulated-annealing engine: single- and multi-chain.

State representation, move proposal and cost evaluation are supplied by
the caller; the engine owns the Metropolis acceptance rule, the
geometric cooling schedule, automatic initial-temperature calibration,
and budget accounting (iterations and/or wall clock).

Two execution engines share the configuration:

* ``n_chains=1`` — the original sequential Metropolis loop, kept
  bit-for-bit intact (golden-pinned by ``tests/data/
  golden_baselines.json``): one proposal, one scalar ``evaluate`` per
  iteration.
* ``n_chains=M>1`` — M independent chains advanced in lockstep.  Chain
  ``c`` draws proposals and acceptance tests from its own RNG stream
  (``seed + c``), carries its own temperature/acceptance state, and the
  engine issues **one** ``evaluate_many(states)`` call per iteration so
  a vectorized cost evaluator (e.g. the fast thermal model's batched
  path) amortizes its work across the whole chain population.  The
  result is the best state over all chains — best-of-M restarts at a
  fraction of the sequential cost.

Chain ``c`` of the lockstep engine consumes randomness in exactly the
order a sequential run with ``seed + c`` would, so when ``evaluate_many``
agrees bitwise with ``evaluate`` the multi-chain run reproduces M
sequential runs exactly (regression-tested).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

__all__ = ["SAConfig", "SAHistory", "SAResult", "SimulatedAnnealing"]


@dataclass(frozen=True)
class SAConfig:
    """Annealing schedule and budget.

    Attributes
    ----------
    n_iterations:
        Proposal count *per chain* (one evaluation per feasible proposal).
    initial_temperature:
        ``None`` auto-calibrates so early uphill moves are accepted with
        ~50 % probability (standard practice; TAP-2.5D does the same).
        Calibration is per chain when ``n_chains > 1``.
    final_temperature:
        End of the geometric schedule.
    time_limit:
        Optional wall-clock cap in seconds (for time-matched comparisons).
    seed:
        RNG seed for proposals and acceptance; chain ``c`` uses
        ``seed + c``.
    n_chains:
        Number of independent lockstep chains (1 = sequential engine).
    incremental:
        Declares that the sequential (``n_chains=1``) evaluate chain
        may exploit move locality: consecutive evaluated candidates
        differ from the current state by a bounded number of moved
        dies, so a delta evaluator (e.g. ``FastThermalModel(...,
        incremental=True)``) can skip the full rebuild.  The engine
        itself evaluates through the caller-supplied callables either
        way — the flag is honored by the evaluator builder (see
        ``TAP25DPlacer``) and is rejected for multi-chain runs, whose
        lockstep batches have no single evaluate chain to diff against.
    history_stride:
        Record every ``stride``-th iteration into the history columns.
        1 (the default) preserves the original per-iteration trace.
    checkpoint_every:
        Snapshot cadence in iterations (0 = never).  The engine hands a
        full resumable snapshot (incumbents, costs, temperatures, RNG
        generator states, history, counters) to the ``checkpoint_fn``
        passed to :meth:`SimulatedAnnealing.run` after every
        ``checkpoint_every``-th iteration; a run resumed from such a
        snapshot is bitwise identical to one that was never
        interrupted.
    """

    n_iterations: int = 2000
    initial_temperature: float | None = None
    final_temperature: float = 1e-3
    time_limit: float | None = None
    seed: int = 0
    calibration_samples: int = 20
    n_chains: int = 1
    incremental: bool = False
    history_stride: int = 1
    checkpoint_every: int = 0

    def __post_init__(self) -> None:
        if self.n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if self.final_temperature <= 0:
            raise ValueError("final_temperature must be positive")
        if self.n_chains < 1:
            raise ValueError("n_chains must be >= 1")
        if self.incremental and self.n_chains > 1:
            raise ValueError(
                "incremental evaluation requires n_chains=1 (the delta "
                "path diffs consecutive states of one evaluate chain)"
            )
        if self.history_stride < 1:
            raise ValueError("history_stride must be >= 1")


class SAHistory:
    """Column-oriented annealing trace in preallocated numpy storage.

    Replaces the one-dict-per-iteration list the engine used to build
    (~4 boxed floats per iteration): rows land in a single ``(capacity,
    4)`` float64 block, and dicts are materialized only when a consumer
    actually indexes or iterates.  The sequence protocol keeps existing
    consumers (``len``, iteration, integer indexing, ``history[0]`` in
    the CSV writer) working unchanged.
    """

    FIELDS = ("iteration", "temperature", "current_cost", "best_cost")

    __slots__ = ("stride", "_rows", "_n")

    def __init__(self, capacity: int, stride: int = 1):
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.stride = stride
        rows = -(-max(capacity, 0) // stride)  # ceil division
        self._rows = np.empty((rows, len(self.FIELDS)), dtype=np.float64)
        self._n = 0

    def record(
        self,
        iteration: int,
        temperature: float,
        current_cost: float,
        best_cost: float,
    ) -> None:
        """Append one iteration's row (skipped when off-stride)."""
        if iteration % self.stride:
            return
        if self._n == len(self._rows):  # time-limited reruns, safety
            grown = np.empty(
                (max(2 * len(self._rows), 16), len(self.FIELDS))
            )
            grown[: self._n] = self._rows[: self._n]
            self._rows = grown
        self._rows[self._n] = (iteration, temperature, current_cost, best_cost)
        self._n += 1

    def column(self, name: str) -> np.ndarray:
        """One recorded column as a float64 array (read-only view)."""
        view = self._rows[: self._n, self.FIELDS.index(name)]
        view.flags.writeable = False
        return view

    def state_dict(self) -> dict:
        """Recorded rows + stride, for checkpoint snapshots."""
        return {"stride": self.stride, "rows": self._rows[: self._n].copy()}

    def load_state_dict(self, state: dict) -> None:
        """Restore rows recorded before a checkpoint (bitwise)."""
        rows = np.asarray(state["rows"], dtype=np.float64)
        self.stride = int(state["stride"])
        if len(rows) > len(self._rows):
            self._rows = np.empty(
                (len(rows), len(self.FIELDS)), dtype=np.float64
            )
        self._rows[: len(rows)] = rows
        self._n = len(rows)

    def _as_dict(self, row: np.ndarray) -> dict:
        entry = dict(zip(self.FIELDS, row))
        entry["iteration"] = int(row[0])
        return entry

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._as_dict(row) for row in self._rows[: self._n][index]]
        if index < 0:
            index += self._n
        if not 0 <= index < self._n:
            raise IndexError("history index out of range")
        return self._as_dict(self._rows[index])

    def __iter__(self):
        for row in self._rows[: self._n]:
            yield self._as_dict(row)


@dataclass
class SAResult:
    """Outcome of one annealing run (single- or multi-chain)."""

    best_state: object
    best_cost: float
    n_evaluations: int
    n_accepted: int
    elapsed: float
    history: SAHistory | list = field(default_factory=list)
    n_chains: int = 1
    chain_best_costs: np.ndarray | None = None

    @property
    def acceptance_rate(self) -> float:
        return self.n_accepted / max(self.n_evaluations, 1)


class SimulatedAnnealing:
    """Metropolis annealer over caller-defined states.

    Parameters
    ----------
    propose:
        ``propose(state, rng, progress) -> new_state | None``; ``None``
        means the move was infeasible and is skipped (not evaluated).
        Must not mutate its input state (every caller in this repo
        copies before perturbing).
    evaluate:
        ``evaluate(state) -> cost`` (lower is better).
    config:
        Schedule and budget.
    evaluate_many:
        Optional vectorized ``evaluate_many(states) -> costs`` used by
        the multi-chain engine; defaults to mapping ``evaluate`` over
        the batch (bitwise-identical costs, no speedup).
    """

    def __init__(
        self,
        propose,
        evaluate,
        config: SAConfig | None = None,
        evaluate_many=None,
    ):
        self.propose = propose
        self.evaluate = evaluate
        self.config = config or SAConfig()
        self.evaluate_many = evaluate_many

    def run(
        self, initial_state, resume_state=None, checkpoint_fn=None
    ) -> SAResult:
        """Anneal from one initial state (replicated across chains).

        ``resume_state`` is a snapshot previously handed to
        ``checkpoint_fn``; the run continues from that iteration and is
        bitwise identical to an uninterrupted run.
        """
        if self.config.n_chains > 1:
            return self.run_chains(
                [initial_state] * self.config.n_chains,
                resume_state=resume_state,
                checkpoint_fn=checkpoint_fn,
            )
        return self._run_sequential(
            initial_state, resume_state=resume_state, checkpoint_fn=checkpoint_fn
        )

    def _should_checkpoint(self, iteration: int, checkpoint_fn) -> bool:
        every = self.config.checkpoint_every
        done = iteration + 1
        return (
            checkpoint_fn is not None
            and every > 0
            and done % every == 0
            and done < self.config.n_iterations
        )

    @staticmethod
    def _check_snapshot(snapshot: dict, engine: str) -> None:
        found = snapshot.get("engine")
        if found != engine:
            raise ValueError(
                f"cannot resume a {found!r} snapshot with the {engine!r} "
                "engine (chain count changed between runs?)"
            )

    # ------------------------------------------------------------------
    # sequential engine (n_chains=1) — golden-pinned, do not disturb
    # ------------------------------------------------------------------

    def _run_sequential(
        self, initial_state, resume_state=None, checkpoint_fn=None
    ) -> SAResult:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        history = SAHistory(cfg.n_iterations, cfg.history_stride)

        if resume_state is None:
            start = time.perf_counter()
            current = initial_state
            current_cost = self.evaluate(current)
            best, best_cost = current, current_cost
            n_evaluations = 1
            n_accepted = 0

            t0 = cfg.initial_temperature
            if t0 is None:
                t0, calibration_evals = self._calibrate(
                    current, current_cost, rng
                )
                n_evaluations += calibration_evals
            cooling = (cfg.final_temperature / t0) ** (
                1.0 / max(cfg.n_iterations, 1)
            )
            temperature = t0
            start_iteration = 0
        else:
            self._check_snapshot(resume_state, "sequential")
            rng.bit_generator.state = resume_state["rng_state"]
            current = resume_state["current"]
            current_cost = resume_state["current_cost"]
            best = resume_state["best"]
            best_cost = resume_state["best_cost"]
            n_evaluations = resume_state["n_evaluations"]
            n_accepted = resume_state["n_accepted"]
            cooling = resume_state["cooling"]
            temperature = resume_state["temperature"]
            history.load_state_dict(resume_state["history"])
            start_iteration = resume_state["iteration"]
            # Resume the wall clock where the interrupted run left it so
            # time_limit budgets span the whole run.
            start = time.perf_counter() - resume_state["elapsed"]

        for iteration in range(start_iteration, cfg.n_iterations):
            if (
                cfg.time_limit is not None
                and time.perf_counter() - start > cfg.time_limit
            ):
                break
            progress = iteration / cfg.n_iterations
            candidate = self.propose(current, rng, progress)
            temperature *= cooling
            if candidate is not None:
                candidate_cost = self.evaluate(candidate)
                n_evaluations += 1
                delta = candidate_cost - current_cost
                if delta <= 0 or rng.random() < math.exp(
                    -delta / max(temperature, 1e-12)
                ):
                    current, current_cost = candidate, candidate_cost
                    n_accepted += 1
                    if current_cost < best_cost:
                        best, best_cost = current, current_cost
                history.record(iteration, temperature, current_cost, best_cost)
            if self._should_checkpoint(iteration, checkpoint_fn):
                checkpoint_fn(
                    {
                        "engine": "sequential",
                        "iteration": iteration + 1,
                        "rng_state": rng.bit_generator.state,
                        "current": current,
                        "current_cost": current_cost,
                        "best": best,
                        "best_cost": best_cost,
                        "n_evaluations": n_evaluations,
                        "n_accepted": n_accepted,
                        "cooling": cooling,
                        "temperature": temperature,
                        "history": history.state_dict(),
                        "elapsed": time.perf_counter() - start,
                    }
                )

        return SAResult(
            best_state=best,
            best_cost=best_cost,
            n_evaluations=n_evaluations,
            n_accepted=n_accepted,
            elapsed=time.perf_counter() - start,
            history=history,
        )

    def _calibrate(self, state, cost, rng: np.random.Generator) -> tuple:
        """Initial temperature from the uphill-move cost spread.

        Returns (temperature, evaluations spent).
        """
        deltas = []
        evaluations = 0
        for _ in range(self.config.calibration_samples):
            candidate = self.propose(state, rng, 0.0)
            if candidate is None:
                continue
            delta = self.evaluate(candidate) - cost
            evaluations += 1
            if delta > 0:
                deltas.append(delta)
        if not deltas:
            return 1.0, evaluations
        # Accept an average uphill move with probability ~0.5 initially.
        return float(np.mean(deltas) / math.log(2.0)), evaluations

    # ------------------------------------------------------------------
    # lockstep multi-chain engine
    # ------------------------------------------------------------------

    def _evaluate_states(self, states) -> np.ndarray:
        if self.evaluate_many is not None:
            return np.asarray(self.evaluate_many(states), dtype=np.float64)
        return np.array([self.evaluate(s) for s in states], dtype=np.float64)

    def run_chains(
        self, initial_states, resume_state=None, checkpoint_fn=None
    ) -> SAResult:
        """Anneal ``len(initial_states)`` chains in lockstep.

        Each iteration proposes one move per chain, evaluates every
        feasible candidate in a single ``evaluate_many`` call, and
        applies the Metropolis rule per chain with that chain's own RNG
        and temperature.  History rows aggregate across chains:
        ``temperature`` is the chain mean, ``current_cost``/``best_cost``
        are population minima.  ``resume_state``/``checkpoint_fn``
        mirror :meth:`run`: a resumed multi-chain run restores every
        chain's RNG, temperature and incumbent and is bitwise identical
        to an uninterrupted one.
        """
        cfg = self.config
        chains = len(initial_states)
        if chains < 1:
            raise ValueError("run_chains needs at least one initial state")
        rngs = [np.random.default_rng(cfg.seed + c) for c in range(chains)]
        history = SAHistory(cfg.n_iterations, cfg.history_stride)

        if resume_state is None:
            start = time.perf_counter()
            current = list(initial_states)
            costs = self._evaluate_states(current)
            best = list(current)
            best_costs = costs.copy()
            n_evaluations = chains
            n_accepted = 0

            if cfg.initial_temperature is None:
                t0, calibration_evals = self._calibrate_chains(
                    current, costs, rngs
                )
                n_evaluations += calibration_evals
            else:
                t0 = np.full(chains, float(cfg.initial_temperature))
            cooling = (cfg.final_temperature / t0) ** (
                1.0 / max(cfg.n_iterations, 1)
            )
            temperature = t0.copy()
            start_iteration = 0
        else:
            self._check_snapshot(resume_state, "chains")
            if resume_state["n_chains"] != chains:
                raise ValueError(
                    f"snapshot has {resume_state['n_chains']} chains, "
                    f"run_chains was given {chains} initial states"
                )
            for rng, state in zip(rngs, resume_state["rng_states"]):
                rng.bit_generator.state = state
            current = list(resume_state["current"])
            costs = np.array(resume_state["costs"], dtype=np.float64)
            best = list(resume_state["best"])
            best_costs = np.array(resume_state["best_costs"], dtype=np.float64)
            n_evaluations = resume_state["n_evaluations"]
            n_accepted = resume_state["n_accepted"]
            cooling = np.array(resume_state["cooling"], dtype=np.float64)
            temperature = np.array(
                resume_state["temperature"], dtype=np.float64
            )
            history.load_state_dict(resume_state["history"])
            start_iteration = resume_state["iteration"]
            start = time.perf_counter() - resume_state["elapsed"]

        for iteration in range(start_iteration, cfg.n_iterations):
            if (
                cfg.time_limit is not None
                and time.perf_counter() - start > cfg.time_limit
            ):
                break
            progress = iteration / cfg.n_iterations
            candidates = [
                self.propose(current[c], rngs[c], progress)
                for c in range(chains)
            ]
            temperature *= cooling
            live = [c for c in range(chains) if candidates[c] is not None]
            if live:
                candidate_costs = self._evaluate_states(
                    [candidates[c] for c in live]
                )
                n_evaluations += len(live)
                for k, c in enumerate(live):
                    delta = candidate_costs[k] - costs[c]
                    if delta <= 0 or rngs[c].random() < math.exp(
                        -delta / max(temperature[c], 1e-12)
                    ):
                        current[c] = candidates[c]
                        costs[c] = candidate_costs[k]
                        n_accepted += 1
                        if costs[c] < best_costs[c]:
                            best[c] = current[c]
                            best_costs[c] = costs[c]
                history.record(
                    iteration,
                    float(temperature.mean()),
                    float(costs.min()),
                    float(best_costs.min()),
                )
            if self._should_checkpoint(iteration, checkpoint_fn):
                checkpoint_fn(
                    {
                        "engine": "chains",
                        "n_chains": chains,
                        "iteration": iteration + 1,
                        "rng_states": [
                            rng.bit_generator.state for rng in rngs
                        ],
                        "current": list(current),
                        "costs": costs.copy(),
                        "best": list(best),
                        "best_costs": best_costs.copy(),
                        "n_evaluations": n_evaluations,
                        "n_accepted": n_accepted,
                        "cooling": cooling.copy(),
                        "temperature": temperature.copy(),
                        "history": history.state_dict(),
                        "elapsed": time.perf_counter() - start,
                    }
                )

        winner = int(np.argmin(best_costs))
        return SAResult(
            best_state=best[winner],
            best_cost=float(best_costs[winner]),
            n_evaluations=n_evaluations,
            n_accepted=n_accepted,
            elapsed=time.perf_counter() - start,
            history=history,
            n_chains=chains,
            chain_best_costs=best_costs,
        )

    def _calibrate_chains(self, states, costs, rngs) -> tuple:
        """Per-chain :meth:`_calibrate` with batched evaluations.

        Each chain performs the same proposal draws a sequential
        calibration with its seed would; only the cost evaluations are
        fanned into ``evaluate_many`` (evaluation consumes no RNG, so
        the batching is unobservable to the chains).  Returns
        (per-chain temperatures, evaluations spent).
        """
        chains = len(states)
        deltas = [[] for _ in range(chains)]
        evaluations = 0
        for _ in range(self.config.calibration_samples):
            candidates = [
                self.propose(states[c], rngs[c], 0.0) for c in range(chains)
            ]
            live = [c for c in range(chains) if candidates[c] is not None]
            if not live:
                continue
            candidate_costs = self._evaluate_states(
                [candidates[c] for c in live]
            )
            evaluations += len(live)
            for k, c in enumerate(live):
                delta = candidate_costs[k] - costs[c]
                if delta > 0:
                    deltas[c].append(delta)
        t0 = np.array(
            [
                float(np.mean(d) / math.log(2.0)) if d else 1.0
                for d in deltas
            ]
        )
        return t0, evaluations
