"""Multi-GPU system (TAP-2.5D benchmark [4], after NVIDIA's MCM-GPU).

Four GPU modules with two HBM stacks each on a large silicon interposer
— the package NVIDIA's MCM-GPU study (Arunkumar et al., ISCA'17)
proposes and TAP-2.5D floorplans.  GPM power follows the MCM-GPU paper's
~115 W per module; HBM stacks dissipate a few watts; inter-GPM links are
wide parallel buses.
"""

from __future__ import annotations

from repro.chiplet import Chiplet, ChipletSystem, Interposer, Net
from repro.reward import RewardConfig
from repro.systems.spec import BenchmarkSpec
from repro.thermal import ThermalConfig

__all__ = ["multi_gpu_system"]


def multi_gpu_system() -> BenchmarkSpec:
    """Build the Multi-GPU benchmark spec."""
    chiplets = []
    nets = []
    for i in range(4):
        chiplets.append(
            Chiplet(f"gpu{i}", 12.0, 12.0, 115.0, kind="gpu")
        )
        for j in range(2):
            chiplets.append(
                Chiplet(f"hbm{i}{j}", 8.0, 12.0, 7.0, kind="hbm")
            )
    # Fully connected GPM fabric (six pairs).
    for i in range(4):
        for j in range(i + 1, 4):
            nets.append(Net(f"gpu{i}", f"gpu{j}", wires=512, name=f"g{i}g{j}"))
    # Each GPM talks to its two local HBM stacks.
    for i in range(4):
        for j in range(2):
            nets.append(
                Net(f"gpu{i}", f"hbm{i}{j}", wires=768, name=f"g{i}h{j}")
            )

    system = ChipletSystem(
        name="multi_gpu",
        interposer=Interposer(55.0, 55.0, min_spacing=0.2),
        chiplets=tuple(chiplets),
        nets=tuple(nets),
        metadata={"source": "MCM-GPU (ISCA'17) via TAP-2.5D (DATE'21)"},
    )
    # 516 W package: server-class sink, low convective resistance.
    # Calibrated so optimized layouts land near the paper's ~91 degC.
    thermal = ThermalConfig(r_convection=0.033, package_margin=12.0)
    reward = RewardConfig(lambda_wl=3.2e-4, t_limit=85.0, alpha=1.0)
    return BenchmarkSpec(
        name="multi_gpu",
        system=system,
        thermal_config=thermal,
        reward_config=reward,
        description="4 GPU modules + 8 HBM stacks, fully connected GPM fabric",
        paper_reference={
            "RLPlanner": {"reward": -37.1263, "wirelength": 97742, "temperature": 91.15},
            "RLPlanner(RND)": {"reward": -40.2777, "wirelength": 104636, "temperature": 91.85},
            "TAP-2.5D(HotSpot)": {"reward": -42.4572, "wirelength": 124639, "temperature": 91.68},
            "TAP-2.5D*(FastThermal)": {"reward": -41.3358, "wirelength": 111545, "temperature": 91.97},
        },
    )
