"""Per-wire microbump assignment (TAP-2.5D's wirelength optimization).

Every inter-chiplet net is a bundle of ``wires`` point-to-point links.
Each wire occupies one bump site on each endpoint die; a site carries at
most one wire (per ``wire_group_size`` wires — real D2D buses cluster
several signals per bump group, and grouping also bounds the assignment
cost for multi-thousand-wire bundles).

Nets are processed in descending wire count (fattest bundles get first
pick, as in TAP-2.5D); within a net, site pairs are chosen either

* ``"greedy"`` — repeatedly take the closest free (site_a, site_b) pair
  (sorted-distance sweep, near-optimal for convex perimeter geometries), or
* ``"hungarian"`` — optimal pairing between the k best candidate sites on
  each side via :func:`scipy.optimize.linear_sum_assignment`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.chiplet import Placement
from repro.bumps.sites import perimeter_sites

__all__ = ["NetAssignment", "BumpAssignment", "BumpAssigner"]


def _first_occurrence(values: np.ndarray, n_values: int) -> np.ndarray:
    """Mask of positions holding the first occurrence of each value.

    ``values`` are ints in ``[0, n_values)``.  O(n), no sorting: a
    reversed scatter makes the earliest position win.
    """
    first = np.full(n_values, -1, dtype=np.int64)
    first[values[::-1]] = np.arange(len(values) - 1, -1, -1)
    mask = np.zeros(len(values), dtype=bool)
    mask[first[first >= 0]] = True
    return mask


@dataclass(frozen=True)
class NetAssignment:
    """Assigned bump pairs for one net.

    ``pairs`` has shape ``(n_groups, 2, 2)``: for each wire group, the
    (x, y) of the source-side and destination-side bump.  ``wires_per_pair``
    records how many physical wires each group carries.
    """

    net_name: str
    src: str
    dst: str
    pairs: np.ndarray
    wires_per_pair: np.ndarray

    @property
    def wirelength(self) -> float:
        """Total Manhattan wirelength of this net in mm."""
        deltas = np.abs(self.pairs[:, 0, :] - self.pairs[:, 1, :]).sum(axis=1)
        return float((deltas * self.wires_per_pair).sum())

    @property
    def total_wires(self) -> int:
        return int(self.wires_per_pair.sum())


@dataclass
class BumpAssignment:
    """Complete assignment for a placement."""

    nets: list = field(default_factory=list)

    @property
    def total_wirelength(self) -> float:
        """Sum of per-net Manhattan wirelengths in mm."""
        return sum(net.wirelength for net in self.nets)

    def net(self, name: str) -> NetAssignment:
        for assignment in self.nets:
            if assignment.net_name == name:
                return assignment
        raise KeyError(f"no assignment for net {name!r}")


class BumpAssigner:
    """Assign microbumps for complete placements of one system.

    Parameters
    ----------
    pitch:
        Bump-site pitch along the perimeter in mm.
    rings:
        Number of perimeter rings per die (more rings = more capacity).
    wire_group_size:
        Wires sharing one bump pair.  1 assigns every wire its own pair;
        larger values trade accuracy for speed on huge bundles.
    method:
        ``"greedy"`` (default) or ``"hungarian"``.
    """

    def __init__(
        self,
        pitch: float = 0.4,
        rings: int = 4,
        wire_group_size: int = 1,
        method: str = "greedy",
    ):
        if method not in ("greedy", "hungarian"):
            raise ValueError(f"unknown assignment method {method!r}")
        if wire_group_size < 1:
            raise ValueError("wire_group_size must be >= 1")
        self.pitch = pitch
        self.rings = rings
        self.wire_group_size = wire_group_size
        self.method = method

    def assign(self, placement: Placement) -> BumpAssignment:
        """Run the assignment over all nets with placed endpoints."""
        system = placement.system
        site_xy = {}
        site_free = {}
        for name in placement.placed_names:
            sites = perimeter_sites(
                placement.footprint(name), pitch=self.pitch, rings=self.rings
            )
            coords = np.array([(s.x, s.y) for s in sites]).reshape(-1, 2)
            site_xy[name] = coords
            site_free[name] = np.ones(len(coords), dtype=bool)

        ordered = sorted(
            (
                net
                for net in system.nets
                if placement.is_placed(net.src) and placement.is_placed(net.dst)
            ),
            key=lambda net: -net.wires,
        )
        result = BumpAssignment()
        for index, net in enumerate(ordered):
            # Capacity fallback: when free sites run short (dense buses on
            # small dies), merge more wires per bump group rather than
            # fail — the grouping is recorded in wires_per_pair.
            group = self.wire_group_size
            while True:
                groups = self._group_sizes(net.wires, group)
                free_src = int(site_free[net.src].sum())
                free_dst = int(site_free[net.dst].sum())
                if len(groups) <= min(free_src, free_dst) or group >= net.wires:
                    break
                group *= 2
            pairs = self._assign_net(
                site_xy[net.src],
                site_free[net.src],
                site_xy[net.dst],
                site_free[net.dst],
                len(groups),
                net,
            )
            result.nets.append(
                NetAssignment(
                    net_name=net.name or f"net{index}",
                    src=net.src,
                    dst=net.dst,
                    pairs=pairs,
                    wires_per_pair=groups,
                )
            )
        return result

    # ------------------------------------------------------------------

    def _group_sizes(self, wires: int, group: int | None = None) -> np.ndarray:
        """Split a bundle into groups of ``group`` wires."""
        if group is None:
            group = self.wire_group_size
        full, rest = divmod(wires, group)
        sizes = [group] * full + ([rest] if rest else [])
        return np.array(sizes, dtype=np.int64)

    def _assign_net(
        self,
        xy_a: np.ndarray,
        free_a: np.ndarray,
        xy_b: np.ndarray,
        free_b: np.ndarray,
        n_pairs: int,
        net,
    ) -> np.ndarray:
        """Pick ``n_pairs`` site pairs, marking sites occupied in place."""
        idx_a = np.where(free_a)[0]
        idx_b = np.where(free_b)[0]
        if len(idx_a) < n_pairs or len(idx_b) < n_pairs:
            raise RuntimeError(
                f"net {net.src}->{net.dst} needs {n_pairs} bump pairs but only "
                f"{len(idx_a)}/{len(idx_b)} free sites remain; increase rings "
                f"or wire_group_size"
            )
        if self.method == "hungarian":
            chosen_a, chosen_b = self._pair_hungarian(
                xy_a[idx_a], xy_b[idx_b], n_pairs
            )
        else:
            chosen_a, chosen_b = self._pair_greedy(
                xy_a[idx_a], xy_b[idx_b], n_pairs
            )
        sel_a = idx_a[chosen_a]
        sel_b = idx_b[chosen_b]
        free_a[sel_a] = False
        free_b[sel_b] = False
        return np.stack([xy_a[sel_a], xy_b[sel_b]], axis=1)

    @staticmethod
    def _pair_greedy(xy_a: np.ndarray, xy_b: np.ndarray, n_pairs: int):
        """Sorted-distance sweep: take the closest free pair repeatedly.

        Candidates are prefiltered to the sites nearest the peer die so
        the sweep touches a small matrix; the winning pairs always lie on
        the facing perimeters, so the filter does not change the result
        in practice.
        """
        keep = min(max(2 * n_pairs, n_pairs + 16), len(xy_a), len(xy_b))
        center_b = xy_b.mean(axis=0)
        center_a = xy_a.mean(axis=0)
        near_a = np.argsort(
            np.abs(xy_a - center_b).sum(axis=1), kind="stable"
        )[:keep]
        near_b = np.argsort(
            np.abs(xy_b - center_a).sum(axis=1), kind="stable"
        )[:keep]
        sub_a = xy_a[near_a]
        sub_b = xy_b[near_b]
        dist = np.abs(sub_a[:, None, 0] - sub_b[None, :, 0]) + np.abs(
            sub_a[:, None, 1] - sub_b[None, :, 1]
        )
        order = np.argsort(dist, axis=None, kind="stable")
        all_rows, all_cols = np.divmod(order, dist.shape[1])
        chosen_a, chosen_b = [], []
        used_rows = np.zeros(keep, dtype=bool)
        used_cols = np.zeros(keep, dtype=bool)
        # Lazy sweep over the sorted entries in chunks: each chunk drops
        # already-used rows/cols vectorized, then resolves the intra-chunk
        # conflicts with the first-occurrence passes (small arrays).  The
        # acceptance order is identical to a sequential sweep.
        chunk_size = 4096
        for start in range(0, len(order), chunk_size):
            if len(chosen_a) >= n_pairs:
                break
            rows = all_rows[start : start + chunk_size]
            cols = all_cols[start : start + chunk_size]
            alive = ~used_rows[rows] & ~used_cols[cols]
            rows, cols = rows[alive], cols[alive]
            while len(chosen_a) < n_pairs and len(rows):
                take = np.flatnonzero(
                    _first_occurrence(rows, keep) & _first_occurrence(cols, keep)
                )
                take = take[: n_pairs - len(chosen_a)]
                chosen_a.extend(rows[take].tolist())
                chosen_b.extend(cols[take].tolist())
                used_rows[rows[take]] = True
                used_cols[cols[take]] = True
                remaining = ~used_rows[rows] & ~used_cols[cols]
                rows, cols = rows[remaining], cols[remaining]
        return near_a[np.array(chosen_a)], near_b[np.array(chosen_b)]

    @staticmethod
    def _pair_hungarian(xy_a: np.ndarray, xy_b: np.ndarray, n_pairs: int):
        """Optimal pairing among the candidate sites nearest the peer die."""
        center_b = xy_b.mean(axis=0)
        center_a = xy_a.mean(axis=0)
        # Prefilter to the 2x nearest candidates per side to keep the
        # Hungarian cost matrix small on big perimeters.
        keep = max(n_pairs * 2, n_pairs)
        near_a = np.argsort(
            np.abs(xy_a - center_b).sum(axis=1), kind="stable"
        )[:keep]
        near_b = np.argsort(
            np.abs(xy_b - center_a).sum(axis=1), kind="stable"
        )[:keep]
        cost = np.abs(
            xy_a[near_a][:, None, :] - xy_b[near_b][None, :, :]
        ).sum(axis=2)
        rows, cols = linear_sum_assignment(cost)
        order = np.argsort(cost[rows, cols], kind="stable")[:n_pairs]
        return near_a[rows[order]], near_b[cols[order]]
