"""Distributed episode collection: bitwise invariance across worker
counts, kill+resume under sharding, and pool lifecycle.

Covers the PR-6 tentpole guarantees:

* ``collect_jobs=2`` and ``=4`` training is **bitwise** identical to
  ``collect_jobs=1`` — plain, RND and across batch widths, including
  epochs whose episode count does not divide evenly over the workers
  (slices of width 1 exercise single-row waves);
* kill-at-epoch-k + resume under sharded collection == the
  uninterrupted in-process run, bitwise — even when the resumed run
  uses a *different* ``collect_jobs`` (per-episode streams re-derive
  from (seed, index), so worker count is not semantic state);
* the sequential engine (``batch_size=1``) cannot shard: requesting
  ``collect_jobs>1`` warns and falls back to in-process collection;
* (reward, episode-index)-keyed best-placement selection: ties can
  never flip the reported best, whatever order episodes arrive in;
* slice partitioning and the policy-weights payload round-trip;
* worker pools are released when training finishes or dies.

The in-process/golden anchoring chain: ``collect_jobs=1`` at
``batch_size=1`` is pinned to ``tests/data/golden_sequential_trainer
.json`` (test_trainer_batched), batched widths are pinned to each other
and to the golden experiments table, and this file pins every
``collect_jobs`` to ``collect_jobs=1``.
"""

import logging

import numpy as np
import pytest

from repro.agent import RLPlannerTrainer, TrainerConfig
from repro.agent.trainer import _improves_best
from repro.env import EnvConfig, FloorplanEnv
from repro.nn import CheckpointSchemaError, dumps_payload, loads_payload
from repro.parallel import collector as collector_module
from repro.parallel.collector import EpisodeCollector, partition_episodes
from repro.reward import RewardCalculator, RewardConfig
from repro.rl import PPOConfig, RNDConfig


class _Interrupted(Exception):
    """Raised by checkpoint hooks to emulate a mid-run kill."""


def _exploding_remote(weights, start_index, count, greedy, chaos_point="collector.slice"):
    """Stand-in worker task (module-level: must pickle by reference)."""
    raise RuntimeError("worker exploded")


def _hex(value) -> str:
    return float(value).hex()


def _history_hex(result):
    """Bitwise-comparable trainer history (wall-clock fields excluded)."""
    return [
        {
            key: (_hex(v) if isinstance(v, float) else v)
            for key, v in entry.items()
            if key != "elapsed"
        }
        for entry in result.history
    ]


def _distill(result) -> dict:
    return {
        "best_reward": _hex(result.best_reward),
        "history": _history_hex(result),
        "placement": (
            None
            if result.best_placement is None
            else sorted(result.best_placement.positions.items())
        ),
        "deadlocks": result.deadlock_count,
    }


@pytest.fixture
def trainer_env(small_system, small_fast_model):
    calc = RewardCalculator(
        small_fast_model, RewardConfig(lambda_wl=1e-4, use_bump_assignment=False)
    )
    return FloorplanEnv(small_system, calc, EnvConfig(grid_size=10))


def _make_trainer(env, **overrides):
    defaults = dict(
        epochs=2,
        # Deliberately does not divide evenly over 2 or 4 workers, so
        # sharded runs exercise uneven slices down to width-1 waves.
        episodes_per_epoch=5,
        batch_size=2,
        seed=3,
        log_every=0,
        encoder_channels=(4, 8, 8),
        ppo=PPOConfig(minibatch_size=8, update_epochs=2),
        rnd=RNDConfig(bonus_scale=0.5),
    )
    defaults.update(overrides)
    return RLPlannerTrainer(env, TrainerConfig(**defaults))


# ----------------------------------------------------------------------
# pure units: partitioning, selection, payload bytes
# ----------------------------------------------------------------------


class TestPartitionEpisodes:
    def test_slices_are_wave_aligned(self):
        # 10 episodes in waves of 3 -> waves [3, 3, 3, 1]; 4 workers
        # get one wave each.  The width-1 remainder wave stays intact.
        slices = partition_episodes(10, 10, 3, 4)
        assert slices == [(10, 3), (13, 3), (16, 3), (19, 1)]

    def test_waves_grouped_when_workers_are_scarce(self):
        # waves [2, 2, 1] over 2 workers -> [2 waves, 1 wave].
        assert partition_episodes(0, 5, 2, 2) == [(0, 4), (4, 1)]

    def test_fewer_waves_than_workers_drops_empty_slices(self):
        assert partition_episodes(0, 3, 1, 8) == [(0, 1), (1, 1), (2, 1)]
        assert partition_episodes(0, 8, 4, 8) == [(0, 4), (4, 4)]

    def test_width_beyond_count_is_one_slice(self):
        assert partition_episodes(7, 5, 64, 4) == [(7, 5)]

    def test_single_worker_single_slice(self):
        assert partition_episodes(7, 5, 2, 1) == [(7, 5)]

    def test_zero_episodes(self):
        assert partition_episodes(0, 0, 2, 4) == []

    @pytest.mark.parametrize(
        "count,width,jobs",
        [(5, 2, 2), (5, 2, 4), (16, 3, 3), (1, 2, 4), (7, 3, 2)],
    )
    def test_always_a_wave_aligned_partition(self, count, width, jobs):
        slices = partition_episodes(100, count, width, jobs)
        covered = [
            index
            for start, size in slices
            for index in range(start, start + size)
        ]
        assert covered == list(range(100, 100 + count))
        assert all(size >= 1 for _, size in slices)
        for start, size in slices:
            # Every slice begins on an in-process wave boundary and,
            # except for the epoch's final slice, holds whole waves.
            assert (start - 100) % width == 0
        for start, size in slices[:-1]:
            assert size % width == 0


class TestBestSelection:
    def test_higher_reward_always_wins(self):
        assert _improves_best(2.0, 99, 1.0, 0)
        assert not _improves_best(0.5, 0, 1.0, 99)

    def test_tie_breaks_toward_earlier_episode(self):
        assert _improves_best(1.0, 3, 1.0, 7)
        assert not _improves_best(1.0, 7, 1.0, 3)
        assert not _improves_best(1.0, 5, 1.0, 5)

    def test_selection_is_order_independent(self):
        # The same (reward, index) multiset must elect the same winner
        # in any arrival order — the property arrival-order ``>`` lacked.
        entries = [(1.0, 4), (2.0, 6), (2.0, 2), (0.5, 0), (2.0, 9)]
        winners = []
        rng = np.random.default_rng(0)
        for _ in range(10):
            order = list(entries)
            rng.shuffle(order)
            best_reward, best_episode = -np.inf, -1
            for reward, index in order:
                if _improves_best(reward, index, best_reward, best_episode):
                    best_reward, best_episode = reward, index
            winners.append((best_reward, best_episode))
        assert set(winners) == {(2.0, 2)}

    def test_in_order_arrival_matches_historical_first_wins(self):
        # Under the fixed index-order merge, the explicit key reduces
        # to the pre-fix strict-> rule: first of equals wins.  This is
        # what keeps the golden traces bitwise.
        best_reward, best_episode = -np.inf, -1
        picks = []
        for index, reward in enumerate([1.0, 3.0, 3.0, 2.0]):
            legacy = reward > best_reward
            keyed = _improves_best(reward, index, best_reward, best_episode)
            assert keyed == legacy
            if keyed:
                best_reward, best_episode = reward, index
                picks.append(index)
        assert picks == [0, 1]


class TestPolicyPayloadBytes:
    def test_round_trips_state_dict_bitwise(self):
        state = {
            "w": np.arange(12, dtype=np.float64).reshape(3, 4) / 7.0,
            "b": np.array([1e-300, -0.0, np.pi]),
        }
        data = dumps_payload(state, kind="collector-policy")
        assert isinstance(data, bytes)
        restored = loads_payload(data, kind="collector-policy")
        assert set(restored) == {"w", "b"}
        for key in state:
            assert restored[key].tobytes() == state[key].tobytes()
            assert restored[key].dtype == state[key].dtype

    def test_kind_mismatch_rejected(self):
        data = dumps_payload({"x": 1}, kind="collector-policy")
        with pytest.raises(CheckpointSchemaError, match="kind"):
            loads_payload(data, kind="rlplanner-trainer")


# ----------------------------------------------------------------------
# bitwise invariance across worker counts
# ----------------------------------------------------------------------


class TestShardedBitwise:
    @pytest.mark.parametrize(
        "variant_kwargs",
        [
            dict(),
            dict(use_rnd=True),
            dict(batch_size=3),
        ],
        ids=["plain", "rnd", "width3"],
    )
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_collect_jobs_bitwise_equals_in_process(
        self, trainer_env, jobs, variant_kwargs
    ):
        reference = _distill(
            _make_trainer(trainer_env, **variant_kwargs).train()
        )
        sharded = _distill(
            _make_trainer(
                trainer_env, collect_jobs=jobs, **variant_kwargs
            ).train()
        )
        assert sharded == reference

    def test_collect_episodes_merges_in_index_order(self, trainer_env):
        reference = _make_trainer(trainer_env)
        sharded = _make_trainer(trainer_env, collect_jobs=2)
        try:
            ref_pairs = reference.collect_episodes(5)
            got_pairs = sharded.collect_episodes(5)
            assert len(got_pairs) == len(ref_pairs) == 5
            for (ref_ep, _), (got_ep, _) in zip(ref_pairs, got_pairs):
                assert got_ep.actions == ref_ep.actions
                assert got_ep.log_probs == ref_ep.log_probs
                assert got_ep.rewards == ref_ep.rewards
            assert sharded._episode_index == reference._episode_index == 5
        finally:
            sharded.close_collector()


class TestSequentialFallback:
    def test_batch_size_1_warns_and_collects_in_process(
        self, trainer_env, caplog
    ):
        logger = logging.getLogger("repro")
        logger.addHandler(caplog.handler)
        try:
            trainer = _make_trainer(
                trainer_env, batch_size=1, collect_jobs=4
            )
        finally:
            logger.removeHandler(caplog.handler)
        assert any(
            "cannot be sharded" in rec.getMessage() for rec in caplog.records
        )
        assert trainer.collect_jobs == 1
        assert trainer._collector is None
        reference = _distill(_make_trainer(trainer_env, batch_size=1).train())
        assert _distill(trainer.train()) == reference

    def test_collect_jobs_zero_rejected(self):
        with pytest.raises(ValueError, match="collect_jobs"):
            TrainerConfig(collect_jobs=0)


# ----------------------------------------------------------------------
# kill + resume under sharded collection
# ----------------------------------------------------------------------


class TestShardedResume:
    @pytest.mark.parametrize("resume_jobs", [2, 4, 1])
    def test_kill_and_resume_bitwise(
        self, trainer_env, tmp_path, resume_jobs
    ):
        """Sharded run killed at epoch 2 resumes bitwise — even under a
        different worker count than it was interrupted at."""
        reference = _make_trainer(trainer_env, epochs=4).train()

        path = tmp_path / "ckpt.npz"
        interrupted = _make_trainer(
            trainer_env, epochs=4, collect_jobs=2, checkpoint_every=2
        )

        def kill_at_checkpoint(state):
            interrupted.save_checkpoint(path)
            raise _Interrupted()

        with pytest.raises(_Interrupted):
            interrupted.train(checkpoint_fn=kill_at_checkpoint)
        assert not interrupted._collector.active  # pool not stranded

        resumed = _make_trainer(
            trainer_env, epochs=4, collect_jobs=resume_jobs, checkpoint_every=2
        )
        resumed.load_checkpoint(path)
        assert resumed._progress["epochs_run"] == 2
        result = resumed.train()

        assert result.epochs_run == reference.epochs_run
        assert _distill(result) == _distill(reference)

    def test_checkpoint_records_collect_jobs_and_best_episode(
        self, trainer_env
    ):
        trainer = _make_trainer(trainer_env, collect_jobs=2)
        trainer.train()
        state = trainer.state_dict()
        assert state["collect_jobs"] == 2
        assert state["episode_index"] == 10  # 2 epochs x 5 episodes
        best_episode = state["progress"]["best_episode"]
        assert 0 <= best_episode < 10


# ----------------------------------------------------------------------
# pool lifecycle
# ----------------------------------------------------------------------


class TestCollectorLifecycle:
    def test_train_releases_workers(self, trainer_env):
        trainer = _make_trainer(trainer_env, collect_jobs=2)
        assert not trainer._collector.active  # lazy: nothing spawned yet
        trainer.train()
        assert not trainer._collector.active

    def test_close_is_idempotent(self, trainer_env):
        trainer = _make_trainer(trainer_env, collect_jobs=2)
        trainer.collect_episodes(2)
        assert trainer._collector.active
        trainer.close_collector()
        assert not trainer._collector.active
        trainer.close_collector()
        # The pool respawns transparently if collection continues.
        trainer.collect_episodes(2)
        assert trainer._collector.active
        trainer.close_collector()

    def test_constructor_validation(self, trainer_env):
        env = trainer_env
        with pytest.raises(ValueError, match="jobs"):
            EpisodeCollector(
                env.system,
                env.reward_calculator,
                env.config,
                jobs=1,
                batch_size=4,
                seed=0,
            )
        with pytest.raises(ValueError, match="batch_size"):
            EpisodeCollector(
                env.system,
                env.reward_calculator,
                env.config,
                jobs=2,
                batch_size=1,
                seed=0,
            )
        with pytest.raises(ValueError, match="reprobe_after"):
            EpisodeCollector(
                env.system,
                env.reward_calculator,
                env.config,
                jobs=2,
                batch_size=4,
                seed=0,
                reprobe_after=-1,
            )

    def test_prefetch_handoff_contract(self, trainer_env):
        env = trainer_env
        collector = EpisodeCollector(
            env.system,
            env.reward_calculator,
            env.config,
            jobs=2,
            batch_size=2,
            seed=3,
        )
        with collector:
            with pytest.raises(RuntimeError, match="no prefetch"):
                collector.collect_prefetched()
            collector.cancel_prefetch()  # idempotent with none outstanding
            weights = dumps_payload(
                {"w": np.zeros(1)}, kind="collector-policy"
            )
            # A double prefetch is a trainer bug, not a race to tolerate.
            collector._prefetch = {"futures": []}
            try:
                with pytest.raises(RuntimeError, match="outstanding"):
                    collector.prefetch(weights, 0, 4)
            finally:
                collector.cancel_prefetch()
            assert not collector.prefetching

    def test_worker_failure_closes_pool_and_propagates(
        self, trainer_env, monkeypatch
    ):
        # Module-level, so the submitted callable pickles by reference
        # (a closure would crash the executor's queue-feeder thread
        # instead of failing the future).
        monkeypatch.setattr(
            collector_module, "_collect_remote", _exploding_remote
        )
        trainer = _make_trainer(trainer_env, collect_jobs=2)
        with pytest.raises(RuntimeError, match="worker exploded"):
            trainer.collect_episodes(4)
        assert not trainer._collector.active


# ----------------------------------------------------------------------
# compressed weight broadcast (transport encoding, never semantic)
# ----------------------------------------------------------------------


class TestCompressedBroadcast:
    """Satellite: opt-in zlib on the per-epoch weight broadcast.

    The compressed stream wraps the ENTIRE sealed payload, so the
    SHA-256 footer is computed and verified over the uncompressed
    bytes; ``loads_payload`` auto-detects the wrapper.  Decoded weights
    are bitwise identical, so collected episodes are too — pinned here
    against the uncompressed sharded run (itself pinned to in-process
    collection above).
    """

    def test_compressed_payload_round_trips_bitwise(self):
        state = {
            "w": np.arange(64, dtype=np.float64).reshape(8, 8) / 9.0,
            "b": np.array([1e-300, -0.0, np.pi]),
        }
        plain = dumps_payload(state, kind="collector-policy")
        packed = dumps_payload(state, kind="collector-policy", compress=True)
        assert packed.startswith(b"RPRZLB1\x00")
        assert packed != plain
        restored = loads_payload(packed, kind="collector-policy")
        for key in state:
            assert restored[key].tobytes() == state[key].tobytes()
            assert restored[key].dtype == state[key].dtype
        # The two transport encodings decode to identical dicts.
        plain_restored = loads_payload(plain, kind="collector-policy")
        for key in state:
            assert (
                restored[key].tobytes() == plain_restored[key].tobytes()
            )

    def test_corrupt_compressed_stream_fails_loudly(self):
        from repro.nn.serialization import PayloadIntegrityError

        packed = dumps_payload(
            {"w": np.zeros(8)}, kind="collector-policy", compress=True
        )
        with pytest.raises(PayloadIntegrityError):
            loads_payload(packed[: len(packed) // 2], kind="collector-policy")
        flipped = bytearray(packed)
        flipped[-1] ^= 0x20
        with pytest.raises(PayloadIntegrityError):
            loads_payload(bytes(flipped), kind="collector-policy")

    def test_compressed_broadcast_training_is_bitwise_identical(
        self, trainer_env
    ):
        reference = _distill(
            _make_trainer(trainer_env, collect_jobs=2).train()
        )
        compressed = _distill(
            _make_trainer(
                trainer_env, collect_jobs=2, compress_broadcast=True
            ).train()
        )
        assert compressed == reference
