"""Dependency-aware job scheduler over a process pool.

Design constraints, in order:

1. **Bit-for-bit sequential fallback.**  ``run_jobs(specs, jobs=1)``
   executes every job in submission order, in process, with no pool and
   no pickling — exactly the code path the pre-scheduler harness ran.
   The golden-experiments regression pins this.
2. **Determinism at any worker count.**  Jobs must be pure functions of
   their spec (every experiment job carries its own seed), so results
   cannot depend on scheduling order; only wall clock does.  The result
   mapping is returned in submission order regardless of completion
   order.
3. **Explicit dependencies.**  A job may name earlier jobs in
   ``needs``; it is not dispatched until they finish.  Cross-job data
   flows through ``inject``, which runs **in the parent** right before
   dispatch and may rewrite the job's kwargs from the dependencies'
   results (the wall-clock-matched SA arm receives the measured RL
   runtime this way).  Requiring ``needs`` to point at earlier
   submissions keeps the graph acyclic by construction and makes the
   sequential fallback trivially dependency-correct.

Job functions must be importable top-level callables and their kwargs
picklable — the usual :mod:`multiprocessing` contract.  A failed job
raises :class:`JobFailedError` in the parent (after cancelling what can
still be cancelled) rather than silently dropping results.

**Run-store integration.**  A spec may carry a ``store_key`` (a
:func:`repro.store.store_key` digest).  When ``run_jobs`` is given a
:class:`~repro.store.RunStore`, keyed jobs whose result is already
published are *never scheduled*: the stored result enters the outcome
mapping (and feeds dependents' ``inject`` hooks) directly, which is
what makes re-running a completed sweep with ``--resume`` execute zero
method-arm jobs.  Keyed jobs that do execute have their result
published to the store on completion (in the parent, atomically).
With ``store=None`` the scheduler behaves exactly as before.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

from repro.utils import get_logger

__all__ = ["JobFailedError", "JobSpec", "resolve_jobs", "run_jobs"]

_logger = get_logger("parallel.scheduler")


class JobFailedError(RuntimeError):
    """A job raised in a worker; carries the failing job id."""

    def __init__(self, job_id: str, cause: BaseException):
        super().__init__(f"job {job_id!r} failed: {cause!r}")
        self.job_id = job_id
        self.cause = cause


@dataclass
class JobSpec:
    """One schedulable unit of work.

    Attributes
    ----------
    job_id:
        Unique name; dependency edges and the result mapping use it.
    fn:
        Importable top-level callable (workers re-import it by
        qualified name when pickled).
    kwargs:
        Keyword arguments for ``fn``; must be picklable for ``jobs>1``.
    needs:
        Ids of jobs that must complete first.  They must refer to
        *earlier* submissions (forward edges only), which keeps the
        graph a DAG and the ``jobs=1`` fallback dependency-correct
        without a topological sort.
    inject:
        Optional ``inject(kwargs, done) -> kwargs`` hook run in the
        parent immediately before dispatch, where ``done`` maps
        completed job ids to their results.  This is the only
        cross-job data channel; use :func:`functools.partial` to bind
        which dependency feeds which keyword.
    store_key:
        Optional content-addressed key in the run store.  When
        ``run_jobs`` receives a store, a published result under this
        key short-circuits the job entirely, and a freshly computed
        result is published under it.  ``None`` (default) opts the job
        out of the store.
    """

    job_id: str
    fn: object
    kwargs: dict = field(default_factory=dict)
    needs: tuple = ()
    inject: object = None
    store_key: str | None = None

    def resolved_kwargs(self, done: dict) -> dict:
        kwargs = dict(self.kwargs)
        if self.inject is not None:
            kwargs = self.inject(kwargs, done)
        return kwargs


def _validate(specs: list) -> None:
    seen = set()
    for spec in specs:
        if spec.job_id in seen:
            raise ValueError(f"duplicate job id {spec.job_id!r}")
        for dep in spec.needs:
            if dep not in seen:
                raise ValueError(
                    f"job {spec.job_id!r} needs {dep!r}, which is not an "
                    "earlier submission (forward dependency edges only)"
                )
        seen.add(spec.job_id)


def _probe_cpu_count() -> int:
    """CPUs available to this process, probed defensively.

    Every probe in the chain is allowed to be missing, raise, or answer
    ``None`` (``os.cpu_count`` is documented to return ``None`` when it
    cannot determine the count, and containers/exotic hosts do hit
    that): a dead probe falls through to the next one instead of
    propagating ``None``/``TypeError`` into a worker count, and the
    final answer is always clamped to at least 1.
    """
    probes = (
        # Python >= 3.13: cgroup/affinity-aware by design.
        getattr(os, "process_cpu_count", None),
        # Linux: scheduling affinity of this process.
        lambda: len(os.sched_getaffinity(0)),
        # Portable last resort.
        os.cpu_count,
    )
    for probe in probes:
        if probe is None:
            continue
        try:
            count = probe()
        except (AttributeError, OSError, ValueError):
            continue
        if count is not None and int(count) >= 1:
            return int(count)
    return 1


def resolve_jobs(value) -> int:
    """Parse a ``--jobs`` value: a positive integer or ``"auto"``.

    ``"auto"`` resolves to the CPUs actually available to this process
    (``os.process_cpu_count`` where it exists — Python >= 3.13 — then
    the scheduling affinity, then ``os.cpu_count``), never less than 1
    even when every probe is unavailable or answers ``None``.
    """
    if isinstance(value, int):
        jobs = value
    else:
        text = str(value).strip().lower()
        if text == "auto":
            return _probe_cpu_count()
        jobs = int(text)  # ValueError on garbage, as argparse expects
    if jobs < 1:
        raise ValueError("jobs must be >= 1 (or 'auto')")
    return jobs


def run_jobs(specs, jobs: int = 1, store=None) -> dict:
    """Execute ``specs``; return ``{job_id: result}`` in submission order.

    ``jobs=1`` runs in process and in submission order — the bit-exact
    sequential path.  ``jobs>1`` dispatches every dependency-free job to
    a pool of that many worker processes and releases dependents as
    their ``needs`` complete.

    ``store`` (a :class:`repro.store.RunStore`) makes keyed jobs
    resumable: published results are returned without executing the
    job, and newly computed results are published.
    """
    specs = list(specs)
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    _validate(specs)
    if not specs:
        return {}
    done: dict = {}
    pending = specs
    if store is not None:
        pending = []
        for spec in specs:
            if spec.store_key is not None:
                hit, value = store.fetch(spec.store_key)
                if hit:
                    _logger.info("store hit, skipping %s", spec.job_id)
                    done[spec.job_id] = value
                    continue
            pending.append(spec)
    if jobs == 1:
        _run_sequential(pending, done, store)
    else:
        _run_pooled(pending, jobs, done, store)
    return {spec.job_id: done[spec.job_id] for spec in specs}


def _publish(store, spec: JobSpec, result) -> None:
    if store is not None and spec.store_key is not None:
        store.put(spec.store_key, result)


def _run_sequential(specs: list, done: dict, store=None) -> None:
    for spec in specs:
        done[spec.job_id] = spec.fn(**spec.resolved_kwargs(done))
        _publish(store, spec, done[spec.job_id])


def _run_pooled(specs: list, jobs: int, done: dict, store=None) -> None:
    by_id = {spec.job_id: spec for spec in specs}
    waiting = list(specs)
    futures = {}  # future -> job_id
    # Deliberately NOT a ``with`` block: the context manager's __exit__
    # is shutdown(wait=True), which would hold a failure — or a Ctrl-C —
    # hostage until every in-flight job finishes (minutes on real
    # budgets).  Errors instead abandon the pool immediately below.
    pool = ProcessPoolExecutor(max_workers=jobs)
    try:
        def dispatch_ready() -> None:
            still_waiting = []
            for spec in waiting:
                if all(dep in done for dep in spec.needs):
                    _logger.debug("dispatching %s", spec.job_id)
                    future = pool.submit(spec.fn, **spec.resolved_kwargs(done))
                    futures[future] = spec.job_id
                else:
                    still_waiting.append(spec)
            waiting[:] = still_waiting

        dispatch_ready()
        while futures:
            finished, _ = wait(futures, return_when=FIRST_COMPLETED)
            for future in finished:
                job_id = futures.pop(future)
                error = future.exception()
                if error is not None:
                    raise JobFailedError(job_id, error)
                done[job_id] = future.result()
                _publish(store, by_id[job_id], done[job_id])
            dispatch_ready()
    except BaseException as error:
        # Fail fast: drop queued futures and do NOT wait for in-flight
        # siblings — surface the failure (or KeyboardInterrupt) now.
        # Completed keyed jobs were already published atomically as
        # they finished, so an interrupted sweep stays --resume-able;
        # the failing/cancelled jobs simply never published.
        # Snapshot before shutdown(): it nulls the process table.
        workers = list((getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        if isinstance(error, KeyboardInterrupt):
            # A job failure lets in-flight siblings drain (their
            # worker-side publishes salvage real work), but Ctrl-C
            # means *stop now*: undrained workers would keep the
            # interpreter alive at exit (the executor's atexit hook
            # joins them), holding the terminal for as long as the
            # longest in-flight arm.  Terminating them is safe — every
            # store write is atomic, so a killed job simply never
            # published and restarts from its last checkpoint.
            for process in workers:
                process.terminate()
        raise
    pool.shutdown(wait=True)
    if waiting:  # unreachable given _validate, kept as a tripwire
        raise RuntimeError(
            f"{len(waiting)} jobs never became ready: "
            f"{[spec.job_id for spec in waiting]}"
        )
