"""Tests for the chiplet data model: Chiplet, Net, ChipletSystem, Placement."""

import pytest

from repro.chiplet import (
    Chiplet,
    ChipletSystem,
    Interposer,
    Net,
    Placement,
)


@pytest.fixture
def system():
    chiplets = (
        Chiplet("cpu", 10, 8, 50.0, kind="cpu"),
        Chiplet("gpu", 12, 12, 120.0, kind="gpu"),
        Chiplet("hbm", 6, 8, 15.0, kind="hbm", rotatable=False),
    )
    nets = (
        Net("cpu", "gpu", wires=256, name="c2g"),
        Net("gpu", "hbm", wires=1024),
        Net("cpu", "hbm", wires=64),
    )
    return ChipletSystem("demo", Interposer(40, 40), chiplets, nets)


class TestChiplet:
    def test_area_and_density(self):
        c = Chiplet("a", 4, 5, 10.0)
        assert c.area == 20.0
        assert c.power_density == pytest.approx(0.5)

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            Chiplet("", 1, 1, 1)
        with pytest.raises(ValueError):
            Chiplet("a", 0, 1, 1)
        with pytest.raises(ValueError):
            Chiplet("a", 1, 1, -1)

    def test_footprint_rotation(self):
        c = Chiplet("a", 4, 2, 1.0)
        up = c.footprint(0, 0)
        rot = c.footprint(0, 0, rotated=True)
        assert (up.w, up.h) == (4, 2)
        assert (rot.w, rot.h) == (2, 4)

    def test_rotated_copy_preserves_identity(self):
        c = Chiplet("a", 4, 2, 7.0, kind="x")
        r = c.rotated_copy()
        assert (r.width, r.height) == (2, 4)
        assert r.power == 7.0 and r.name == "a" and r.kind == "x"


class TestNet:
    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Net("a", "a")

    def test_wires_positive(self):
        with pytest.raises(ValueError):
            Net("a", "b", wires=0)

    def test_other_endpoint(self):
        n = Net("a", "b")
        assert n.other("a") == "b"
        assert n.other("b") == "a"
        with pytest.raises(ValueError):
            n.other("c")


class TestSystem:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            ChipletSystem(
                "bad",
                Interposer(10, 10),
                (Chiplet("a", 1, 1, 1), Chiplet("a", 2, 2, 2)),
            )

    def test_unknown_net_endpoint_rejected(self):
        with pytest.raises(ValueError):
            ChipletSystem(
                "bad",
                Interposer(10, 10),
                (Chiplet("a", 1, 1, 1),),
                (Net("a", "ghost"),),
            )

    def test_lookup(self, system):
        assert system.chiplet("gpu").power == 120.0
        with pytest.raises(KeyError):
            system.chiplet("nope")

    def test_aggregates(self, system):
        assert system.total_power == pytest.approx(185.0)
        assert system.total_chiplet_area == pytest.approx(80 + 144 + 48)
        assert 0 < system.utilization < 1
        assert system.total_wires == 256 + 1024 + 64

    def test_nets_of(self, system):
        assert len(system.nets_of("cpu")) == 2
        assert len(system.nets_of("gpu")) == 2

    def test_wires_between_merges_nets(self):
        sys2 = ChipletSystem(
            "m",
            Interposer(20, 20),
            (Chiplet("a", 1, 1, 1), Chiplet("b", 1, 1, 1)),
            (Net("a", "b", wires=3), Net("b", "a", wires=4)),
        )
        assert sys2.wires_between("a", "b") == 7

    def test_connectivity_graph(self, system):
        graph = system.connectivity_graph()
        assert set(graph.nodes) == {"cpu", "gpu", "hbm"}
        assert graph["gpu"]["hbm"]["wires"] == 1024

    def test_placement_order_by_area_then_power(self, system):
        order = system.placement_order()
        assert order[0] == "gpu"  # largest area
        assert set(order) == {"cpu", "gpu", "hbm"}


class TestPlacement:
    def test_place_and_footprint(self, system):
        p = Placement(system)
        p.place("gpu", 2.0, 3.0)
        fp = p.footprint("gpu")
        assert (fp.x, fp.y, fp.w, fp.h) == (2.0, 3.0, 12.0, 12.0)

    def test_rotated_footprint(self, system):
        p = Placement(system)
        p.place("cpu", 0.0, 0.0, rotated=True)
        fp = p.footprint("cpu")
        assert (fp.w, fp.h) == (8.0, 10.0)

    def test_unknown_chiplet_rejected(self, system):
        p = Placement(system)
        with pytest.raises(KeyError):
            p.place("ghost", 0, 0)

    def test_completeness(self, system):
        p = Placement(system)
        assert not p.is_complete
        for i, name in enumerate(system.chiplet_names):
            p.place(name, i * 13.0, 0.0)
        assert p.is_complete

    def test_unplace(self, system):
        p = Placement(system)
        p.place("gpu", 0, 0)
        p.unplace("gpu")
        assert not p.is_placed("gpu")
        p.unplace("gpu")  # idempotent

    def test_copy_is_independent(self, system):
        p = Placement(system)
        p.place("gpu", 0, 0)
        q = p.copy()
        q.place("cpu", 20, 20)
        assert not p.is_placed("cpu")

    def test_dict_roundtrip(self, system):
        p = Placement(system)
        p.place("gpu", 1.0, 2.0)
        p.place("cpu", 20.0, 3.0, rotated=True)
        q = Placement.from_dict(system, p.as_dict())
        assert q.positions == p.positions
