"""HotSpot-style steady-state compact thermal model.

The package is discretized into ``n_layers x rows x cols`` finite-volume
cells.  Adjacent cells are coupled by thermal conductances (series
half-cell resistances, harmonic mean); the sink's top face couples to
ambient through a distributed convective resistance and, optionally, the
interposer's bottom face couples to the board through a weaker secondary
path.  Chiplet power is injected uniformly over each die's footprint in
the chiplet layer.  The resulting linear system ``G T = q`` is solved
with a sparse direct factorization.

This mirrors the formulation of HotSpot's grid model [Huang et al.,
TVLSI'06] and serves as the reproduction's ground-truth solver.
"""

from __future__ import annotations

import time

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.chiplet import ChipletSystem, Interposer, Placement
from repro.geometry import PlacementGrid, Rect
from repro.thermal.config import ThermalConfig
from repro.thermal.result import ThermalResult

__all__ = ["GridThermalSolver"]


class GridThermalSolver:
    """Steady-state solver for one package geometry.

    Parameters
    ----------
    interposer:
        Placement region; all layers share its lateral extent.
    config:
        Grid resolution, stack, boundary resistances, ambient.

    reuse_factorization:
        With the default homogeneous chiplet layer the conductance matrix
        is placement-independent, so its LU factorization can be computed
        once and reused for every evaluation; reused solves are
        bitwise-identical to fresh ones (regression-tested).  Defaults to
        False to keep per-call costs comparable to running the HotSpot
        binary (build model, factorize, solve each time) — which is what
        the paper's speed comparison measures.  Characterization turns it
        on.  With ``heterogeneous_chiplet_layer`` the matrix depends on
        die coverage, so the flag is ignored and every call re-assembles
        and re-factorizes.

    Notes
    -----
    The solver is placement-agnostic: construct once per package and call
    :meth:`evaluate` with any placement on that interposer.

    Batched evaluation: :meth:`solve_footprints_many` /
    :meth:`evaluate_many` / :meth:`max_temperatures` solve M
    configurations through **one** factorization — because the
    homogeneous matrix is placement-independent, only the right-hand
    side varies between candidates, so the M assembled RHS columns are
    back-substituted through a single shared LU.  Each column runs the
    same single-vector kernel a sequential solve runs, so batched
    results are bitwise identical to M sequential solves
    (regression-tested); ``reuse_factorization=False`` still amortizes
    the factorization *within* one batched call, which is what lets the
    ``TAP-2.5D(HotSpot)`` arm join the multi-chain annealing engine.
    All solve paths (fresh, cached, batched) share one ``splu``-based
    codepath; ``solve_count`` counts solved columns and
    ``factorization_count`` counts factorizations, so tests can assert
    the sharing actually happens.
    """

    # Ground-truth evaluations are expensive and the batched solve is
    # bitwise-exact, so RewardCalculator.evaluate_many routes batches
    # through its exact adapter (scalar wirelength/combine, batched
    # thermal) — multi-chain SA then reproduces sequential runs bitwise.
    exact_batched_rewards = True

    def __init__(
        self,
        interposer: Interposer,
        config: ThermalConfig | None = None,
        reuse_factorization: bool = False,
    ):
        self.interposer = interposer
        self.config = config or ThermalConfig()
        margin = self.config.package_margin
        # The thermal grid spans the whole package; placements live in the
        # interposer frame and are shifted by the margin internally.
        self.grid = PlacementGrid(
            interposer.width + 2 * margin,
            interposer.height + 2 * margin,
            self.config.rows,
            self.config.cols,
        )
        self._offset = margin
        self._n_layers = self.config.stack.n_layers
        self._chip_idx = self.config.stack.chiplet_layer_index
        # Fraction of each cell inside the interposer core (periphery
        # materials apply outside it).
        self._core_cover = self.grid.coverage(
            Rect(margin, margin, interposer.width, interposer.height)
            if margin > 0.0
            else Rect(0.0, 0.0, interposer.width, interposer.height)
        )
        self._static = self._assemble_static()
        self.reuse_factorization = reuse_factorization
        self._factor = None
        self.solve_count = 0
        self.factorization_count = 0

    # -- frame helpers ---------------------------------------------------

    def to_package_frame(self, rect: Rect) -> Rect:
        """Translate an interposer-frame rectangle into the package frame."""
        return rect.translated(self._offset, self._offset)

    def chip_coverage(self, rect: Rect) -> np.ndarray:
        """Grid coverage of an interposer-frame rectangle."""
        return self.grid.coverage(self.to_package_frame(rect))

    def cell_centers(self) -> tuple:
        """Cell-center coordinate meshes in the *interposer* frame."""
        xs = (np.arange(self.grid.cols) + 0.5) * self.grid.dx - self._offset
        ys = (np.arange(self.grid.rows) + 0.5) * self.grid.dy - self._offset
        return np.meshgrid(xs, ys)

    def interposer_mask(self) -> np.ndarray:
        """Cells whose centers lie on the interposer (valid die locations)."""
        mesh_x, mesh_y = self.cell_centers()
        return (
            (mesh_x >= 0.0)
            & (mesh_x <= self.interposer.width)
            & (mesh_y >= 0.0)
            & (mesh_y <= self.interposer.height)
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def evaluate(self, placement: Placement) -> ThermalResult:
        """Solve the thermal field for a (complete or partial) placement."""
        start = time.perf_counter()
        footprints = placement.footprints()
        powers = {
            name: placement.system.chiplet(name).power for name in footprints
        }
        temps = self.solve_footprints(footprints, powers)
        return self._extract_result(
            footprints, temps, time.perf_counter() - start
        )

    def _extract_result(
        self, footprints: dict, temps: np.ndarray, elapsed: float
    ) -> ThermalResult:
        """Per-die temperatures + package peak from one solved field.

        Shared by :meth:`evaluate` and :meth:`evaluate_many` so the
        batched path equals the scalar path by construction, not by
        hand-kept synchronization.
        """
        chip_layer = temps[self._chip_idx]
        chiplet_temps = {
            name: self._die_max_temperature(chip_layer, rect)
            for name, rect in footprints.items()
        }
        max_temp = (
            max(chiplet_temps.values()) if chiplet_temps else self.config.ambient
        )
        return ThermalResult(
            chiplet_temperatures=chiplet_temps,
            max_temperature=max_temp,
            grid_temperatures=temps,
            elapsed=elapsed,
        )

    def evaluate_many(self, placements) -> list:
        """Batched :meth:`evaluate` sharing one factorization.

        All placements' right-hand sides are back-substituted through a
        single shared factorization (see :meth:`solve_footprints_many`
        for why that is column-by-column, not a block solve); per-die
        temperature extraction is the scalar helper applied per field,
        so every result is bitwise identical to a sequential
        :meth:`evaluate` of the same placement.  Per-result ``elapsed``
        is the batch time divided evenly.
        """
        placements = list(placements)
        if not placements:
            return []
        start = time.perf_counter()
        footprints_list = [p.footprints() for p in placements]
        powers_list = [
            {name: p.system.chiplet(name).power for name in fps}
            for p, fps in zip(placements, footprints_list)
        ]
        fields = self.solve_footprints_many(footprints_list, powers_list)
        elapsed = (time.perf_counter() - start) / len(placements)
        return [
            self._extract_result(fps, temps, elapsed)
            for fps, temps in zip(footprints_list, fields)
        ]

    def max_temperatures(self, placements) -> np.ndarray:
        """Peak package temperature (K) per placement, via one block solve.

        The batched-reward hook ``RewardCalculator.evaluate_many`` looks
        for; temperatures are bitwise identical to per-placement
        :meth:`evaluate` calls.
        """
        placements = list(placements)
        if not placements:
            return np.empty(0)
        return np.array(
            [result.max_temperature for result in self.evaluate_many(placements)]
        )

    def solve_footprints(self, footprints: dict, powers: dict) -> np.ndarray:
        """Temperature field (K) for arbitrary die rectangles and powers.

        This is the low-level entry used by both :meth:`evaluate` and the
        surrogate characterization (which solves synthetic one- and
        two-die configurations).
        """
        rhs = self._assemble_rhs(footprints, powers)
        solution = self._factor_for(footprints).solve(rhs)
        self.solve_count += 1
        rows, cols = self.grid.shape
        return solution.reshape(self._n_layers, rows, cols)

    def solve_footprints_many(
        self, footprints_list, powers_list
    ) -> np.ndarray:
        """Temperature fields for M configurations, shape ``(M, L, R, C)``.

        Homogeneous chiplet layer (default): the conductance matrix is
        placement-independent, so all M right-hand sides are
        back-substituted through a **single** factorization — bitwise
        identical to M sequential :meth:`solve_footprints` calls
        (each column runs the same single-vector SuperLU kernel;
        regression-tested).  With ``reuse_factorization`` the cached
        factorization is shared across calls as well; without it one
        fresh factorization per call preserves the HotSpot-like "build
        the model each time" cost at the granularity of the batch.

        Heterogeneous mode: the matrix depends on die coverage, so each
        configuration is assembled, factorized and solved on its own
        (no amortization is possible).
        """
        footprints_list = list(footprints_list)
        powers_list = list(powers_list)
        if len(footprints_list) != len(powers_list):
            raise ValueError("footprints_list and powers_list lengths differ")
        rows, cols = self.grid.shape
        if not footprints_list:
            return np.empty((0, self._n_layers, rows, cols))
        if self.config.heterogeneous_chiplet_layer:
            return np.stack(
                [
                    self.solve_footprints(footprints, powers)
                    for footprints, powers in zip(footprints_list, powers_list)
                ]
            )
        columns = [
            self._assemble_rhs(footprints, powers)
            for footprints, powers in zip(footprints_list, powers_list)
        ]
        factor = self._factor_for({})
        # Column-by-column back-substitution, NOT factor.solve(block):
        # SuperLU switches to blocked (level-3 BLAS) triangular kernels
        # for multi-column right-hand sides, and their accumulation
        # order can differ from the single-vector kernel by an ulp
        # (observed ~1e-13 on the multi_gpu system) — which would break
        # the bitwise contract with sequential solves that the
        # multi-chain SA equivalence rests on.  The factorization is
        # the dominant cost, so the amortization is unaffected.
        solution = np.stack([factor.solve(column) for column in columns])
        self.solve_count += len(columns)
        return solution.reshape(
            len(footprints_list), self._n_layers, rows, cols
        )

    # ------------------------------------------------------------------
    # factorization
    # ------------------------------------------------------------------

    def _factorize(self, footprints: dict):
        """LU-factorize the conductance matrix for the given placement.

        Every solve path — fresh per-call, cached homogeneous, and
        multi-RHS block — funnels through this one ``splu`` call.
        (``spsolve``, ``spla.factorized`` and ``splu`` all drive the
        same SuperLU factorization, so unifying the legacy fresh/reuse
        split on ``splu`` is bitwise-neutral; regression-tested against
        both legacy behaviors and the pre-refactor golden SA run.)
        """
        matrix = self._assemble_matrix(
            self._chiplet_layer_conductivity(footprints)
        )
        self.factorization_count += 1
        return spla.splu(matrix.tocsc())

    def _factor_for(self, footprints: dict):
        """The factorization to solve with, honoring the caching policy."""
        if self.config.heterogeneous_chiplet_layer:
            return self._factorize(footprints)
        if not self.reuse_factorization:
            return self._factorize({})
        if self._factor is None:
            self._factor = self._factorize({})
        return self._factor

    # ------------------------------------------------------------------
    # matrix assembly
    # ------------------------------------------------------------------

    def _conductivity_maps(self, k_chip: np.ndarray) -> np.ndarray:
        """Per-cell conductivity in W/(mm K), shape (L, R, C)."""
        rows, cols = self.grid.shape
        k = np.empty((self._n_layers, rows, cols), dtype=np.float64)
        for i, layer in enumerate(self.config.stack.layers):
            if layer.is_chiplet_layer:
                k[i] = k_chip
            else:
                k[i] = layer.material.conductivity_mm
            if layer.periphery_material is not None:
                k_peri = layer.periphery_material.conductivity_mm
                k[i] = self._core_cover * k[i] + (1.0 - self._core_cover) * k_peri
        return k

    def _chiplet_layer_conductivity(self, footprints: dict) -> np.ndarray:
        """Per-cell conductivity of the chiplet layer.

        Homogeneous mode (default, HotSpot-faithful): uniform die
        material everywhere.  Heterogeneous mode: blend silicon and
        underfill by die coverage per cell.
        """
        layer = self.config.stack.layers[self._chip_idx]
        k_die = layer.material.conductivity_mm
        if not self.config.heterogeneous_chiplet_layer:
            return np.full(self.grid.shape, k_die)
        cover = np.zeros(self.grid.shape, dtype=np.float64)
        for rect in footprints.values():
            cover = np.maximum(cover, self.chip_coverage(rect))
        k_fill = layer.fill_material.conductivity_mm
        return cover * k_die + (1.0 - cover) * k_fill

    def _assemble_static(self) -> dict:
        """Precompute everything that does not depend on the placement."""
        rows, cols = self.grid.shape
        n_per_layer = rows * cols
        dx, dy = self.grid.dx, self.grid.dy
        thickness = np.array(
            [layer.thickness for layer in self.config.stack.layers]
        )
        # Convective boundary at the sink top: per-cell conductance is the
        # area share of 1/r_convection, in series with the top half-cell.
        top = self._n_layers - 1
        k_top = self.config.stack.layers[top].material.conductivity_mm
        cell_area = dx * dy
        g_conv_share = (1.0 / self.config.r_convection) * (
            cell_area / (self.grid.width * self.grid.height)
        )
        g_half_top = k_top * cell_area / (thickness[top] / 2.0)
        g_ambient_top = 1.0 / (1.0 / g_conv_share + 1.0 / g_half_top)
        # Optional secondary path from the interposer bottom to the board.
        if self.config.r_board is not None:
            k_bot = self.config.stack.layers[0].material.conductivity_mm
            g_board_share = (1.0 / self.config.r_board) * (
                cell_area / (self.grid.width * self.grid.height)
            )
            g_half_bot = k_bot * cell_area / (thickness[0] / 2.0)
            g_ambient_bot = 1.0 / (1.0 / g_board_share + 1.0 / g_half_bot)
        else:
            g_ambient_bot = 0.0
        return {
            "thickness": thickness,
            "n_per_layer": n_per_layer,
            "g_ambient_top": g_ambient_top,
            "g_ambient_bot": g_ambient_bot,
        }

    def _assemble_matrix(self, k_chip: np.ndarray) -> sp.coo_matrix:
        """Build the symmetric conductance matrix for the given chip-layer k."""
        rows, cols = self.grid.shape
        n_per_layer = self._static["n_per_layer"]
        n_total = self._n_layers * n_per_layer
        dx, dy = self.grid.dx, self.grid.dy
        thickness = self._static["thickness"]
        k = self._conductivity_maps(k_chip)

        node = np.arange(n_total).reshape(self._n_layers, rows, cols)
        entries_i, entries_j, entries_g = [], [], []

        def couple(idx_a, idx_b, g):
            entries_i.append(idx_a.ravel())
            entries_j.append(idx_b.ravel())
            entries_g.append(g.ravel())

        # Lateral x: series half-cells, harmonic mean of conductivities.
        t3 = thickness[:, None, None]
        k_a, k_b = k[:, :, :-1], k[:, :, 1:]
        g_x = (2.0 * dy * t3 / dx) * (k_a * k_b) / (k_a + k_b)
        couple(node[:, :, :-1], node[:, :, 1:], g_x)
        # Lateral y.
        k_a, k_b = k[:, :-1, :], k[:, 1:, :]
        g_y = (2.0 * dx * t3 / dy) * (k_a * k_b) / (k_a + k_b)
        couple(node[:, :-1, :], node[:, 1:, :], g_y)
        # Vertical between consecutive layers.
        cell_area = dx * dy
        for layer in range(self._n_layers - 1):
            r_lo = thickness[layer] / (2.0 * k[layer])
            r_hi = thickness[layer + 1] / (2.0 * k[layer + 1])
            g_v = cell_area / (r_lo + r_hi)
            couple(node[layer], node[layer + 1], g_v)

        i_arr = np.concatenate(entries_i)
        j_arr = np.concatenate(entries_j)
        g_arr = np.concatenate(entries_g)

        # Ambient couplings only touch the diagonal.
        diag = np.zeros(n_total)
        np.add.at(diag, i_arr, g_arr)
        np.add.at(diag, j_arr, g_arr)
        diag_boundary = np.zeros(n_total)
        diag_boundary[node[-1].ravel()] += self._static["g_ambient_top"]
        if self._static["g_ambient_bot"]:
            diag_boundary[node[0].ravel()] += self._static["g_ambient_bot"]
        diag += diag_boundary

        all_i = np.concatenate([i_arr, j_arr, np.arange(n_total)])
        all_j = np.concatenate([j_arr, i_arr, np.arange(n_total)])
        all_g = np.concatenate([-g_arr, -g_arr, diag])
        return sp.coo_matrix((all_g, (all_i, all_j)), shape=(n_total, n_total))

    def _assemble_rhs(self, footprints: dict, powers: dict) -> np.ndarray:
        """Power injection plus ambient boundary sources."""
        rows, cols = self.grid.shape
        n_per_layer = self._static["n_per_layer"]
        n_total = self._n_layers * n_per_layer
        rhs = np.zeros(n_total)
        # Chiplet power, area-weighted over covered cells.
        power_map = np.zeros(self.grid.shape)
        for name, rect in footprints.items():
            power = powers.get(name, 0.0)
            if power <= 0.0:
                continue
            cover = self.chip_coverage(rect)
            covered_area = cover.sum() * self.grid.cell_area
            if covered_area <= 0.0:
                continue
            power_map += cover * (power / covered_area) * self.grid.cell_area
        chip_base = self._chip_idx * n_per_layer
        rhs[chip_base : chip_base + n_per_layer] = power_map.ravel()
        # Ambient sources.
        ambient = self.config.ambient
        top_base = (self._n_layers - 1) * n_per_layer
        rhs[top_base : top_base + n_per_layer] += (
            self._static["g_ambient_top"] * ambient
        )
        if self._static["g_ambient_bot"]:
            rhs[0:n_per_layer] += self._static["g_ambient_bot"] * ambient
        return rhs

    # ------------------------------------------------------------------
    # extraction helpers
    # ------------------------------------------------------------------

    def _die_max_temperature(self, chip_layer: np.ndarray, rect: Rect) -> float:
        """Hottest cell of a die, weighted to cells mostly under the die."""
        cover = self.chip_coverage(rect)
        mask = cover >= 0.5
        if not mask.any():
            mask = cover > 0.0
        if not mask.any():
            return float(self.config.ambient)
        return float(chip_layer[mask].max())

    def power_map(self, placement: Placement) -> np.ndarray:
        """Rasterized power map in W per cell (chiplet layer, package frame)."""
        power_map = np.zeros(self.grid.shape)
        for name, rect in placement.footprints().items():
            power = placement.system.chiplet(name).power
            cover = self.chip_coverage(rect)
            covered_area = cover.sum() * self.grid.cell_area
            if covered_area > 0.0 and power > 0.0:
                power_map += cover * (power / covered_area) * self.grid.cell_area
        return power_map

    @classmethod
    def for_system(
        cls, system: ChipletSystem, config: ThermalConfig | None = None
    ) -> "GridThermalSolver":
        """Convenience constructor from a system (uses its interposer)."""
        return cls(system.interposer, config)
