"""Fault model + fault-tolerant scheduler: classification, backoff,
sweep reports, retries, stragglers, and ``keep_going`` quarantine.

Covers the PR-7 tentpole guarantees on the scheduler side:

* transient vs deterministic error classification (``RetryPolicy``);
* seeded, deterministic backoff jitter (reruns pause identically);
* retry of transiently failing jobs on fresh workers — including a
  worker SIGKILL'd mid-job — with the final result identical to an
  undisturbed run;
* deterministic failures never retry (attempt counters prove it);
* ``job_timeout`` straggler kill + retry;
* ``keep_going``: permanent failures are quarantined, only their
  dependency-downstream jobs are skipped, independent jobs complete,
  and the ``SweepReport`` carries the triage.
"""

import os
import signal
import time
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.parallel import (
    JobFailedError,
    JobOutcome,
    JobSpec,
    JobTimeoutError,
    RetryPolicy,
    SweepReport,
    WorkerCrashError,
    WorkerInitError,
    run_jobs,
)

# Sweep-internal accounting: deliberately not re-exported from the
# package — tests reach into the module that owns it.
from repro.parallel.faults import RetryBudget

# ----------------------------------------------------------------------
# top-level job functions (picklable for worker processes)
# ----------------------------------------------------------------------


def _square(x):
    return x * x


def _boom():
    raise ValueError("deterministic boom")


def _flaky(path, fail_times, x):
    """Raise a transient OSError the first ``fail_times`` calls."""
    attempt = _bump(path)
    if attempt <= fail_times:
        raise OSError(f"transient hiccup #{attempt}")
    return x * x


def _crash_once(path, x):
    """SIGKILL our own process on the first call; succeed after."""
    if _bump(path) == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    return x * x


def _counted_boom(path):
    _bump(path)
    raise ValueError("deterministic boom")


def _sleep_once_then_square(path, x, sleep_s):
    """Hang past any timeout on the first call; fast on the retry."""
    if _bump(path) == 1:
        time.sleep(sleep_s)
    return x * x


def _bump(path) -> int:
    """File-based attempt counter, atomic enough for one job's retries."""
    count = int(path.read_text()) + 1 if path.exists() else 1
    path.write_text(str(count))
    return count


def _fast_policy(**overrides) -> RetryPolicy:
    defaults = dict(max_attempts=3, backoff_base=0.0, jitter=0.0)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


# ----------------------------------------------------------------------
# classification + backoff
# ----------------------------------------------------------------------


class TestClassification:
    @pytest.mark.parametrize(
        "error",
        [
            OSError("io"),
            TimeoutError("slow"),  # OSError subclass on 3.10+
            ConnectionResetError("gone"),
            EOFError(),
            BrokenProcessPool("pool died"),
            WorkerCrashError("sigkill"),
            JobTimeoutError("straggler"),
        ],
    )
    def test_transient(self, error):
        assert RetryPolicy.is_transient(error)

    @pytest.mark.parametrize(
        "error",
        [
            ValueError("bad input"),
            KeyError("missing"),
            RuntimeError("bug"),
            ZeroDivisionError(),
            # Deterministic by design: every fresh worker would fail
            # construction identically.
            WorkerInitError("init raised"),
        ],
    )
    def test_deterministic(self, error):
        assert not RetryPolicy.is_transient(error)


class TestRetryPolicy:
    def test_backoff_is_deterministic(self):
        a = RetryPolicy(seed=7).backoff("table1/arm", 2)
        b = RetryPolicy(seed=7).backoff("table1/arm", 2)
        assert a == b

    def test_backoff_varies_with_seed_job_and_attempt(self):
        base = RetryPolicy(seed=0).backoff("job", 1)
        assert RetryPolicy(seed=1).backoff("job", 1) != base
        assert RetryPolicy(seed=0).backoff("job2", 1) != base
        assert RetryPolicy(seed=0).backoff("job", 2) != base

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            backoff_base=1.0, backoff_factor=2.0, backoff_max=3.0, jitter=0.0
        )
        assert policy.backoff("j", 1) == 1.0
        assert policy.backoff("j", 2) == 2.0
        assert policy.backoff("j", 3) == 3.0  # capped, not 4.0
        assert policy.backoff("j", 9) == 3.0

    def test_jitter_bounds(self):
        policy = RetryPolicy(backoff_base=1.0, jitter=0.5)
        for attempt in range(1, 6):
            delay = policy.backoff("j", attempt)
            base = min(
                policy.backoff_base * policy.backoff_factor ** (attempt - 1),
                policy.backoff_max,
            )
            assert base <= delay <= base * 1.5

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().backoff("j", 0)

    def test_no_retry(self):
        assert RetryPolicy.no_retry().max_attempts == 1


# ----------------------------------------------------------------------
# sweep report
# ----------------------------------------------------------------------


class TestSweepReport:
    def test_triage_buckets(self):
        report = SweepReport()
        report.record(JobOutcome("a", "succeeded"))
        report.record(JobOutcome("b", "retried", attempts=2))
        report.record(JobOutcome("c", "cached"))
        report.record(
            JobOutcome.failure("d", "quarantined", 3, OSError("io"))
        )
        report.record(JobOutcome("e", "skipped", attempts=0, blocked_by="d"))
        assert report.succeeded == ["a", "b", "c"]
        assert report.retried == ["b"]
        assert report.quarantined == ["d"]
        assert report.skipped == ["e"]
        assert not report.ok

    def test_ok_when_everything_succeeded(self):
        report = SweepReport()
        report.record(JobOutcome("a", "succeeded"))
        report.record(JobOutcome("b", "retried", attempts=2))
        assert report.ok

    def test_merge_and_to_dict(self):
        left, right = SweepReport(), SweepReport()
        left.record(JobOutcome("a", "succeeded"))
        right.record(JobOutcome.failure("b", "quarantined", 1, ValueError("x")))
        left.merge(right)
        document = left.to_dict()
        assert document["ok"] is False
        assert document["jobs"]["b"]["error_type"] == "ValueError"
        assert document["jobs"]["a"]["status"] == "succeeded"

    def test_summary_names_failures(self):
        report = SweepReport()
        report.record(
            JobOutcome.failure("bad/arm", "quarantined", 2, OSError("io"))
        )
        report.record(
            JobOutcome("down/arm", "skipped", attempts=0, blocked_by="bad/arm")
        )
        text = report.summary()
        assert "bad/arm" in text
        assert "down/arm" in text
        assert "depends on bad/arm" in text


# ----------------------------------------------------------------------
# scheduler retries (sequential and supervised)
# ----------------------------------------------------------------------


class TestTransientRetry:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_transient_failure_retries_to_success(self, tmp_path, jobs):
        report = SweepReport()
        outcome = run_jobs(
            [
                JobSpec(
                    "flaky",
                    _flaky,
                    dict(path=tmp_path / "n", fail_times=2, x=3),
                ),
                JobSpec("ok", _square, dict(x=2)),
            ],
            jobs=jobs,
            policy=_fast_policy(),
            report=report,
        )
        assert outcome == {"flaky": 9, "ok": 4}
        assert report.retried == ["flaky"]
        assert report.outcomes["flaky"].attempts == 3
        assert report.ok

    def test_sigkilled_worker_is_retried_on_a_fresh_process(self, tmp_path):
        # The chaos-adjacent core guarantee: a worker dying without a
        # result (machine death, OOM kill) is attributed to exactly one
        # job and retried — and the final mapping is what an
        # undisturbed run produces.
        report = SweepReport()
        outcome = run_jobs(
            [
                JobSpec("victim", _crash_once, dict(path=tmp_path / "n", x=5)),
                JobSpec("bystander", _square, dict(x=3)),
            ],
            jobs=2,
            policy=_fast_policy(),
            report=report,
        )
        assert outcome == {"victim": 25, "bystander": 9}
        assert report.retried == ["victim"]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_retry_budget_exhaustion_fails(self, tmp_path, jobs):
        specs = [
            JobSpec(
                "flaky",
                _flaky,
                dict(path=tmp_path / "n", fail_times=99, x=3),
            )
        ]
        expected = OSError if jobs == 1 else JobFailedError
        with pytest.raises(expected):
            run_jobs(specs, jobs=jobs, policy=_fast_policy(max_attempts=2))
        assert int((tmp_path / "n").read_text()) == 2  # both attempts ran

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_deterministic_failure_never_retries(self, tmp_path, jobs):
        specs = [JobSpec("bad", _counted_boom, dict(path=tmp_path / "n"))]
        expected = ValueError if jobs == 1 else JobFailedError
        with pytest.raises(expected):
            run_jobs(specs, jobs=jobs, policy=_fast_policy())
        assert int((tmp_path / "n").read_text()) == 1


class TestJobTimeout:
    def test_straggler_is_killed_and_retried(self, tmp_path):
        report = SweepReport()
        start = time.monotonic()
        outcome = run_jobs(
            [
                JobSpec(
                    "straggler",
                    _sleep_once_then_square,
                    dict(path=tmp_path / "n", x=4, sleep_s=60.0),
                )
            ],
            jobs=2,
            policy=_fast_policy(),
            job_timeout=1.0,
            report=report,
        )
        elapsed = time.monotonic() - start
        assert outcome == {"straggler": 16}
        assert report.retried == ["straggler"]
        assert elapsed < 30.0, "straggler was not preempted"

    def test_timeout_exhaustion_quarantines_under_keep_going(self, tmp_path):
        report = SweepReport()
        outcome = run_jobs(
            [
                JobSpec(
                    "hung",
                    _sleep_once_then_square,
                    dict(path=tmp_path / "n", x=4, sleep_s=60.0),
                ),
                JobSpec("ok", _square, dict(x=2)),
            ],
            jobs=2,
            policy=_fast_policy(max_attempts=1),
            job_timeout=1.0,
            keep_going=True,
            report=report,
        )
        assert outcome == {"ok": 4}
        assert report.quarantined == ["hung"]
        assert report.outcomes["hung"].error_type == "JobTimeoutError"


class TestKeepGoing:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_quarantine_skips_only_downstream(self, tmp_path, jobs):
        report = SweepReport()
        specs = [
            JobSpec("bad", _counted_boom, dict(path=tmp_path / "n")),
            JobSpec("child", _square, dict(x=3), needs=("bad",)),
            JobSpec("grandchild", _square, dict(x=4), needs=("child",)),
            JobSpec("independent", _square, dict(x=5)),
        ]
        outcome = run_jobs(
            specs,
            jobs=jobs,
            policy=_fast_policy(),
            keep_going=True,
            report=report,
        )
        assert outcome == {"independent": 25}
        assert report.quarantined == ["bad"]
        assert sorted(report.skipped) == ["child", "grandchild"]
        assert report.outcomes["child"].blocked_by == "bad"
        assert report.outcomes["grandchild"].blocked_by == "child"
        assert not report.ok

    def test_default_fail_fast_contract_is_unchanged(self):
        # Without keep_going the historical contract holds: jobs=1
        # re-raises the original exception; pooled raises JobFailedError.
        with pytest.raises(JobFailedError, match="bad"):
            run_jobs(
                [
                    JobSpec("ok", _square, dict(x=2)),
                    JobSpec("bad", _boom),
                ],
                jobs=2,
                policy=RetryPolicy.no_retry(),
            )


# ----------------------------------------------------------------------
# sweep-wide retry budget
# ----------------------------------------------------------------------


class TestRetryBudget:
    def test_count_cap_charges_then_denies(self):
        budget = RetryBudget(_fast_policy(sweep_retry_budget=2))
        assert budget.allow("a")
        assert budget.allow("b")
        assert not budget.allow("c")
        assert budget.granted == 2
        assert budget.denied == 1
        assert budget.exhausted

    def test_window_denies_after_elapsed(self):
        clock = iter([0.0, 1.0, 5.0]).__next__  # start, 1st allow, 2nd
        budget = RetryBudget(
            _fast_policy(sweep_retry_window_s=2.0), clock=clock
        )
        assert budget.allow("a")  # 1.0s in: within the window
        assert not budget.allow("b")  # 5.0s in: window closed
        assert budget.granted == 1
        assert budget.denied == 1

    def test_no_caps_always_allows(self):
        budget = RetryBudget(_fast_policy())
        assert all(budget.allow(f"job-{n}") for n in range(50))
        assert not budget.exhausted
        snapshot = budget.describe()
        assert snapshot["cap"] is None
        assert snapshot["window_s"] is None
        assert snapshot["granted"] == 50

    @pytest.mark.parametrize("cap", [-1, -5])
    def test_negative_cap_rejected(self, cap):
        with pytest.raises(ValueError, match="sweep_retry_budget"):
            RetryPolicy(sweep_retry_budget=cap)

    @pytest.mark.parametrize("window", [0.0, -1.0])
    def test_nonpositive_window_rejected(self, window):
        with pytest.raises(ValueError, match="sweep_retry_window_s"):
            RetryPolicy(sweep_retry_window_s=window)

    def test_exhausted_budget_makes_transient_failure_permanent(
        self, tmp_path
    ):
        # fail_times=99 would retry forever under per-job rules alone;
        # a sweep budget of 1 caps the whole run at 1 initial + 1 retry.
        report = SweepReport()
        with pytest.raises(OSError, match="hiccup"):
            run_jobs(
                [
                    JobSpec(
                        "flaky",
                        _flaky,
                        dict(path=tmp_path / "n", fail_times=99, x=3),
                    )
                ],
                jobs=1,
                policy=_fast_policy(max_attempts=9, sweep_retry_budget=1),
                report=report,
            )
        assert int((tmp_path / "n").read_text()) == 2
        assert report.retry_budget["granted"] == 1
        assert report.retry_budget["denied"] >= 1
        assert "DENIED" in report.summary()
        assert report.to_dict()["retry_budget"]["cap"] == 1

    def test_zero_budget_disables_retries_entirely(self, tmp_path):
        report = SweepReport()
        with pytest.raises(OSError, match="hiccup #1"):
            run_jobs(
                [
                    JobSpec(
                        "flaky",
                        _flaky,
                        dict(path=tmp_path / "n", fail_times=1, x=3),
                    )
                ],
                jobs=1,
                policy=_fast_policy(sweep_retry_budget=0),
                report=report,
            )
        assert int((tmp_path / "n").read_text()) == 1
        assert report.retry_budget["denied"] == 1

    def test_budget_is_shared_across_jobs(self, tmp_path):
        # Sequential (jobs=1) so ordering is deterministic: "a" spends
        # the sweep's one retry and recovers; "b" is denied and
        # quarantined despite its failure also being transient.
        report = SweepReport()
        outcome = run_jobs(
            [
                JobSpec(
                    "a", _flaky, dict(path=tmp_path / "a", fail_times=1, x=3)
                ),
                JobSpec(
                    "b", _flaky, dict(path=tmp_path / "b", fail_times=1, x=4)
                ),
            ],
            jobs=1,
            policy=_fast_policy(sweep_retry_budget=1),
            keep_going=True,
            report=report,
        )
        assert outcome == {"a": 9}
        assert report.retried == ["a"]
        assert report.quarantined == ["b"]
        assert report.retry_budget == {
            "granted": 1,
            "denied": 1,
            "cap": 1,
            "window_s": None,
            "elapsed_s": report.retry_budget["elapsed_s"],
        }
        assert "1 granted of 1" in report.summary()

    def test_pooled_run_reports_budget(self, tmp_path):
        report = SweepReport()
        with pytest.raises(JobFailedError):
            run_jobs(
                [
                    JobSpec(
                        "flaky",
                        _flaky,
                        dict(path=tmp_path / "n", fail_times=99, x=3),
                    )
                ],
                jobs=2,
                policy=_fast_policy(max_attempts=9, sweep_retry_budget=1),
                report=report,
            )
        assert report.retry_budget["granted"] == 1
        assert report.retry_budget["denied"] >= 1

    def test_uncapped_sweep_with_retries_still_reports(self, tmp_path):
        # No caps configured, but a retry was granted: the report still
        # carries the accounting so "how many retries happened" is
        # answerable for any sweep.
        report = SweepReport()
        outcome = run_jobs(
            [
                JobSpec(
                    "flaky",
                    _flaky,
                    dict(path=tmp_path / "n", fail_times=1, x=3),
                )
            ],
            jobs=1,
            policy=_fast_policy(),
            report=report,
        )
        assert outcome == {"flaky": 9}
        assert report.retry_budget["granted"] == 1
        assert report.retry_budget["denied"] == 0

    def test_merge_carries_budget_snapshot(self):
        first, second = SweepReport(), SweepReport()
        budget = RetryBudget(_fast_policy(sweep_retry_budget=3))
        budget.allow("a")
        second.attach_retry_budget(budget)
        first.merge(second)
        assert first.retry_budget["granted"] == 1
        assert first.retry_budget["cap"] == 3
