"""Multi-machine episode collection: lease-based coordinator + workers.

PR 6–8 made one training run span a machine's worth of processes; this
module takes the same epoch protocol across machines.  The *protocol*
is unchanged — per epoch the trainer broadcasts one serialized policy
payload (:func:`repro.nn.dumps_payload`) and fans wave-aligned episode
slices (:func:`repro.parallel.collector.partition_episodes`) out to
workers, merging results in index order — only the *transport* is new:
length-prefixed, checksummed TCP frames (:mod:`repro.parallel.
transport`) instead of a ``ProcessPoolExecutor``.

Three pieces:

* :class:`WorkerCoordinator` — owns the listening socket.  Each
  connecting worker is registered under a **time-bounded lease**: the
  worker heartbeats every ``heartbeat_s``; a lease whose last
  heartbeat is older than ``lease_s`` is **fenced** (its connection is
  shut down, its in-flight slice returns to the dispatch queue) —
  silent worker death and network partitions both look like a missed
  heartbeat, and both lose nothing because slices are pure functions
  of (broadcast weight bytes, ``episode.{index}`` seed streams).
  Result acceptance is **first-delivery-wins**, keyed by (epoch id,
  slice index, weight-bytes digest): a stale lease holder that limps
  back after fencing cannot double-deliver a slice or deliver into the
  wrong epoch.
* :func:`run_worker` — the remote worker loop (the
  ``scripts/collect_worker.py`` entrypoint).  Connects, registers,
  builds its env+network replica from the coordinator's init payload
  (a :class:`~repro.parallel.collector.ReplicaCollector` — the exact
  code every other collection engine runs), serves task frames, and
  **reconnects with seeded backoff** (reusing
  :class:`~repro.parallel.faults.RetryPolicy`) after any transient
  transport failure.
* :class:`RemoteEpisodeCollector` — the trainer-facing engine,
  interface-compatible with :class:`~repro.parallel.collector.
  EpisodeCollector` (collect / collect_with_weights / prefetch /
  collect_prefetched / cancel_prefetch / close).  Degradation mirrors
  PR 7's ladder: persistent loss of all remote workers falls back to a
  local worker pool (when ``local_jobs >= 2``), then to in-process
  collection — every rung runs the same pure slice functions on the
  same broadcast bytes, so **results are bitwise identical at any
  worker count, under any fault**, and a kill+resume of the training
  process stays bitwise even when it comes back with a different
  number of remote workers.
"""

from __future__ import annotations

import hashlib
import os
import socket
import threading
import time
import traceback
from collections import deque

from repro.nn import dumps_payload, loads_payload
from repro.parallel import chaos
from repro.parallel.collector import (
    POLICY_PAYLOAD_KIND,
    EpisodeCollector,
    ReplicaCollector,
    partition_episodes,
)
from repro.parallel.faults import RetryPolicy
from repro.parallel.transport import (
    ConnectionClosed,
    FrameIntegrityError,
    TransportError,
    recv_frame,
    send_frame,
)
from repro.utils import get_logger

__all__ = [
    "RemoteCollectionError",
    "RemoteEpisodeCollector",
    "RemoteSliceError",
    "RemoteStallError",
    "WorkerCoordinator",
    "run_worker",
]

_logger = get_logger("parallel.remote")

#: ``kind`` tags of the remote-collection payloads (same versioned
#: schema as checkpoints and the pool's policy broadcast).
WORKER_INIT_KIND = "collector-worker-init"
SLICE_RESULT_KIND = "collector-slice-result"


class RemoteCollectionError(RuntimeError):
    """Base class for remote-collection failures."""


class RemoteSliceError(RemoteCollectionError):
    """A slice failed *deterministically* on a worker (a real bug).

    Carries the remote traceback; never retried — the identical pure
    computation would fail identically on every worker and every rung
    of the degradation ladder.
    """


class RemoteStallError(RemoteCollectionError):
    """The remote epoch could not finish (no live workers / fault storm).

    Transient by construction; ``results`` holds the slices that *did*
    deliver, so the caller completes only the missing ones down the
    degradation ladder.
    """

    def __init__(self, message: str, results: dict):
        super().__init__(message)
        self.results = results


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()[:16]


# ----------------------------------------------------------------------
# coordinator
# ----------------------------------------------------------------------


class _Lease:
    """Coordinator-side record of one registered worker connection.

    All mutable fields are guarded by the coordinator's condition
    except ``send_lock``, which serializes frame writers on the socket
    (the epoch pump and the shutdown broadcast may race).
    """

    def __init__(self, lease_id: str, worker_id: str, sock, addr):
        self.id = lease_id
        self.worker_id = worker_id
        self.sock = sock
        self.addr = addr
        self.send_lock = threading.Lock()
        self.last_beat = time.monotonic()
        self.task: int | None = None  # slice index in flight, if any
        self.task_since: float | None = None  # when that slice was assigned
        self.ready = False  # lease frame sent; eligible for tasks
        self.fenced = False


class WorkerCoordinator:
    """Registers remote workers under leases and drives epoch fan-out.

    Parameters
    ----------
    init_payload:
        Serialized worker-init payload (:data:`WORKER_INIT_KIND`):
        the pickled system / reward calculator / env config plus the
        replica hyperparameters.  Sent once per lease; workers cache
        the built replica by the payload digest across re-leases.
    host, port:
        Bind address.  ``port=0`` binds an ephemeral port; read the
        real one from :attr:`address`.
    lease_s:
        A lease whose last heartbeat is older than this is fenced and
        its in-flight slice re-queued.
    heartbeat_s:
        Interval workers are told to heartbeat at (default
        ``lease_s / 4``).
    """

    def __init__(
        self,
        init_payload: bytes,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_s: float = 15.0,
        heartbeat_s: float | None = None,
    ):
        if lease_s <= 0:
            raise ValueError("lease_s must be > 0")
        self._init_payload = init_payload
        self._init_digest = _digest(init_payload)
        self.lease_s = float(lease_s)
        self.heartbeat_s = (
            float(heartbeat_s) if heartbeat_s is not None else lease_s / 4.0
        )
        self._cond = threading.Condition()
        self._leases: dict[str, _Lease] = {}
        self._lease_counter = 0
        self._epoch: dict | None = None
        self._epoch_counter = 0
        self._closed = False
        self.stats = {
            "registered": 0,
            "fenced": 0,
            "requeued": 0,
            "duplicate_results": 0,
            "stale_results": 0,
            "transient_task_errors": 0,
        }
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self._listener.settimeout(0.25)
        self.address = self._listener.getsockname()[:2]
        self._threads: list = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"coordinator-accept:{self.address[1]}",
            daemon=True,
        )
        self._accept_thread.start()
        _logger.info(
            "coordinator listening on %s:%d (lease %.1fs, heartbeat %.1fs)",
            *self.address,
            self.lease_s,
            self.heartbeat_s,
        )

    # -- connection handling -------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            with self._cond:
                if self._closed:
                    return
            try:
                conn, addr = self._listener.accept()
            except (TimeoutError, socket.timeout):
                continue
            except OSError:
                return  # listener closed under us
            action = chaos.maybe_fail("transport.accept", f"{addr[0]}")
            if action in ("drop", "disconnect"):
                _logger.warning("chaos rejected a connection from %s", addr)
                conn.close()
                continue
            thread = threading.Thread(
                target=self._handle,
                args=(conn, addr),
                name=f"coordinator-conn:{addr[1]}",
                daemon=True,
            )
            with self._cond:
                if self._closed:
                    conn.close()
                    return
                self._threads.append(thread)
            thread.start()

    def _handle(self, conn, addr) -> None:
        """Per-connection handler: handshake, then serve worker frames."""
        lease = None
        reason = "connection closed"
        try:
            conn.settimeout(10.0)
            kind, meta, _ = recv_frame(conn, detail="coordinator")
            if kind != "hello":
                raise FrameIntegrityError(
                    f"expected a hello frame, got {kind!r}"
                )
            lease = self._register(conn, addr, meta)
            send_frame(
                conn,
                "lease",
                {
                    "lease": lease.id,
                    "heartbeat_s": self.heartbeat_s,
                    "lease_s": self.lease_s,
                    "init_digest": self._init_digest,
                },
                self._init_payload,
                lock=lease.send_lock,
                detail="coordinator",
            )
            with self._cond:
                lease.ready = True
                self._cond.notify_all()
            self._pump()  # a fresh worker may take queued work at once
            conn.settimeout(max(self.heartbeat_s, 0.2))
            while True:
                with self._cond:
                    if self._closed or lease.fenced:
                        reason = "fenced" if lease.fenced else "shutdown"
                        return
                frame = recv_frame(conn, idle_ok=True, detail="coordinator")
                if frame is None:
                    continue
                kind, meta, blob = frame
                if kind == "heartbeat":
                    with self._cond:
                        lease.last_beat = time.monotonic()
                elif kind == "result":
                    self._deliver(lease, meta, blob)
                elif kind == "task-error":
                    self._task_error(lease, meta)
                elif kind == "goodbye":
                    reason = "worker said goodbye"
                    return
                else:
                    raise FrameIntegrityError(
                        f"unexpected frame kind {kind!r} from a worker"
                    )
        except (TransportError, OSError, EOFError) as error:
            reason = repr(error)
        finally:
            self._drop(lease, reason)
            try:
                conn.close()
            except OSError:
                pass

    def _register(self, conn, addr, meta: dict) -> _Lease:
        with self._cond:
            if self._closed:
                raise ConnectionClosed("coordinator is shutting down")
            self._lease_counter += 1
            lease = _Lease(
                f"lease-{self._lease_counter}",
                str(meta.get("worker", f"{addr[0]}:{addr[1]}")),
                conn,
                addr,
            )
            self._leases[lease.id] = lease
            self.stats["registered"] += 1
            _logger.info(
                "registered %s as %s from %s:%d",
                lease.worker_id,
                lease.id,
                *addr[:2],
            )
            return lease

    def _fence_locked(self, lease: _Lease, reason: str) -> None:
        """Fence a lease: dead to dispatch, its slice re-queued.

        Caller holds the condition.  Shutting the socket down (not just
        closing it) wakes the handler thread out of a blocking recv, so
        the fence takes effect within one poll interval.
        """
        if lease.fenced:
            return
        lease.fenced = True
        self.stats["fenced"] += 1
        _logger.warning("fencing %s (%s): %s", lease.id, lease.worker_id, reason)
        self._requeue_locked(lease)
        try:
            lease.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._cond.notify_all()

    def _requeue_locked(self, lease: _Lease) -> None:
        """Return a fenced/dead lease's undelivered slice to the queue."""
        index, lease.task = lease.task, None
        lease.task_since = None
        epoch = self._epoch
        if index is None or epoch is None:
            return
        if epoch["outstanding"].get(index) != lease.id:
            return  # already re-issued to (or delivered by) someone else
        del epoch["outstanding"][index]
        if index not in epoch["results"]:
            epoch["queue"].append(index)
            self.stats["requeued"] += 1
            _logger.warning(
                "slice %d returned to the dispatch queue (lease %s lost); "
                "re-dispatch is bitwise — slices are pure in the broadcast "
                "bytes and their seed streams",
                index,
                lease.id,
            )

    def _drop(self, lease: _Lease | None, reason: str) -> None:
        if lease is None:
            return
        with self._cond:
            self._leases.pop(lease.id, None)
            if not lease.fenced:
                lease.fenced = True
                self.stats["fenced"] += 1
            self._requeue_locked(lease)
            self._cond.notify_all()
        _logger.info("dropped %s (%s): %s", lease.id, lease.worker_id, reason)

    # -- epoch lifecycle -----------------------------------------------

    def begin_epoch(
        self,
        weights: bytes,
        slices: list,
        greedy: bool = False,
        chaos_point: str = "collector.slice",
    ) -> int:
        """Queue ``[(index, (start, size)), ...]`` for dispatch.

        Returns the epoch id.  Dispatch starts immediately (idle leased
        workers get a task before this returns), so a prefetched epoch
        genuinely overlaps the caller's PPO update.
        """
        with self._cond:
            if self._epoch is not None:
                # Defensive: an aborted/failed predecessor should have
                # cleared itself; a stale epoch must never leak results
                # into a new one (the digest/id keys would reject them,
                # but the queue state would wedge dispatch).
                _logger.warning(
                    "begin_epoch with epoch %d still active; discarding it",
                    self._epoch["id"],
                )
                self._clear_epoch_locked()
            self._epoch_counter += 1
            self._epoch = {
                "id": self._epoch_counter,
                "digest": _digest(weights),
                "weights": weights,
                "greedy": bool(greedy),
                "chaos_point": chaos_point,
                "slices": {index: bounds for index, bounds in slices},
                "queue": deque(index for index, _ in slices),
                "outstanding": {},
                "results": {},
                "errors": [],
                "transient_failures": 0,
            }
            epoch_id = self._epoch_counter
        self._pump()
        return epoch_id

    def _clear_epoch_locked(self) -> None:
        self._epoch = None
        for lease in self._leases.values():
            lease.task = None
            lease.task_since = None

    def abort_epoch(self, epoch_id: int) -> dict:
        """Drop an epoch (cancelled prefetch); returns delivered results.

        Workers mid-slice finish and deliver into the void — the epoch
        id no longer matches, so their results are counted stale and
        discarded.  Nothing is consumed, so determinism is unaffected.
        """
        with self._cond:
            epoch = self._epoch
            if epoch is None or epoch["id"] != epoch_id:
                return {}
            results = epoch["results"]
            self._clear_epoch_locked()
            return results

    def _assignable_locked(self):
        epoch = self._epoch
        if epoch is None or not epoch["queue"]:
            return None
        for lease in self._leases.values():
            if lease.ready and not lease.fenced and lease.task is None:
                index = epoch["queue"].popleft()
                lease.task = index
                lease.task_since = time.monotonic()
                epoch["outstanding"][index] = lease.id
                start, size = epoch["slices"][index]
                meta = {
                    "task": index,
                    "epoch": epoch["id"],
                    "digest": epoch["digest"],
                    "start": start,
                    "count": size,
                    "greedy": epoch["greedy"],
                    "chaos_point": epoch["chaos_point"],
                    "lease": lease.id,
                }
                return lease, meta, epoch["weights"]
        return None

    def _pump(self) -> None:
        """Assign queued slices to idle leased workers and send them.

        Claims happen under the condition; the (potentially large)
        weight-broadcast send happens outside it so a slow wire never
        blocks heartbeat processing into spurious lease expiries.
        """
        while True:
            with self._cond:
                assignment = self._assignable_locked()
            if assignment is None:
                return
            lease, meta, weights = assignment
            try:
                send_frame(
                    lease.sock,
                    "task",
                    meta,
                    weights,
                    lock=lease.send_lock,
                    detail="coordinator",
                )
            except (TransportError, OSError) as error:
                with self._cond:
                    self._fence_locked(lease, f"task send failed: {error!r}")

    def _deliver(self, lease: _Lease, meta: dict, blob: bytes) -> None:
        """Accept (or reject) one result frame; first-delivery-wins.

        Decoding happens outside the lock (it is the expensive part and
        handler threads may decode concurrently); acceptance is keyed
        on (epoch id, slice index, weight digest) under the lock, so a
        stale or duplicate delivery is dropped, never merged twice.
        """
        try:
            pairs = loads_payload(blob, kind=SLICE_RESULT_KIND)["pairs"]
        except Exception as error:  # noqa: BLE001 - classify below
            self._task_error(
                lease,
                {
                    "task": meta.get("task"),
                    "epoch": meta.get("epoch"),
                    "digest": meta.get("digest"),
                    "transient": RetryPolicy.is_transient(error),
                    "message": f"undecodable result payload: {error!r}",
                    "trace": traceback.format_exc(),
                },
            )
            return
        with self._cond:
            lease.last_beat = time.monotonic()
            if lease.task == meta.get("task"):
                lease.task = None
                lease.task_since = None
            epoch = self._epoch
            if (
                epoch is None
                or meta.get("epoch") != epoch["id"]
                or meta.get("digest") != epoch["digest"]
            ):
                self.stats["stale_results"] += 1
                _logger.info(
                    "dropping stale result from %s (epoch %s vs %s)",
                    lease.id,
                    meta.get("epoch"),
                    None if epoch is None else epoch["id"],
                )
                return
            index = meta.get("task")
            if index not in epoch["slices"]:
                self.stats["stale_results"] += 1
                return
            if index in epoch["results"]:
                self.stats["duplicate_results"] += 1
                _logger.warning(
                    "dropping duplicate delivery of slice %s from %s "
                    "(first-delivery-wins)",
                    index,
                    lease.id,
                )
                return
            epoch["results"][index] = pairs
            if epoch["outstanding"].get(index) == lease.id:
                del epoch["outstanding"][index]
            self._cond.notify_all()
        self._pump()  # this worker is idle again; hand it the next slice

    def _task_error(self, lease: _Lease, meta: dict) -> None:
        with self._cond:
            lease.last_beat = time.monotonic()
            if lease.task == meta.get("task"):
                lease.task = None
                lease.task_since = None
            epoch = self._epoch
            if (
                epoch is None
                or meta.get("epoch") != epoch["id"]
                or meta.get("digest") != epoch["digest"]
            ):
                self.stats["stale_results"] += 1
                return
            index = meta.get("task")
            if meta.get("transient", False):
                self.stats["transient_task_errors"] += 1
                epoch["transient_failures"] += 1
                if epoch["outstanding"].get(index) == lease.id:
                    del epoch["outstanding"][index]
                if (
                    index in epoch["slices"]
                    and index not in epoch["results"]
                    and index not in epoch["queue"]
                ):
                    epoch["queue"].append(index)
                    self.stats["requeued"] += 1
                _logger.warning(
                    "slice %s failed transiently on %s (%s); re-queued",
                    index,
                    lease.id,
                    meta.get("message"),
                )
            else:
                epoch["errors"].append(
                    f"slice {index} failed deterministically on "
                    f"{lease.worker_id}: {meta.get('message')}\n"
                    f"{meta.get('trace', '')}"
                )
            self._cond.notify_all()
        self._pump()

    def live_workers(self) -> int:
        """Leases currently eligible for dispatch."""
        with self._cond:
            return sum(
                1
                for lease in self._leases.values()
                if lease.ready and not lease.fenced
            )

    def drive_epoch(
        self,
        epoch_id: int,
        *,
        worker_wait_s: float = 30.0,
        task_timeout_s: float | None = None,
    ) -> dict:
        """Block until the epoch completes; returns ``{index: pairs}``.

        The fault loop: expired leases are fenced and their slices
        re-queued; ``task_timeout_s`` (optional) additionally fences a
        live-but-stuck worker whose slice made no progress.  Raises
        :class:`RemoteSliceError` on a deterministic slice failure and
        :class:`RemoteStallError` — carrying the partial results — when
        no worker has been available for ``worker_wait_s`` or transient
        task failures storm past ``4 * n_slices``.
        """
        starved_since = None
        while True:
            self._pump()
            with self._cond:
                epoch = self._epoch
                if epoch is None or epoch["id"] != epoch_id:
                    raise RemoteStallError(
                        f"epoch {epoch_id} is no longer active", {}
                    )
                if epoch["errors"]:
                    message = "\n".join(epoch["errors"])
                    self._clear_epoch_locked()
                    raise RemoteSliceError(message)
                if len(epoch["results"]) == len(epoch["slices"]):
                    results = epoch["results"]
                    self._clear_epoch_locked()
                    return results
                storm = max(8, 4 * len(epoch["slices"]))
                if epoch["transient_failures"] > storm:
                    results = epoch["results"]
                    self._clear_epoch_locked()
                    raise RemoteStallError(
                        f"{storm}+ transient task failures this epoch — "
                        "giving up on remote collection for this round",
                        results,
                    )
                now = time.monotonic()
                for lease in list(self._leases.values()):
                    if lease.fenced:
                        continue
                    if now - lease.last_beat > self.lease_s:
                        self._fence_locked(
                            lease,
                            f"lease expired ({now - lease.last_beat:.1f}s "
                            f"since last heartbeat > {self.lease_s:.1f}s)",
                        )
                    elif (
                        task_timeout_s is not None
                        and lease.task is not None
                        and lease.task_since is not None
                        # Deliberately NOT last_beat: a wedged worker
                        # still heartbeats; progress on the *slice* is
                        # what this clock measures.
                        and now - lease.task_since > task_timeout_s
                    ):
                        self._fence_locked(
                            lease,
                            f"slice {lease.task} stuck for "
                            f"{task_timeout_s:.1f}s",
                        )
                live = sum(
                    1
                    for lease in self._leases.values()
                    if lease.ready and not lease.fenced
                )
                if live:
                    starved_since = None
                else:
                    if starved_since is None:
                        starved_since = now
                    elif now - starved_since > worker_wait_s:
                        results = epoch["results"]
                        self._clear_epoch_locked()
                        raise RemoteStallError(
                            f"no remote worker available for "
                            f"{worker_wait_s:.1f}s with "
                            f"{len(epoch['slices']) - len(results)} "
                            "slice(s) undelivered",
                            results,
                        )
                self._cond.wait(0.1)

    def close(self) -> None:
        """Shut down: drain workers cleanly, then stop accepting.

        Every leased worker is sent a ``shutdown`` frame (a clean drain
        — :func:`run_worker` exits 0 on it, or reconnects later in
        persist mode) before its connection closes.  Idempotent.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            leases = list(self._leases.values())
            self._clear_epoch_locked()
            self._cond.notify_all()
        for lease in leases:
            try:
                send_frame(
                    lease.sock,
                    "shutdown",
                    {"lease": lease.id},
                    lock=lease.send_lock,
                    detail="coordinator",
                )
            except (TransportError, OSError):
                pass
            try:
                lease.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        try:
            self._listener.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=5.0)
        for thread in list(self._threads):
            thread.join(timeout=5.0)
        _logger.info("coordinator on port %d closed", self.address[1])

    def __enter__(self) -> "WorkerCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# worker
# ----------------------------------------------------------------------


def _serve_task(replica, sock, send_lock, meta, blob, detail, lease_id):
    """Run one task frame through the replica and send the outcome.

    A failure inside the slice (chaos, a transient hiccup, a real bug)
    is *reported*, not raised: the worker stays leased and keeps
    serving — the coordinator decides whether the slice re-queues
    (transient) or the epoch fails (deterministic).
    """
    index = meta["task"]
    try:
        chaos.maybe_fail(
            meta.get("chaos_point", "collector.slice"),
            f"slice@{meta['start']}",
        )
        pairs = replica.collect(
            blob, [(index, (meta["start"], meta["count"]))], meta["greedy"]
        )[index]
        result = dumps_payload({"pairs": pairs}, kind=SLICE_RESULT_KIND)
    except Exception as error:  # noqa: BLE001 - reported, classified
        send_frame(
            sock,
            "task-error",
            {
                "task": index,
                "epoch": meta["epoch"],
                "digest": meta["digest"],
                "lease": lease_id,
                "transient": RetryPolicy.is_transient(error),
                "message": repr(error),
                "trace": traceback.format_exc(),
            },
            lock=send_lock,
            detail=detail,
        )
        return
    send_frame(
        sock,
        "result",
        {
            "task": index,
            "epoch": meta["epoch"],
            "digest": meta["digest"],
            "lease": lease_id,
        },
        result,
        lock=send_lock,
        detail=detail,
    )


def _build_replica(cache: dict, init_digest: str, blob: bytes):
    """The worker's env+network replica, cached across re-leases."""
    if cache.get("digest") != init_digest or cache.get("replica") is None:
        spec = loads_payload(blob, kind=WORKER_INIT_KIND)
        cache["replica"] = ReplicaCollector(
            spec["system"],
            spec["reward_calculator"],
            spec["env_config"],
            spec["channels"],
            spec["batch_size"],
            spec["seed"],
        )
        cache["digest"] = init_digest
    return cache["replica"]


def run_worker(
    host: str,
    port: int,
    *,
    worker_id: str | None = None,
    policy: RetryPolicy | None = None,
    max_reconnects: int | None = None,
    persist: bool = False,
    stop_event: threading.Event | None = None,
    connect_timeout: float = 5.0,
) -> int:
    """Serve collection tasks from the coordinator at ``(host, port)``.

    The remote half of :class:`RemoteEpisodeCollector` — run it on any
    machine that can reach the coordinator (``scripts/collect_worker.py``
    is the CLI wrapper).  Returns 0 on a clean coordinator-initiated
    shutdown.

    Fault behavior: any transport failure (connection refused, reset,
    checksum mismatch, fenced lease) triggers a reconnect with seeded
    exponential backoff (``policy`` — default unlimited patience, so a
    worker outlives trainer restarts).  ``max_reconnects`` bounds
    *consecutive* failed attempts (a successful lease resets the
    count); past it the last transport error re-raises.  ``persist``
    makes even a clean shutdown reconnect (fleet mode: one long-lived
    worker process serving many successive training runs).
    ``stop_event`` is the programmatic kill switch (tests, the CLI's
    signal handler).
    """
    if worker_id is None:
        worker_id = f"{socket.gethostname()}-{os.getpid()}"
    policy = policy if policy is not None else RetryPolicy()
    detail = f"worker:{worker_id}"
    cache: dict = {}
    attempts = 0
    while True:
        if stop_event is not None and stop_event.is_set():
            return 0
        sock = None
        hb_stop = threading.Event()
        hb_thread = None
        try:
            sock = socket.create_connection(
                (host, port), timeout=connect_timeout
            )
            sock.settimeout(10.0)
            send_lock = threading.Lock()
            send_frame(
                sock,
                "hello",
                {"worker": worker_id, "pid": os.getpid()},
                lock=send_lock,
                detail=detail,
            )
            kind, meta, blob = recv_frame(sock, detail=detail)
            if kind != "lease":
                raise FrameIntegrityError(
                    f"expected a lease frame, got {kind!r}"
                )
            attempts = 0  # a granted lease resets the reconnect budget
            lease_id = meta["lease"]
            heartbeat_s = float(meta["heartbeat_s"])
            replica = _build_replica(cache, meta["init_digest"], blob)
            _logger.info(
                "%s leased as %s (heartbeat %.1fs)",
                worker_id,
                lease_id,
                heartbeat_s,
            )

            def beat() -> None:
                while not hb_stop.wait(heartbeat_s):
                    try:
                        send_frame(
                            sock,
                            "heartbeat",
                            {"lease": lease_id},
                            lock=send_lock,
                            detail=detail,
                        )
                    except (TransportError, OSError):
                        return  # main loop will notice the dead socket

            hb_thread = threading.Thread(
                target=beat, name=f"heartbeat:{worker_id}", daemon=True
            )
            hb_thread.start()
            sock.settimeout(max(heartbeat_s, 0.2))
            while True:
                if stop_event is not None and stop_event.is_set():
                    try:
                        send_frame(
                            sock,
                            "goodbye",
                            {"lease": lease_id},
                            lock=send_lock,
                            detail=detail,
                        )
                    except (TransportError, OSError):
                        pass
                    return 0
                frame = recv_frame(sock, idle_ok=True, detail=detail)
                if frame is None:
                    continue
                kind, meta, blob = frame
                if kind == "task":
                    _serve_task(
                        replica, sock, send_lock, meta, blob, detail, lease_id
                    )
                elif kind == "shutdown":
                    if not persist:
                        _logger.info(
                            "%s: coordinator shut down; exiting cleanly",
                            worker_id,
                        )
                        return 0
                    raise ConnectionClosed(
                        "coordinator shut down (persist mode reconnects)"
                    )
                else:
                    raise FrameIntegrityError(
                        f"unexpected frame kind {kind!r} from coordinator"
                    )
        except (TransportError, OSError, EOFError) as error:
            if stop_event is not None and stop_event.is_set():
                return 0
            attempts += 1
            if max_reconnects is not None and attempts > max_reconnects:
                _logger.error(
                    "%s: giving up after %d consecutive failed "
                    "connection attempts: %r",
                    worker_id,
                    attempts,
                    error,
                )
                raise
            delay = policy.backoff(worker_id, min(attempts, 16))
            _logger.warning(
                "%s: transport failure (%r); reconnecting in %.2fs "
                "(attempt %d%s)",
                worker_id,
                error,
                delay,
                attempts,
                "" if max_reconnects is None else f"/{max_reconnects}",
            )
            if stop_event is not None:
                if stop_event.wait(delay):
                    return 0
            else:
                time.sleep(delay)
        finally:
            hb_stop.set()
            if hb_thread is not None:
                hb_thread.join(timeout=2.0)
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass


# ----------------------------------------------------------------------
# trainer-facing engine
# ----------------------------------------------------------------------


class RemoteEpisodeCollector:
    """Fan episode collection out to leased remote workers.

    Interface-compatible with :class:`~repro.parallel.collector.
    EpisodeCollector` — the trainer treats both identically.  The
    ``workers`` count sets the *partition granularity* (how many
    wave-aligned slices an epoch is cut into), not a connection
    requirement: however many workers are actually leased serve the
    queue work-stealing style, and results are bitwise identical at
    any count by the same wave-alignment argument as the local pool.

    Degradation ladder (each rung runs the same pure slice functions
    on the same broadcast bytes, so results never change):

    1. **remote** — leased workers over TCP;
    2. **local pool** — an embedded :class:`EpisodeCollector` when
       ``local_jobs >= 2`` (with its own internal retry/degrade);
    3. **in-process** — a :class:`ReplicaCollector` in the trainer.

    A round that leaves slices undelivered (no live workers for
    ``worker_wait_s``, or a transient-failure storm) completes the
    missing slices down the ladder; ``max_remote_failures``
    *consecutive* such rounds degrade remote dispatch entirely, and a
    bounded re-probe (``reprobe_after`` non-remote rounds, and only
    once a worker is actually leased again) lifts it.
    """

    def __init__(
        self,
        system,
        reward_calculator,
        env_config,
        *,
        workers: int,
        batch_size: int,
        seed: int,
        encoder_channels: tuple = (16, 32, 32),
        host: str = "127.0.0.1",
        port: int = 0,
        local_jobs: int = 1,
        lease_s: float = 15.0,
        heartbeat_s: float | None = None,
        worker_wait_s: float = 30.0,
        task_timeout_s: float | None = None,
        policy: RetryPolicy | None = None,
        max_remote_failures: int = 3,
        reprobe_after: int = 2,
        compress_broadcast: bool = False,
    ):
        if workers < 1:
            raise ValueError("RemoteEpisodeCollector needs workers >= 1")
        if batch_size < 2:
            raise ValueError(
                "distributed collection requires the batched engine "
                "(batch_size >= 2); the sequential engine's episodes "
                "share one action stream and cannot be sharded bitwise"
            )
        if max_remote_failures < 1:
            raise ValueError("max_remote_failures must be >= 1")
        if reprobe_after < 0:
            raise ValueError("reprobe_after must be >= 0 (0 = never)")
        self.workers = workers
        self.batch_size = batch_size
        self.policy = policy if policy is not None else RetryPolicy()
        self.worker_wait_s = worker_wait_s
        self.task_timeout_s = task_timeout_s
        self.max_remote_failures = max_remote_failures
        self.reprobe_after = reprobe_after
        # Transport encoding only: workers auto-detect the zlib wrapper in
        # loads_payload, the decoded state dict is bitwise identical, so
        # collected episodes are too.
        self.compress_broadcast = bool(compress_broadcast)
        self._lease_s = lease_s
        self._heartbeat_s = heartbeat_s
        self._host = host
        self._port = port
        self._init_payload = dumps_payload(
            {
                "system": system,
                "reward_calculator": reward_calculator,
                "env_config": env_config,
                "channels": tuple(encoder_channels),
                "batch_size": batch_size,
                "seed": seed,
            },
            kind=WORKER_INIT_KIND,
        )
        self._local: EpisodeCollector | None = None
        if local_jobs >= 2:
            self._local = EpisodeCollector(
                system,
                reward_calculator,
                env_config,
                jobs=local_jobs,
                batch_size=batch_size,
                seed=seed,
                encoder_channels=encoder_channels,
                policy=self.policy,
                compress_broadcast=self.compress_broadcast,
            )
        self._fallback = ReplicaCollector(
            system,
            reward_calculator,
            env_config,
            tuple(encoder_channels),
            batch_size,
            seed,
        )
        self._coordinator: WorkerCoordinator | None = None
        self._remote_failures = 0
        self._degraded = False
        self._nonremote_rounds = 0
        self._prefetch: dict | None = None
        self._ensure_coordinator()

    # -- lifecycle ------------------------------------------------------

    def _ensure_coordinator(self) -> WorkerCoordinator:
        if self._coordinator is None:
            self._coordinator = WorkerCoordinator(
                self._init_payload,
                host=self._host,
                port=self._port,
                lease_s=self._lease_s,
                heartbeat_s=self._heartbeat_s,
            )
            # Pin the ephemeral port: a close()/reopen cycle (train()
            # closes the collector after every run) rebinds the same
            # address so long-lived workers can find it again.
            self._port = self._coordinator.address[1]
        return self._coordinator

    @property
    def address(self) -> tuple:
        """The coordinator's ``(host, port)`` workers connect to."""
        return self._ensure_coordinator().address

    @property
    def active(self) -> bool:
        """Whether the coordinator is currently listening."""
        return self._coordinator is not None

    @property
    def degraded(self) -> bool:
        """Whether remote dispatch has been given up on (for now)."""
        return self._degraded

    def close(self, wait: bool = True) -> None:
        """Drain leased workers, release everything (idempotent).

        The coordinator rebinds lazily (same port) if collection
        continues, mirroring the local pool's lazy respawn.
        """
        self.cancel_prefetch()
        if self._coordinator is not None:
            self._coordinator.close()
            self._coordinator = None
        if self._local is not None:
            self._local.close(wait=wait)

    def __enter__(self) -> "RemoteEpisodeCollector":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(wait=exc_info[0] is None)

    # -- collection -----------------------------------------------------

    def collect(
        self, network, start_index: int, count: int, greedy: bool = False
    ) -> list:
        """Collect ``count`` episodes from ``start_index`` (merged)."""
        weights = dumps_payload(
            network.state_dict(),
            kind=POLICY_PAYLOAD_KIND,
            compress=self.compress_broadcast,
        )
        return self.collect_with_weights(
            weights, start_index, count, greedy=greedy
        )

    def collect_with_weights(
        self,
        weights: bytes,
        start_index: int,
        count: int,
        greedy: bool = False,
    ) -> list:
        """Like :meth:`collect`, from already-serialized weights."""
        slices = self._slices(start_index, count)
        results = self._collect_slices(
            weights, slices, greedy, "collector.slice", epoch_id=None
        )
        return self._merge(results, slices)

    def _slices(self, start_index: int, count: int) -> list:
        return list(
            enumerate(
                partition_episodes(
                    start_index, count, self.batch_size, self.workers
                )
            )
        )

    @staticmethod
    def _merge(results: dict, slices: list) -> list:
        return [pair for index, _ in slices for pair in results[index]]

    def _degrade(self, reason: str) -> None:
        _logger.error(
            "remote collection failed %d consecutive round(s) (%s); "
            "degrading to %s — results stay bitwise identical, only "
            "wall clock suffers; remote dispatch re-probes once a "
            "worker re-leases%s",
            self._remote_failures,
            reason,
            "the local pool" if self._local is not None else "in-process",
            (
                f" (after {self.reprobe_after} non-remote round(s))"
                if self.reprobe_after
                else ""
            ),
        )
        self._degraded = True
        self._nonremote_rounds = 0

    def _maybe_reprobe(self) -> None:
        """Lift degradation once workers are back (bounded, probation).

        Unlike the local pool's blind re-probe, a remote re-probe is
        gated on a worker actually holding a lease — probing an empty
        coordinator would stall ``worker_wait_s`` for nothing.  The
        rehabilitated path gets one probation round
        (``_remote_failures`` restarts at ``max_remote_failures - 1``).
        """
        if not self._degraded or not self.reprobe_after:
            return
        if self._nonremote_rounds < self.reprobe_after:
            return
        if self._coordinator is None or not self._coordinator.live_workers():
            return
        _logger.warning(
            "re-probing remote collection after %d non-remote round(s) "
            "— one probation round, results unaffected",
            self._nonremote_rounds,
        )
        self._degraded = False
        self._nonremote_rounds = 0
        self._remote_failures = self.max_remote_failures - 1

    def _collect_slices(
        self,
        weights: bytes,
        slices: list,
        greedy: bool,
        chaos_point: str,
        epoch_id: int | None,
    ) -> dict:
        """Drive one slice set down the ladder; returns {index: pairs}.

        ``epoch_id`` carries an already-dispatched epoch (the prefetch
        handoff); it is driven even when remote dispatch has since
        degraded — its results may already be in flight.
        """
        results: dict = {}
        self._maybe_reprobe()
        if epoch_id is not None or not self._degraded:
            try:
                if epoch_id is None:
                    epoch_id = self._ensure_coordinator().begin_epoch(
                        weights, slices, greedy, chaos_point
                    )
                results = self._coordinator.drive_epoch(
                    epoch_id,
                    worker_wait_s=self.worker_wait_s,
                    task_timeout_s=self.task_timeout_s,
                )
                self._remote_failures = 0
            except RemoteStallError as error:
                results = dict(error.results)
                self._remote_failures += 1
                missing = sum(
                    1 for item in slices if item[0] not in results
                )
                _logger.warning(
                    "remote round incomplete (%s); completing %d "
                    "missing slice(s) down the degradation ladder "
                    "[failure %d/%d]",
                    error,
                    missing,
                    self._remote_failures,
                    self.max_remote_failures,
                )
                if self._remote_failures >= self.max_remote_failures:
                    self._degrade(str(error))
        else:
            self._nonremote_rounds += 1
        missing = [item for item in slices if item[0] not in results]
        if not missing:
            return results
        if self._local is not None:
            # Each missing slice starts on a wave boundary, so the
            # pool's own sub-partition stays wave-aligned — bitwise.
            for index, (start, size) in missing:
                results[index] = self._local.collect_with_weights(
                    weights, start, size, greedy=greedy
                )
        else:
            results.update(self._fallback.collect(weights, missing, greedy))
        return results

    # -- pipelined (async) handoff -------------------------------------

    @property
    def prefetching(self) -> bool:
        """Whether a prefetched slice set is outstanding."""
        return self._prefetch is not None

    def prefetch(
        self,
        weights: bytes,
        start_index: int,
        count: int,
        greedy: bool = False,
    ) -> None:
        """Dispatch a slice set without waiting (async double-buffer).

        Remote dispatch starts immediately (leased workers collect
        while the caller runs its PPO update).  Degraded prefetches
        delegate the overlap to the local pool when one exists;
        otherwise nothing is dispatched and the harvest collects
        synchronously — overlap lost, results unchanged.
        """
        if self._prefetch is not None:
            raise RuntimeError(
                "a prefetch is already outstanding; harvest it with "
                "collect_prefetched() or drop it with cancel_prefetch()"
            )
        slices = self._slices(start_index, count)
        state = {
            "weights": weights,
            "slices": slices,
            "greedy": greedy,
            "epoch": None,
            "local": False,
        }
        self._maybe_reprobe()
        if not self._degraded:
            state["epoch"] = self._ensure_coordinator().begin_epoch(
                weights, slices, greedy, "collector.prefetch"
            )
        elif self._local is not None:
            self._local.prefetch(weights, start_index, count, greedy=greedy)
            state["local"] = True
        self._prefetch = state

    def collect_prefetched(self) -> list:
        """Harvest the outstanding prefetch (blocking), merged in order."""
        state = self._prefetch
        self._prefetch = None
        if state is None:
            raise RuntimeError("no prefetch is outstanding")
        if state["local"]:
            self._nonremote_rounds += 1
            if self._local.prefetching:
                return self._local.collect_prefetched()
            return self._merge(
                self._fallback.collect(
                    state["weights"], state["slices"], state["greedy"]
                ),
                state["slices"],
            )
        results = self._collect_slices(
            state["weights"],
            state["slices"],
            state["greedy"],
            "collector.prefetch",
            epoch_id=state["epoch"],
        )
        return self._merge(results, state["slices"])

    def cancel_prefetch(self) -> None:
        """Drop the outstanding prefetch, if any (idempotent)."""
        state = self._prefetch
        self._prefetch = None
        if state is None:
            return
        if state["local"] and self._local is not None:
            self._local.cancel_prefetch()
            return
        if state["epoch"] is not None and self._coordinator is not None:
            self._coordinator.abort_epoch(state["epoch"])
