"""Regenerate every paper table and dump JSON artifacts.

This is the script behind the numbers in EXPERIMENTS.md.  Budgets are
chosen to finish in tens of minutes on one CPU; pass ``--paper-scale``
for the full regime.

Usage:
    python scripts/run_experiments.py [--paper-scale] [--out bench_results]
"""

import argparse
import json
import time
from dataclasses import asdict
from pathlib import Path

from repro.experiments import run_table2
from repro.experiments.report import format_comparison, format_table, save_results
from repro.experiments.runner import ExperimentBudget, run_all_methods
from repro.experiments.table3 import improvement_summary
from repro.systems import get_benchmark


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--paper-scale", action="store_true")
    parser.add_argument("--out", type=str, default="bench_results")
    parser.add_argument("--t2-systems", type=int, default=500)
    parser.add_argument("--epochs", type=int, default=80)
    parser.add_argument("--episodes", type=int, default=16)
    parser.add_argument("--grid", type=int, default=24)
    parser.add_argument("--sa-iters", type=int, default=150)
    parser.add_argument(
        "--batch-size",
        type=int,
        default=16,
        help="rollout batch width for RL collection (1 = sequential)",
    )
    parser.add_argument(
        "--sa-chains",
        type=int,
        default=16,
        help="lockstep chains for both SA baselines (1 = sequential; "
        "the HotSpot arm batches all chains through one factorization "
        "per step)",
    )
    parser.add_argument(
        "--skip", nargs="*", default=[], choices=["table1", "table2", "table3"]
    )
    args = parser.parse_args()

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    budget = (
        ExperimentBudget.paper_scale()
        if args.paper_scale
        else ExperimentBudget(
            rl_epochs=args.epochs,
            episodes_per_epoch=args.episodes,
            grid_size=args.grid,
            sa_iterations_hotspot=args.sa_iters,
            rollout_batch_size=args.batch_size,
            sa_chains=args.sa_chains,
        )
    )
    print(f"budget: {budget}")
    started = time.time()

    if "table2" not in args.skip:
        print("\n=== Table II ===")
        t2 = run_table2(n_systems=args.t2_systems)
        print(t2.format())
        (out / "table2.json").write_text(
            json.dumps(
                {
                    "metrics": t2.metrics,
                    "speedup": t2.speedup,
                    "solver_ms": t2.solver_time_per_eval * 1e3,
                    "fast_ms": t2.fast_time_per_eval * 1e3,
                    "characterization_s": t2.characterization_time,
                    "n_systems": t2.n_systems,
                },
                indent=2,
            )
        )

    all_results = []
    if "table1" not in args.skip:
        print("\n=== Table I ===")
        for name in ("multi_gpu", "cpu_dram", "ascend910"):
            spec = get_benchmark(name)
            results = run_all_methods(spec, budget)
            all_results.extend(results)
            print(format_table(results))
            print(format_comparison(results, spec.paper_reference, name))
            save_results(
                results, out / f"table1_{name}.json", {"budget": asdict(budget)}
            )

    table3_results = []
    if "table3" not in args.skip:
        print("\n=== Table III ===")
        for case in (1, 2, 3, 4, 5):
            spec = get_benchmark(f"synthetic{case}")
            results = run_all_methods(spec, budget)
            table3_results.extend(results)
            print(format_table(results))
            print(format_comparison(results, spec.paper_reference, spec.name))
        save_results(
            table3_results, out / "table3.json", {"budget": asdict(budget)}
        )

    combined = all_results + table3_results
    if combined:
        summary = improvement_summary(combined)
        print("\n=== Aggregate (all cases) ===")
        print(
            f"RLPlanner(RND) vs TAP-2.5D(HotSpot):      "
            f"{summary['rnd_vs_hotspot_pct']:+.2f}%   (paper +20.28%)"
        )
        print(
            f"RLPlanner(RND) vs TAP-2.5D*(FastThermal): "
            f"{summary['rnd_vs_fast_pct']:+.2f}%   (paper +9.25%)"
        )
        (out / "summary.json").write_text(json.dumps(summary, indent=2))

    print(f"\ntotal wall time: {(time.time() - started) / 60:.1f} min")


if __name__ == "__main__":
    main()
