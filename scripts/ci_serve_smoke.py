"""End-to-end smoke of the floorplanning service (CI job).

Drives the serve stack exactly as deployed — a real server subprocess
(``scripts/serve.py``) answering real HTTP from concurrent client
threads — and checks every guarantee the serve layer makes:

1. **Reference** — run the request's method arm directly through the
   harness (``run_all_methods``, the ``repro.cli train``/``sa`` code
   path) at the same tiny budget.
2. **Mixed concurrent traffic** — fire, simultaneously: cold place
   requests for two different benchmarks, a burst of *identical* place
   requests (the single-flight path: exactly one computes, the rest
   coalesce), and warm-cache evaluate requests.  All must succeed.
3. **Bitwise parity** — every served place response must match the
   reference run bit for bit in all semantic fields (reward,
   wirelength, temperature, extra counters; runtimes are wall clock
   and excluded), and every response to the identical-request burst
   must be identical.
4. **Memoized repeat** — a server *restart* later, the same request
   must come back ``cache=hit`` with ``evaluator_calls == 0`` and zero
   registry builds (the store outlives the process; nothing recomputes,
   nothing even re-characterizes).

Exit code 0 = all assertions hold.  Designed to finish in ~2 minutes
on a single CI core.

Usage:
    PYTHONPATH=src python scripts/ci_serve_smoke.py [--workdir DIR]
"""

import argparse
import json
import os
import struct
import subprocess
import sys
import tempfile
import time
import urllib.error
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.runner import ExperimentBudget, run_all_methods  # noqa: E402
from repro.serve import ServeClient, ServeError  # noqa: E402
from repro.serve.schema import budget_to_dict  # noqa: E402
from repro.systems import get_benchmark  # noqa: E402

METHOD = "TAP-2.5D*(FastThermal)"
SYSTEMS = ("synthetic1", "synthetic2")


def tiny_budget() -> ExperimentBudget:
    return ExperimentBudget(
        rl_epochs=1,
        episodes_per_epoch=2,
        grid_size=10,
        sa_iterations_hotspot=16,
        sa_chains=2,
        rollout_batch_size=2,
        position_samples=(2, 2),
        seed=3,
    )


def bits(value: float) -> bytes:
    return struct.pack("<d", float(value))


def assert_bitwise_equal(served: dict, reference, label: str) -> None:
    """Served response vs a locally computed MethodResult, bit for bit."""
    result = served["result"]
    for field, expected in (
        ("reward", reference.reward),
        ("wirelength", reference.wirelength),
        ("temperature_c", reference.temperature_c),
    ):
        if bits(result[field]) != bits(expected):
            raise AssertionError(
                f"{label}: {field} differs — served {result[field]!r}, "
                f"direct run {expected!r}"
            )
    served_extra = dict(result["extra"])
    reference_extra = dict(reference.extra)
    # time_limit_s is the injected wall-clock cap (None in both single-
    # method paths); everything else must agree exactly.
    served_extra.pop("time_limit_s", None)
    reference_extra.pop("time_limit_s", None)
    if served_extra != reference_extra:
        raise AssertionError(
            f"{label}: extra differs — served {served_extra!r}, "
            f"direct run {reference_extra!r}"
        )


class Server:
    """scripts/serve.py subprocess; URL parsed from its banner line."""

    def __init__(self, workdir: Path, store_dir: Path, cache_dir: Path):
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            f"{REPO_ROOT / 'src'}{os.pathsep}{env.get('PYTHONPATH', '')}"
        )
        env["PYTHONUNBUFFERED"] = "1"
        self.proc = subprocess.Popen(
            [
                sys.executable,
                str(REPO_ROOT / "scripts" / "serve.py"),
                "--host",
                "127.0.0.1",
                "--port",
                "0",
                "--store-dir",
                str(store_dir),
                "--cache-dir",
                str(cache_dir),
            ],
            cwd=workdir,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        self.url = self._await_banner()

    def _await_banner(self) -> str:
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise RuntimeError("server exited before binding")
            if "listening on" in line:
                return line.rsplit(" ", 1)[-1].strip()
        raise RuntimeError("server never printed its address")

    def close(self) -> None:
        self.proc.terminate()
        try:
            self.proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()


def wait_healthy(client: ServeClient, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while True:
        try:
            if client.health().get("ok"):
                return
        except (ServeError, urllib.error.URLError, OSError):
            if time.monotonic() > deadline:
                raise
        time.sleep(0.2)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", type=str, default=None)
    parser.add_argument(
        "--burst", type=int, default=6,
        help="identical concurrent requests in the single-flight leg",
    )
    args = parser.parse_args(argv)

    workdir = Path(args.workdir or tempfile.mkdtemp(prefix="serve_smoke_"))
    workdir.mkdir(parents=True, exist_ok=True)
    store_dir = workdir / "store"
    cache_dir = workdir / "cache"
    budget = tiny_budget()
    budget_dict = budget_to_dict(budget)

    # -- 1. reference: the direct CLI code path (shared thermal cache,
    # which round-trips bit-exactly, so sharing it changes nothing) ----
    print("[1/4] computing direct-run references")
    references = {
        system: run_all_methods(
            get_benchmark(system),
            budget,
            cache_dir=cache_dir,
            methods=(METHOD,),
        )[0]
        for system in SYSTEMS
    }

    server = Server(workdir, store_dir, cache_dir)
    try:
        client = ServeClient(server.url, timeout=600.0)
        wait_healthy(client)
        print(f"[2/4] server up at {server.url}; firing mixed traffic")

        with ThreadPoolExecutor(max_workers=2 + args.burst + 4) as pool:
            # Cold places for two different benchmarks, concurrently.
            cold_futures = {
                system: pool.submit(
                    client.place, system, METHOD, budget_dict
                )
                for system in SYSTEMS
            }
            # A burst of identical requests for SYSTEMS[0]: single-flight
            # must collapse them onto the leader's computation.
            burst_futures = [
                pool.submit(client.place, SYSTEMS[0], METHOD, budget_dict)
                for _ in range(args.burst)
            ]
            cold = {
                system: future.result()
                for system, future in cold_futures.items()
            }
            burst = [future.result() for future in burst_futures]

        # Warm-cache evaluates against the now-warm bundles.
        with ThreadPoolExecutor(max_workers=4) as pool:
            evaluations = list(
                pool.map(
                    lambda _: client.evaluate(
                        SYSTEMS[0],
                        cold[SYSTEMS[0]]["placement"],
                        "fast",
                        budget_dict,
                    ),
                    range(8),
                )
            )

        print("[3/4] checking bitwise parity and single-flight coalescing")
        for system in SYSTEMS:
            assert_bitwise_equal(cold[system], references[system], system)
        compute_count = sum(
            1
            for response in [cold[SYSTEMS[0]], *burst]
            if response["cache"] == "miss"
        )
        if compute_count != 1:
            raise AssertionError(
                f"single-flight failure: {compute_count} of the identical "
                f"concurrent requests computed (expected exactly 1)"
            )
        for index, response in enumerate(burst):
            assert_bitwise_equal(
                response, references[SYSTEMS[0]], f"burst[{index}]"
            )
            if response["placement"] != cold[SYSTEMS[0]]["placement"]:
                raise AssertionError(f"burst[{index}]: placement differs")
        expected_reward = bits(references[SYSTEMS[0]].reward)
        for evaluation in evaluations:
            # The served placement re-evaluates to the exact reward the
            # arm reported — through the warm, micro-batched path.
            if bits(evaluation["reward"]) != expected_reward:
                raise AssertionError(
                    "warm evaluate disagrees with the arm's reward"
                )
        stats = client.stats()
        if stats["registry"]["builds"] != len(SYSTEMS):
            raise AssertionError(
                f"expected {len(SYSTEMS)} evaluator builds, registry says "
                f"{stats['registry']['builds']}"
            )
    finally:
        server.close()

    # -- 4. a fresh server over the same store: memoized repeat --------
    print("[4/4] restarting server; memoized repeat must not recompute")
    server = Server(workdir, store_dir, cache_dir)
    try:
        client = ServeClient(server.url, timeout=600.0)
        wait_healthy(client)
        repeat = client.place(SYSTEMS[0], METHOD, budget_dict)
        if repeat["cache"] != "hit":
            raise AssertionError(
                f"repeat after restart: cache={repeat['cache']!r}, "
                "expected 'hit'"
            )
        if repeat["evaluator_calls"] != 0:
            raise AssertionError(
                f"repeat ran {repeat['evaluator_calls']} evaluator calls "
                "(expected 0)"
            )
        assert_bitwise_equal(repeat, references[SYSTEMS[0]], "repeat")
        if repeat["placement"] != cold[SYSTEMS[0]]["placement"]:
            raise AssertionError("repeat placement differs")
        stats = client.stats()
        if stats["registry"]["builds"] != 0:
            raise AssertionError(
                "memoized repeat triggered an evaluator build"
            )
        if stats["store"]["hits"] < 1:
            raise AssertionError("store did not record the hit")
    finally:
        server.close()

    print("serve smoke OK")
    print(
        json.dumps(
            {
                "cold_caches": {s: cold[s]["cache"] for s in SYSTEMS},
                "burst_caches": [r["cache"] for r in burst],
                "repeat_cache": repeat["cache"],
                "repeat_evaluator_calls": repeat["evaluator_calls"],
            }
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
