"""End-to-end experiment-suite wall clock: sequential vs process pool.

Times a complete Table I + Table III regeneration — every (benchmark x
method) arm, including thermal-table characterization — through the
process-level experiment scheduler at each requested ``--jobs`` width.
``jobs=1`` is the bit-exact sequential harness; wider counts fan the
independent arms (and the per-benchmark characterization prewarm jobs)
over a worker pool while the wall-clock-matched ``TAP-2.5D*`` arm keeps
its dependency on the measured RL runtime.

Each timed run gets a fresh thermal-table cache directory so every
width pays the same characterization work; arm *results* are identical
across widths (pinned by ``tests/test_parallel.py``), so the measured
quantity is pure scheduling.

A machine-readable summary is written to ``BENCH_experiments.json``
after every run (including smoke runs), with the host's CPU count
recorded alongside the measured speedups: the >=2.5x target at
``--jobs 4`` is only physically reachable on >=4 cores, so ``--strict``
enforces it only where the hardware allows (same policy as the other
benches, which CI runs in smoke mode and developers enforce locally).

Usage::

    PYTHONPATH=src python benchmarks/bench_experiments.py            # full
    PYTHONPATH=src python benchmarks/bench_experiments.py --smoke    # CI
    PYTHONPATH=src python benchmarks/bench_experiments.py --strict   # enforce

Target (tracked in the README): a 4-worker pool regenerates Table I +
Table III >= 2.5x faster end-to-end than the sequential path on a
>=4-core host.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.runner import ExperimentBudget
from repro.experiments.table1 import TABLE1_SYSTEMS, run_table1
from repro.experiments.table3 import run_table3

FULL_SYSTEMS = TABLE1_SYSTEMS
FULL_CASES = (1, 2, 3, 4, 5)
SMOKE_SYSTEMS = ("synthetic1",)
SMOKE_CASES = (2,)


def build_budget(args) -> ExperimentBudget:
    return ExperimentBudget(
        rl_epochs=args.epochs,
        episodes_per_epoch=args.episodes,
        grid_size=args.grid,
        sa_iterations_hotspot=args.sa_iters,
        sa_chains=args.sa_chains,
        position_samples=(args.positions, args.positions),
    )


def timed_suite(budget, systems, cases, jobs: int) -> float:
    """Wall-clock seconds of one full Table I + Table III regeneration."""
    with tempfile.TemporaryDirectory(prefix="bench_exp_cache_") as cache_dir:
        start = time.perf_counter()
        run_table1(
            budget, systems=systems, cache_dir=cache_dir, verbose=False,
            jobs=jobs,
        )
        run_table3(
            budget, cases=cases, cache_dir=cache_dir, verbose=False,
            jobs=jobs,
        )
        return time.perf_counter() - start


def run(args) -> int:
    budget = build_budget(args)
    systems = SMOKE_SYSTEMS if args.smoke else FULL_SYSTEMS
    cases = SMOKE_CASES if args.smoke else FULL_CASES
    widths = [int(w) for w in args.jobs_list.split(",")]
    cpu_count = os.cpu_count() or 1
    print(
        f"scenario: table1={systems} table3=cases{cases} "
        f"budget=({budget.rl_epochs}ep x {budget.episodes_per_epoch}eps, "
        f"sa_iters={budget.sa_iterations_hotspot}, "
        f"chains={budget.sa_chains}, pos={budget.position_samples}) "
        f"on {cpu_count} cpu core(s)"
    )

    wall = {}
    for jobs in widths:
        elapsed = timed_suite(budget, systems, cases, jobs)
        wall[jobs] = elapsed
        print(f"jobs={jobs:<2d} wall {elapsed:8.1f} s")

    baseline = wall[widths[0]]
    speedups = {}
    status = 0
    enforceable = cpu_count >= max(widths)
    for jobs in widths[1:]:
        speedup = baseline / wall[jobs]
        speedups[jobs] = speedup
        verdict = ""
        if not args.smoke and jobs == widths[-1]:
            ok = speedup >= args.target
            if ok:
                verdict = "  [ok]"
            elif not enforceable:
                verdict = (
                    f"  [unmeasurable: {jobs} workers need >= {jobs} cores, "
                    f"host has {cpu_count}]"
                )
            else:
                verdict = f"  [below {args.target:.1f}x target]"
                if args.strict:
                    status = 1
        print(f"speedup jobs={jobs} vs {widths[0]}: {speedup:.2f}x{verdict}")

    payload = {
        "benchmark": "bench_experiments",
        "mode": "smoke" if args.smoke else "full",
        "cpu_count": cpu_count,
        "scenario": {
            "table1_systems": list(systems),
            "table3_cases": list(cases),
            "rl_epochs": budget.rl_epochs,
            "episodes_per_epoch": budget.episodes_per_epoch,
            "grid_size": budget.grid_size,
            "sa_iterations_hotspot": budget.sa_iterations_hotspot,
            "sa_chains": budget.sa_chains,
            "position_samples": list(budget.position_samples),
        },
        "wall_seconds": {str(j): wall[j] for j in widths},
        "speedup_vs_sequential": {str(j): speedups[j] for j in speedups},
        "target": args.target,
        # The target presumes the pool has cores to spread over; a
        # single-core host measures scheduler overhead, not parallelism.
        "target_enforceable_on_host": enforceable,
        "target_met": bool(
            speedups and speedups[widths[-1]] >= args.target
        ),
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs-list",
        type=str,
        default="1,4",
        help="comma-separated worker counts; the first is the baseline",
    )
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--episodes", type=int, default=8)
    parser.add_argument("--grid", type=int, default=16)
    parser.add_argument("--sa-iters", type=int, default=32)
    parser.add_argument("--sa-chains", type=int, default=16)
    parser.add_argument(
        "--positions",
        type=int,
        default=3,
        help="characterization samples per axis (NxN solves per size)",
    )
    parser.add_argument(
        "--target", type=float, default=2.5, help="required speedup multiple"
    )
    parser.add_argument(
        "--out",
        type=str,
        default="BENCH_experiments.json",
        help="machine-readable result path",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero when the widest pool misses the target on a "
        "host with enough cores",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one tiny system per table, no target check (CI)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.epochs = min(args.epochs, 2)
        args.episodes = min(args.episodes, 4)
        args.grid = min(args.grid, 12)
        args.sa_iters = min(args.sa_iters, 16)
        args.sa_chains = min(args.sa_chains, 4)
        args.positions = min(args.positions, 2)
        if args.jobs_list == "1,4":
            args.jobs_list = "1,2"
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
