"""Proximal policy optimization (Schulman et al., 2017).

Clipped surrogate objective with value-function clipping, entropy bonus
and global gradient-norm clipping — the configuration the paper cites.
The policy/value network is supplied by the caller and must implement
``evaluate(observations, masks) -> (MaskedCategorical, values)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import Tensor, clip_grad_norm
from repro.rl.buffer import RolloutBatch

__all__ = ["PPOConfig", "PPOUpdater"]


@dataclass(frozen=True)
class PPOConfig:
    """PPO hyperparameters (standard values)."""

    clip_ratio: float = 0.2
    update_epochs: int = 4
    minibatch_size: int = 64
    value_coef: float = 0.5
    entropy_coef: float = 0.01
    max_grad_norm: float = 0.5
    value_clip: float = 0.2
    target_kl: float | None = 0.03

    def __post_init__(self) -> None:
        if self.clip_ratio <= 0:
            raise ValueError("clip_ratio must be positive")
        if self.update_epochs < 1 or self.minibatch_size < 1:
            raise ValueError("update_epochs and minibatch_size must be >= 1")


class PPOUpdater:
    """Runs PPO updates on a shared actor-critic network.

    Parameters
    ----------
    network:
        Module with ``evaluate(obs, masks)``.
    optimizer:
        Optimizer over the network's parameters.
    config:
        Hyperparameters.
    """

    def __init__(self, network, optimizer, config: PPOConfig | None = None):
        self.network = network
        self.optimizer = optimizer
        self.config = config or PPOConfig()

    def update(self, batch: RolloutBatch, rng: np.random.Generator) -> dict:
        """Run the configured epochs of minibatch updates.

        Returns averaged diagnostics: losses, entropy, approximate KL and
        the fraction of clipped ratios.
        """
        cfg = self.config
        stats = {
            "policy_loss": 0.0,
            "value_loss": 0.0,
            "entropy": 0.0,
            "approx_kl": 0.0,
            "clip_fraction": 0.0,
            "grad_norm": 0.0,
        }
        n_updates = 0
        early_stop = False
        for _ in range(cfg.update_epochs):
            if early_stop:
                break
            for mini in batch.minibatches(cfg.minibatch_size, rng):
                step_stats = self._update_minibatch(mini)
                for key in stats:
                    stats[key] += step_stats[key]
                n_updates += 1
                if (
                    cfg.target_kl is not None
                    and step_stats["approx_kl"] > 1.5 * cfg.target_kl
                ):
                    early_stop = True
                    break
        if n_updates:
            for key in stats:
                stats[key] /= n_updates
        stats["n_updates"] = n_updates
        stats["early_stopped"] = early_stop
        return stats

    def _update_minibatch(self, mini: RolloutBatch) -> dict:
        cfg = self.config
        dist, values = self.network.evaluate(mini.observations, mini.masks)
        log_probs = dist.log_prob(mini.actions)
        ratio = (log_probs - Tensor(mini.old_log_probs)).exp()
        advantages = Tensor(mini.advantages)

        # Clipped surrogate.
        unclipped = ratio * advantages
        clipped = ratio.clip(1.0 - cfg.clip_ratio, 1.0 + cfg.clip_ratio) * advantages
        policy_loss = -(unclipped.minimum(clipped)).mean()

        # Clipped value loss (PPO2 style).
        returns = Tensor(mini.returns)
        value_error = (values - returns) ** 2
        clipped_values = Tensor(mini.old_values) + (
            values - Tensor(mini.old_values)
        ).clip(-cfg.value_clip, cfg.value_clip)
        clipped_error = (clipped_values - returns) ** 2
        # Maximum of the two errors = -minimum of their negatives.
        value_loss = (-((-value_error).minimum(-clipped_error))).mean()

        entropy = dist.entropy().mean()
        loss = (
            policy_loss
            + cfg.value_coef * value_loss
            - cfg.entropy_coef * entropy
        )

        self.optimizer.zero_grad()
        loss.backward()
        grad_norm = clip_grad_norm(self.network.parameters(), cfg.max_grad_norm)
        self.optimizer.step()

        ratio_np = ratio.data
        approx_kl = float(np.mean(mini.old_log_probs - log_probs.data))
        clip_fraction = float(
            np.mean(np.abs(ratio_np - 1.0) > cfg.clip_ratio)
        )
        return {
            "policy_loss": float(policy_loss.item()),
            "value_loss": float(value_loss.item()),
            "entropy": float(entropy.item()),
            "approx_kl": approx_kl,
            "clip_fraction": clip_fraction,
            "grad_norm": grad_norm,
        }
