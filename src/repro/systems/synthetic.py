"""Seeded synthetic chiplet systems.

Two uses, mirroring the paper:

* :func:`synthetic_case` — the five systems of Table III (seeds 1-5).
* :func:`synthetic_thermal_dataset` — the 2,000-system dataset of
  Table II.  All dataset systems share one interposer and draw die sizes
  from a small quantized set, so a single characterization run covers
  the whole dataset (the same economy the paper's table-based method
  relies on).
"""

from __future__ import annotations

from repro.baselines.random_search import random_legal_placement
from repro.chiplet import Chiplet, ChipletSystem, Interposer, Net
from repro.reward import RewardConfig
from repro.systems.spec import BenchmarkSpec
from repro.thermal import ThermalConfig
from repro.utils import new_rng

__all__ = [
    "synthetic_system",
    "synthetic_case",
    "synthetic_thermal_dataset",
    "DATASET_INTERPOSER",
    "DATASET_SIZES",
]

# Shared package for the Table II dataset: one characterization serves
# every sample.
DATASET_INTERPOSER = Interposer(40.0, 40.0, min_spacing=0.2)
DATASET_SIZES = (4.0, 6.0, 8.0, 10.0, 12.0)


def synthetic_system(
    seed: int,
    n_chiplets: int | None = None,
    interposer: Interposer | None = None,
    sizes=DATASET_SIZES,
    power_density_range: tuple = (0.1, 0.8),
    wires_choices: tuple = (128, 256, 512),
    extra_edge_prob: float = 0.3,
) -> ChipletSystem:
    """Generate one random system.

    Die sizes are drawn from ``sizes`` (quantized so characterization
    tables are shared), powers from a uniform power-density range, and
    the netlist is a random spanning tree plus random extra edges —
    connected, like real systems, but irregular.
    """
    rng = new_rng(seed)
    interposer = interposer or DATASET_INTERPOSER
    if n_chiplets is None:
        n_chiplets = int(rng.integers(4, 9))
    # Keep utilization moderate so every sample is placeable.
    chiplets = []
    total_area = 0.0
    budget = 0.55 * interposer.area
    for i in range(n_chiplets):
        for _ in range(50):
            w = float(rng.choice(sizes))
            h = float(rng.choice(sizes))
            if total_area + w * h <= budget:
                break
        else:
            break
        total_area += w * h
        density = rng.uniform(*power_density_range)
        chiplets.append(
            Chiplet(
                name=f"c{i}",
                width=w,
                height=h,
                power=round(float(density * w * h), 2),
                kind="synthetic",
            )
        )
    names = [c.name for c in chiplets]
    nets = []
    # Random spanning tree keeps the system connected.
    shuffled = list(names)
    rng.shuffle(shuffled)
    for i in range(1, len(shuffled)):
        parent = shuffled[int(rng.integers(0, i))]
        nets.append(
            Net(
                parent,
                shuffled[i],
                wires=int(rng.choice(wires_choices)),
                name=f"t{i}",
            )
        )
    # Extra cross edges.
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            if rng.random() < extra_edge_prob and not any(
                {names[i], names[j]} == {n.src, n.dst} for n in nets
            ):
                nets.append(
                    Net(
                        names[i],
                        names[j],
                        wires=int(rng.choice(wires_choices)),
                        name=f"x{i}_{j}",
                    )
                )
    return ChipletSystem(
        name=f"synthetic_seed{seed}",
        interposer=interposer,
        chiplets=tuple(chiplets),
        nets=tuple(nets),
        metadata={"seed": seed},
    )


def synthetic_case(case: int) -> BenchmarkSpec:
    """One of the five Table III cases (1-based)."""
    if not 1 <= case <= 5:
        raise ValueError("synthetic cases are numbered 1..5")
    paper_rewards = {
        1: {"RLPlanner": -5.8288, "RLPlanner(RND)": -5.1062,
            "TAP-2.5D(HotSpot)": -6.6439, "TAP-2.5D*(FastThermal)": -6.3627},
        2: {"RLPlanner": -6.3236, "RLPlanner(RND)": -6.7848,
            "TAP-2.5D(HotSpot)": -8.9846, "TAP-2.5D*(FastThermal)": -7.1250},
        3: {"RLPlanner": -10.0058, "RLPlanner(RND)": -9.9335,
            "TAP-2.5D(HotSpot)": -12.3946, "TAP-2.5D*(FastThermal)": -10.7151},
        4: {"RLPlanner": -8.4076, "RLPlanner(RND)": -8.3903,
            "TAP-2.5D(HotSpot)": -10.5525, "TAP-2.5D*(FastThermal)": -9.8286},
        5: {"RLPlanner": -8.6193, "RLPlanner(RND)": -8.2049,
            "TAP-2.5D(HotSpot)": -10.6965, "TAP-2.5D*(FastThermal)": -8.5189},
    }
    system = synthetic_system(seed=100 + case)
    return BenchmarkSpec(
        name=f"synthetic{case}",
        system=system,
        thermal_config=ThermalConfig(r_convection=0.12, package_margin=12.0),
        reward_config=RewardConfig(lambda_wl=3.3e-4, t_limit=85.0, alpha=1.0),
        description=f"Synthetic system, case {case} (seed {100 + case})",
        paper_reference={
            method: {"reward": value}
            for method, value in paper_rewards[case].items()
        },
    )


def synthetic_thermal_dataset(
    n_systems: int = 2000, seed: int = 7, with_placements: bool = True
):
    """Yield (system, placement) pairs for the Table II comparison.

    Every system lives on :data:`DATASET_INTERPOSER` with sizes from
    :data:`DATASET_SIZES`; placements are random legal layouts.
    """
    rng = new_rng(seed)
    for index in range(n_systems):
        system = synthetic_system(seed=int(rng.integers(0, 2**31)))
        if with_placements:
            placement = random_legal_placement(
                system, rng, allow_rotation=False
            )
            yield system, placement
        else:
            yield system
