"""Distributed episode-collection throughput: 1 vs 2 vs 4 workers.

Times ``RLPlannerTrainer.collect_episodes`` on the default synthetic
system at ``collect_jobs`` 1 (in-process), 2 and 4 (persistent worker
pool), reporting median episodes/sec over alternating measurement
windows so single-core frequency noise cannot bias one arm.  Collection
results are bitwise identical across all worker counts (pinned by
``tests/test_collector.py``), so the measured quantity is pure
wall-clock: per-epoch weight broadcast + slice fan-out vs one process
doing all the forward passes itself.

A machine-readable summary is written to ``BENCH_trainer.json`` after
every run (including smoke runs), with the host's CPU count recorded
alongside the measured speedups: the >=2x target at ``collect_jobs=4``
is only physically reachable on >=4 cores, so ``--strict`` enforces it
only where the hardware allows (same policy as the other benches, which
CI runs in smoke mode and developers enforce locally).

Usage::

    PYTHONPATH=src python benchmarks/bench_collect.py            # full
    PYTHONPATH=src python benchmarks/bench_collect.py --smoke    # CI
    PYTHONPATH=src python benchmarks/bench_collect.py --strict   # enforce

Target (tracked in the README): ``collect_jobs=4`` collects >= 2x the
episodes/sec of in-process collection on a >=4-core host.

The **async leg** additionally times full ``train()`` runs — update
compute included — lockstep vs ``async_collect`` at the same worker
count, recording the actor/learner overlap speedup (epochs/sec).  Its
>=1.3x target presumes a spare core for the learner while workers
collect, so it too is enforced only on >=4-core hosts; smaller hosts
still measure and record the (honest, possibly <1x) number.

The **remote leg** measures the lease-based TCP path
(``collect_workers=2`` with two ``scripts/collect_worker.py``
subprocesses on localhost) against the same-width local pool
(``collect_jobs=2``).  Both collect bitwise-identical episodes, so the
ratio is the pure transport tax: framing + checksums + heartbeats +
weight broadcast over a socket instead of a pipe.  The >=0.75x budget
("remote loses at most 25% on loopback") is enforced only on >=4-core
hosts, where the worker subprocesses do not fight the coordinator for
cycles.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import time
from pathlib import Path

from repro.agent import RLPlannerTrainer, TrainerConfig
from repro.env import EnvConfig, FloorplanEnv
from repro.reward import RewardCalculator, RewardConfig
from repro.rl import PPOConfig
from repro.systems import synthetic_system
from repro.thermal import FastThermalModel, ThermalConfig
from repro.thermal.characterize import load_or_characterize

DEFAULT_CACHE_DIR = ".cache/thermal_tables"
REPO_ROOT = Path(__file__).resolve().parent.parent


def build_env(grid_size: int, system_seed: int) -> FloorplanEnv:
    """The benchmark scenario: one synthetic system + fast thermal model."""
    system = synthetic_system(seed=system_seed)
    config = ThermalConfig()
    sizes = []
    for chiplet in system.chiplets:
        sizes.append((chiplet.width, chiplet.height))
        if chiplet.rotatable:
            sizes.append((chiplet.height, chiplet.width))
    tables = load_or_characterize(
        system.interposer,
        sizes,
        config,
        position_samples=(5, 5),
        cache_dir=DEFAULT_CACHE_DIR,
    )
    calc = RewardCalculator(
        FastThermalModel(tables, config),
        RewardConfig(use_bump_assignment=False),
    )
    return FloorplanEnv(system, calc, EnvConfig(grid_size=grid_size))


def make_trainer(
    env: FloorplanEnv, batch_size: int, collect_jobs: int, seed: int
) -> RLPlannerTrainer:
    return RLPlannerTrainer(
        env,
        TrainerConfig(
            epochs=1,
            episodes_per_epoch=16,
            batch_size=batch_size,
            collect_jobs=collect_jobs,
            seed=seed,
            log_every=0,
            ppo=PPOConfig(),
        ),
    )


def measure_window(
    trainer: RLPlannerTrainer, episodes: int, seconds: float
) -> float:
    """Episodes/sec over one timed window of repeated collections."""
    collected = 0
    start = time.perf_counter()
    while True:
        trainer.collect_episodes(episodes)
        collected += episodes
        elapsed = time.perf_counter() - start
        if elapsed >= seconds:
            return collected / elapsed


def measure_train(
    env: FloorplanEnv, args, async_collect: bool, jobs: int
) -> float:
    """Epochs/sec of one full ``train()`` run (collection + updates)."""
    trainer = RLPlannerTrainer(
        env,
        TrainerConfig(
            epochs=args.async_epochs,
            episodes_per_epoch=args.episodes,
            batch_size=args.batch_size,
            collect_jobs=jobs,
            async_collect=async_collect,
            seed=args.seed,
            log_every=0,
            ppo=PPOConfig(),
        ),
    )
    start = time.perf_counter()
    try:
        trainer.train()
    finally:
        trainer.close_collector()
    return args.async_epochs / (time.perf_counter() - start)


def run_async_leg(env: FloorplanEnv, args, cpu_count: int) -> tuple:
    """Lockstep vs pipelined ``train()`` at the same worker count.

    Returns ``(payload_fragment, exit_status)``.  Alternates the two
    arms per round (same reasoning as the collection windows) and takes
    medians.  The two runs compute different trajectories — async is
    deliberately one epoch stale — so only wall clock is compared.
    """
    jobs = args.async_jobs
    samples = {"lockstep": [], "async": []}
    for round_index in range(args.rounds):
        for arm, async_collect in (("lockstep", False), ("async", True)):
            rate = measure_train(env, args, async_collect, jobs)
            samples[arm].append(rate)
            print(
                f"round {round_index}: train[{arm:<8s}] jobs={jobs} "
                f"{rate:8.2f} epochs/s"
            )
    medians = {arm: statistics.median(rates) for arm, rates in samples.items()}
    speedup = medians["async"] / medians["lockstep"]
    enforceable = cpu_count >= 4
    status = 0
    verdict = ""
    if not args.smoke:
        if speedup >= args.async_target:
            verdict = "  [ok]"
        elif not enforceable:
            verdict = (
                f"  [unmeasurable: overlap needs >= 4 cores, host has "
                f"{cpu_count}]"
            )
        else:
            verdict = f"  [below {args.async_target:.1f}x target]"
            if args.strict:
                status = 1
    print(
        f"async overlap speedup (jobs={jobs}, epochs={args.async_epochs}): "
        f"{speedup:.2f}x{verdict}"
    )
    fragment = {
        "collect_jobs": jobs,
        "epochs": args.async_epochs,
        "epochs_per_second": medians,
        "speedup": speedup,
        "target": args.async_target,
        "target_enforceable_on_host": enforceable,
        "target_met": speedup >= args.async_target,
    }
    return fragment, status


def run_remote_leg(env: FloorplanEnv, args, cpu_count: int) -> tuple:
    """Lease-based TCP collection vs the same-width local pool.

    Returns ``(payload_fragment, exit_status)``.  Two localhost
    ``collect_worker.py`` subprocesses serve a ``collect_workers=2``
    trainer; the reference arm is the ``collect_jobs=2`` pipe-based
    pool.  Episodes are bitwise identical either way, so the measured
    ratio is the transport overhead alone.
    """
    workers = 2
    pool = RLPlannerTrainer(
        env,
        TrainerConfig(
            epochs=1,
            episodes_per_epoch=args.episodes,
            batch_size=args.batch_size,
            collect_jobs=workers,
            seed=args.seed,
            log_every=0,
            ppo=PPOConfig(),
        ),
    )
    remote = RLPlannerTrainer(
        env,
        TrainerConfig(
            epochs=1,
            episodes_per_epoch=args.episodes,
            batch_size=args.batch_size,
            collect_workers=workers,
            collect_bind="127.0.0.1:0",
            seed=args.seed,
            log_every=0,
            ppo=PPOConfig(),
        ),
    )
    host, port = remote.collector_address
    procs = [
        subprocess.Popen(
            [
                sys.executable,
                str(REPO_ROOT / "scripts" / "collect_worker.py"),
                "--connect",
                f"{host}:{port}",
                "--worker-id",
                f"bench-{index}",
                "--backoff-base",
                "0.1",
                "--backoff-max",
                "1.0",
            ],
            cwd=REPO_ROOT,
        )
        for index in range(workers)
    ]
    samples = {"pool": [], "remote": []}
    try:
        pool.collect_episodes(args.episodes)  # warm both transports
        remote.collect_episodes(args.episodes)
        for round_index in range(args.rounds):
            for arm, trainer in (("pool", pool), ("remote", remote)):
                rate = measure_window(
                    trainer, args.episodes, args.window_seconds
                )
                samples[arm].append(rate)
                print(
                    f"round {round_index}: collect[{arm:<6s}] "
                    f"workers={workers} {rate:8.1f} eps/s"
                )
        degraded = remote._collector.degraded
    finally:
        pool.close_collector()
        remote.close_collector()
        for proc in procs:
            try:
                proc.wait(timeout=20)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
    medians = {arm: statistics.median(rates) for arm, rates in samples.items()}
    ratio = medians["remote"] / medians["pool"]
    enforceable = cpu_count >= 4
    status = 0
    verdict = ""
    if degraded:
        # The measurement silently became pool-vs-local-fallback; say so
        # rather than reporting a meaningless ratio as the transport tax.
        verdict = "  [INVALID: remote collector degraded to local]"
        if args.strict:
            status = 1
    elif not args.smoke:
        if ratio >= args.remote_target:
            verdict = "  [ok]"
        elif not enforceable:
            verdict = (
                f"  [unmeasurable: coordinator + {workers} workers need "
                f">= 4 cores, host has {cpu_count}]"
            )
        else:
            verdict = f"  [below {args.remote_target:.2f}x budget]"
            if args.strict:
                status = 1
    print(
        f"remote/pool throughput ratio (workers={workers}, localhost): "
        f"{ratio:.2f}x{verdict}"
    )
    fragment = {
        "collect_workers": workers,
        "episodes_per_second": medians,
        "ratio_vs_pool": ratio,
        "target": args.remote_target,
        "target_enforceable_on_host": enforceable,
        "target_met": ratio >= args.remote_target,
        "degraded": degraded,
    }
    return fragment, status


def run(args) -> int:
    env = build_env(args.grid, args.system_seed)
    jobs_list = [int(j) for j in args.jobs_list.split(",")]
    cpu_count = os.cpu_count() or 1
    trainers = {
        jobs: make_trainer(env, args.batch_size, jobs, args.seed)
        for jobs in jobs_list
    }
    print(
        f"scenario: grid={args.grid} batch_size={args.batch_size} "
        f"episodes/call={args.episodes} on {cpu_count} cpu core(s)"
    )
    try:
        for trainer in trainers.values():  # warm pools, caches, code paths
            trainer.collect_episodes(args.episodes)

        samples: dict = {jobs: [] for jobs in jobs_list}
        for round_index in range(args.rounds):
            # Alternate arms inside each round so slow machine phases
            # hit every worker count, not just one.
            for jobs in jobs_list:
                rate = measure_window(
                    trainers[jobs], args.episodes, args.window_seconds
                )
                samples[jobs].append(rate)
                print(
                    f"round {round_index}: collect_jobs={jobs:<2d} "
                    f"{rate:8.1f} eps/s"
                )
    finally:
        for trainer in trainers.values():
            trainer.close_collector()

    medians = {jobs: statistics.median(samples[jobs]) for jobs in jobs_list}
    print()
    for jobs in jobs_list:
        print(f"collect_jobs={jobs:<2d} median {medians[jobs]:8.1f} eps/s")
    baseline = medians[jobs_list[0]]
    enforceable = cpu_count >= max(jobs_list)
    speedups = {}
    status = 0
    for jobs in jobs_list[1:]:
        speedup = medians[jobs] / baseline
        speedups[jobs] = speedup
        verdict = ""
        if not args.smoke and jobs == jobs_list[-1]:
            ok = speedup >= args.target
            if ok:
                verdict = "  [ok]"
            elif not enforceable:
                verdict = (
                    f"  [unmeasurable: {jobs} workers need >= {jobs} cores, "
                    f"host has {cpu_count}]"
                )
            else:
                verdict = f"  [below {args.target:.1f}x target]"
                if args.strict:
                    status = 1
        print(
            f"speedup collect_jobs={jobs} vs {jobs_list[0]}: "
            f"{speedup:.2f}x{verdict}"
        )

    print()
    async_fragment, async_status = run_async_leg(env, args, cpu_count)
    status = status or async_status

    print()
    remote_fragment, remote_status = run_remote_leg(env, args, cpu_count)
    status = status or remote_status

    payload = {
        "benchmark": "bench_collect",
        "mode": "smoke" if args.smoke else "full",
        "cpu_count": cpu_count,
        "scenario": {
            "grid_size": args.grid,
            "batch_size": args.batch_size,
            "episodes_per_call": args.episodes,
            "system_seed": args.system_seed,
        },
        "episodes_per_second": {str(j): medians[j] for j in jobs_list},
        "speedup_vs_in_process": {str(j): speedups[j] for j in speedups},
        "target": args.target,
        # The target presumes the pool has cores to spread over; a
        # single-core host measures broadcast overhead, not parallelism.
        "target_enforceable_on_host": enforceable,
        "target_met": bool(
            speedups and speedups[jobs_list[-1]] >= args.target
        ),
        "async_overlap": async_fragment,
        "remote_transport": remote_fragment,
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs-list",
        type=str,
        default="1,2,4",
        help="comma-separated collect_jobs counts; the first is the baseline",
    )
    parser.add_argument("--grid", type=int, default=32, help="placement grid size")
    parser.add_argument(
        "--batch-size",
        type=int,
        default=16,
        help="lockstep wave width inside each worker",
    )
    parser.add_argument(
        "--episodes", type=int, default=16, help="episodes per collection call"
    )
    parser.add_argument(
        "--rounds", type=int, default=5, help="alternating measurement rounds"
    )
    parser.add_argument(
        "--window-seconds",
        type=float,
        default=2.0,
        help="minimum seconds per measurement window",
    )
    parser.add_argument("--seed", type=int, default=0, help="trainer seed")
    parser.add_argument(
        "--system-seed", type=int, default=1, help="synthetic system seed"
    )
    parser.add_argument(
        "--target", type=float, default=2.0, help="required speedup multiple"
    )
    parser.add_argument(
        "--async-jobs",
        type=int,
        default=2,
        help="collect_jobs for the async-overlap leg (both arms)",
    )
    parser.add_argument(
        "--async-epochs",
        type=int,
        default=4,
        help="epochs per timed train() run in the async-overlap leg",
    )
    parser.add_argument(
        "--async-target",
        type=float,
        default=1.3,
        help="required async-vs-lockstep train() speedup (>=4-core hosts)",
    )
    parser.add_argument(
        "--remote-target",
        type=float,
        default=0.75,
        help="minimum remote/pool throughput ratio on localhost "
        "(>=4-core hosts): the lease-based TCP transport may cost at "
        "most this much vs the pipe-based pool at the same width",
    )
    parser.add_argument(
        "--out",
        type=str,
        default="BENCH_trainer.json",
        help="machine-readable result path",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero when the widest pool misses the target on a "
        "host with enough cores",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single fast round, no target check (CI)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.rounds = 1
        args.grid = min(args.grid, 16)
        args.episodes = min(args.episodes, 8)
        args.batch_size = min(args.batch_size, 8)
        args.window_seconds = min(args.window_seconds, 0.5)
        args.async_epochs = min(args.async_epochs, 2)
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
