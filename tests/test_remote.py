"""Lease-based multi-machine collection: bitwise invariance under
faults, fencing, degradation, and clean lifecycle.

Covers the PR-9 tentpole guarantees:

* remote collection is **bitwise** identical to the in-process replica
  at any ``workers`` granularity, with any number of leased workers —
  including fewer workers than slices (work stealing) and a worker
  that connects *before* the coordinator exists (reconnect backoff);
* every fault path converges to the same bytes: a result frame lost in
  transit (task timeout fences the wedged lease), a corrupted result
  (checksum fences the connection), a chaos disconnect (worker
  reconnects and re-leases), a silently dead worker (lease expiry
  requeues its slice);
* **first-delivery-wins**: a duplicate or stale (wrong-epoch) delivery
  is counted and dropped, never double-merged;
* transient slice errors re-queue and retry; deterministic slice
  errors raise :class:`RemoteSliceError` without retry;
* the degradation ladder (remote -> local pool -> in-process) keeps
  results bitwise, and a bounded re-probe lifts degradation only once
  a worker actually holds a lease again;
* lifecycle: coordinator shutdown drains leased workers to a clean
  exit 0; a worker's reconnect budget bounds give-up; the trainer
  integration (``collect_workers``) trains bitwise vs in-process and
  kill+resumes bitwise across a *different* worker count.
"""

import logging
import socket
import threading
import time

import numpy as np
import pytest

from repro.agent import RLPlannerTrainer, TrainerConfig
from repro.agent.networks import ActorCritic
from repro.env import EnvConfig, FloorplanEnv
from repro.nn import dumps_payload
from repro.parallel import remote as remote_module
from repro.parallel.chaos import ChaosInjector, ChaosSpec, set_chaos
from repro.parallel.collector import (
    POLICY_PAYLOAD_KIND,
    ReplicaCollector,
    partition_episodes,
)
from repro.parallel.faults import RetryPolicy
from repro.parallel.remote import (
    SLICE_RESULT_KIND,
    RemoteEpisodeCollector,
    RemoteSliceError,
    run_worker,
)
from repro.parallel.transport import recv_frame, send_frame
from repro.reward import RewardCalculator, RewardConfig
from repro.rl import PPOConfig, RNDConfig

CHANNELS = (4, 8, 8)
BATCH = 2
SEED = 3


@pytest.fixture(autouse=True)
def _no_chaos():
    yield
    set_chaos(None)


@pytest.fixture
def parts(small_system, small_fast_model):
    calc = RewardCalculator(
        small_fast_model,
        RewardConfig(lambda_wl=1e-4, use_bump_assignment=False),
    )
    return small_system, calc, EnvConfig(grid_size=10)


@pytest.fixture
def weights(parts):
    system, calc, env_config = parts
    env = FloorplanEnv(system, calc, env_config)
    network = ActorCritic(
        env.observation_shape,
        env.n_actions,
        channels=CHANNELS,
        rng=np.random.default_rng(0),
    )
    return dumps_payload(network.state_dict(), kind=POLICY_PAYLOAD_KIND)


def _collector(parts, **overrides):
    system, calc, env_config = parts
    defaults = dict(
        workers=4,
        batch_size=BATCH,
        seed=SEED,
        encoder_channels=CHANNELS,
        lease_s=10.0,
        worker_wait_s=20.0,
    )
    defaults.update(overrides)
    return RemoteEpisodeCollector(system, calc, env_config, **defaults)


def _reference(parts, weights, start, count, workers=4, greedy=False):
    system, calc, env_config = parts
    replica = ReplicaCollector(
        system, calc, env_config, CHANNELS, BATCH, SEED
    )
    slices = list(enumerate(partition_episodes(start, count, BATCH, workers)))
    results = replica.collect(weights, slices, greedy)
    return [pair for index, _ in slices for pair in results[index]]


def _distill(pairs):
    """Bitwise-comparable episode pairs (wall-clock fields excluded)."""
    out = []
    for episode, summary in pairs:
        breakdown = summary["breakdown"]
        out.append(
            (
                float(episode.total_reward).hex(),
                float(breakdown.reward).hex(),
                float(breakdown.wirelength).hex(),
                float(breakdown.max_temperature_c).hex(),
                float(breakdown.thermal_penalty).hex(),
                sorted(summary["placement"].positions.items()),
            )
        )
    return out


def _fast_policy():
    return RetryPolicy(backoff_base=0.02, backoff_max=0.2, seed=1)


def _start_worker(host, port, worker_id, **kwargs):
    """``run_worker`` on a thread; returns (thread, exit-code box)."""
    box = {}
    kwargs.setdefault("policy", _fast_policy())

    def target():
        try:
            box["code"] = run_worker(host, port, worker_id=worker_id, **kwargs)
        except OSError as error:
            box["error"] = error

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread, box


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


# ----------------------------------------------------------------------
# bitwise invariance on the happy path
# ----------------------------------------------------------------------


class TestRemoteBitwise:
    @pytest.mark.parametrize(
        "workers,leased", [(1, 1), (3, 2), (4, 1), (4, 2)]
    )
    def test_matches_in_process_replica(self, parts, weights, workers, leased):
        """Any slice granularity x any (smaller) leased worker count ==
        the in-process replica, bitwise.  leased < slices exercises the
        work-stealing queue."""
        reference = _reference(parts, weights, 0, 5, workers=workers)
        collector = _collector(parts, workers=workers)
        host, port = collector.address
        stop = threading.Event()
        threads = [
            _start_worker(host, port, f"bw{index}", stop_event=stop)[0]
            for index in range(leased)
        ]
        try:
            got = collector.collect_with_weights(weights, 0, 5)
        finally:
            collector.close()
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
        assert len(got) == 5
        assert _distill(got) == _distill(reference)
        assert not collector.degraded

    def test_prefetch_and_cancel(self, parts, weights):
        reference = _reference(parts, weights, 5, 5)
        collector = _collector(parts)
        host, port = collector.address
        stop = threading.Event()
        thread, _ = _start_worker(host, port, "pw0", stop_event=stop)
        try:
            # A cancelled prefetch consumes nothing: the follow-up
            # prefetch of the same range returns the same bytes.
            collector.prefetch(weights, 5, 5)
            assert collector.prefetching
            collector.cancel_prefetch()
            assert not collector.prefetching
            collector.prefetch(weights, 5, 5)
            with pytest.raises(RuntimeError, match="already outstanding"):
                collector.prefetch(weights, 10, 5)
            got = collector.collect_prefetched()
        finally:
            collector.close()
            stop.set()
            thread.join(timeout=10)
        assert _distill(got) == _distill(reference)

    def test_worker_connects_before_coordinator_exists(self, parts, weights):
        """A worker started first simply backs off (connection refused
        is transient) and leases once the coordinator binds."""
        port = _free_port()
        stop = threading.Event()
        thread, box = _start_worker(
            "127.0.0.1", port, "early", stop_event=stop
        )
        time.sleep(0.15)  # let it fail at least one connection attempt
        reference = _reference(parts, weights, 0, 3)
        collector = _collector(parts, port=port)
        try:
            got = collector.collect_with_weights(weights, 0, 3)
        finally:
            collector.close()
            stop.set()
            thread.join(timeout=10)
        assert _distill(got) == _distill(reference)
        assert box.get("code") == 0


# ----------------------------------------------------------------------
# fault recovery: every path converges to the same bytes
# ----------------------------------------------------------------------


class TestFaultRecovery:
    def test_lost_result_frame_fences_on_task_timeout(self, parts, weights):
        """A result frame swallowed in transit leaves the worker live
        and heartbeating but the slice undelivered: only the per-task
        clock (not the heartbeat clock) can catch it."""
        set_chaos(
            ChaosInjector(
                [
                    ChaosSpec(
                        point="transport.send",
                        mode="drop",
                        match=":result",
                        times=1,
                    )
                ]
            )
        )
        reference = _reference(parts, weights, 0, 5)
        collector = _collector(parts, task_timeout_s=0.7)
        host, port = collector.address
        stop = threading.Event()
        thread, _ = _start_worker(host, port, "dropw", stop_event=stop)
        try:
            got = collector.collect_with_weights(weights, 0, 5)
            stats = collector._coordinator.stats
            assert stats["fenced"] >= 1
            assert stats["requeued"] >= 1
        finally:
            collector.close()
            stop.set()
            thread.join(timeout=10)
        assert _distill(got) == _distill(reference)

    def test_corrupted_result_fences_and_redispatches(self, parts, weights):
        set_chaos(
            ChaosInjector(
                [
                    ChaosSpec(
                        point="transport.send",
                        mode="corrupt",
                        match=":result",
                        times=1,
                    )
                ]
            )
        )
        reference = _reference(parts, weights, 0, 5)
        collector = _collector(parts)
        host, port = collector.address
        stop = threading.Event()
        thread, _ = _start_worker(host, port, "corw", stop_event=stop)
        try:
            got = collector.collect_with_weights(weights, 0, 5)
        finally:
            collector.close()
            stop.set()
            thread.join(timeout=10)
        assert _distill(got) == _distill(reference)

    def test_chaos_disconnect_reconnects_and_releases(self, parts, weights):
        set_chaos(
            ChaosInjector(
                [
                    ChaosSpec(
                        point="transport.recv",
                        mode="disconnect",
                        match="worker:discw",
                        times=1,
                    )
                ]
            )
        )
        reference = _reference(parts, weights, 0, 5)
        collector = _collector(parts)
        host, port = collector.address
        stop = threading.Event()
        thread, _ = _start_worker(host, port, "discw", stop_event=stop)
        try:
            got = collector.collect_with_weights(weights, 0, 5)
            # The same worker re-leased after the injected disconnect.
            assert collector._coordinator.stats["registered"] >= 2
        finally:
            collector.close()
            stop.set()
            thread.join(timeout=10)
        assert _distill(got) == _distill(reference)

    def test_silent_death_lease_expiry_requeues_slice(self, parts, weights):
        """A registered client that takes a task and never heartbeats
        again (machine death) is fenced at lease expiry; its slice
        lands on a live worker; nothing is merged twice."""
        reference = _reference(parts, weights, 0, 5)
        collector = _collector(parts, lease_s=0.6)
        host, port = collector.address

        dead = socket.create_connection((host, port), timeout=5.0)
        dead.settimeout(5.0)
        send_frame(dead, "hello", {"worker": "deadw"})
        kind, _, _ = recv_frame(dead)
        assert kind == "lease"
        # Leased and ready — it may now be handed a slice — but it
        # never beats and never serves.

        stop = threading.Event()
        thread, _ = _start_worker(host, port, "livew", stop_event=stop)
        try:
            got = collector.collect_with_weights(weights, 0, 5)
            assert collector._coordinator.stats["fenced"] >= 1
        finally:
            dead.close()
            collector.close()
            stop.set()
            thread.join(timeout=10)
        assert len(got) == 5  # exactly: no slice lost, none duplicated
        assert _distill(got) == _distill(reference)

    def test_duplicate_and_stale_deliveries_never_double_merge(
        self, parts, weights
    ):
        """A worker that delivers every slice twice — and then replays
        an old epoch's result into the next epoch — changes nothing:
        first-delivery-wins keyed on (epoch, slice, digest)."""
        system, calc, env_config = parts
        replica = ReplicaCollector(
            system, calc, env_config, CHANNELS, BATCH, SEED
        )
        collector = _collector(parts, workers=2)
        host, port = collector.address

        sock = socket.create_connection((host, port), timeout=10.0)
        sock.settimeout(10.0)
        send_frame(sock, "hello", {"worker": "twicew"})
        kind, lease_meta, _ = recv_frame(sock)
        assert kind == "lease"
        replayed = {}
        done = threading.Event()

        def serve_twice():
            while not done.is_set():
                try:
                    frame = recv_frame(sock, idle_ok=True)
                except OSError:
                    return
                if frame is None:
                    continue
                kind, meta, blob = frame
                if kind == "shutdown":
                    return
                if kind != "task":
                    continue
                index = meta["task"]
                pairs = replica.collect(
                    blob, [(index, (meta["start"], meta["count"]))], False
                )[index]
                echo = {
                    "task": index,
                    "epoch": meta["epoch"],
                    "digest": meta["digest"],
                    "lease": lease_meta["lease"],
                }
                result = dumps_payload(
                    {"pairs": pairs}, kind=SLICE_RESULT_KIND
                )
                send_frame(sock, "result", echo, result)  # delivery
                send_frame(sock, "result", echo, result)  # duplicate
                replayed.setdefault("frame", (echo, result))

        server = threading.Thread(target=serve_twice, daemon=True)
        server.start()
        try:
            reference = _reference(parts, weights, 0, 5, workers=2)
            got = collector.collect_with_weights(weights, 0, 5)
            stats = collector._coordinator.stats
            assert stats["duplicate_results"] >= 1
            assert len(got) == 5
            assert _distill(got) == _distill(reference)

            # Replay epoch 1's result while epoch 2 is in flight: the
            # epoch-id key rejects it as stale.
            echo, result = replayed["frame"]
            send_frame(sock, "result", echo, result)
            reference2 = _reference(parts, weights, 5, 5, workers=2)
            got2 = collector.collect_with_weights(weights, 5, 5)
            assert stats["stale_results"] >= 1
            assert _distill(got2) == _distill(reference2)
        finally:
            done.set()
            collector.close()
            server.join(timeout=10)
            sock.close()

    def test_transient_slice_error_requeues_and_retries(
        self, parts, weights, monkeypatch
    ):
        reference = _reference(parts, weights, 0, 5)
        collector = _collector(parts)  # built before the patch: its
        # fallback replica stays healthy

        real = remote_module.ReplicaCollector

        class FlakyReplica(real):
            failures = 0

            def collect(self, *args, **kwargs):
                if FlakyReplica.failures < 1:
                    FlakyReplica.failures += 1
                    raise OSError("transient remote hiccup")
                return super().collect(*args, **kwargs)

        monkeypatch.setattr(remote_module, "ReplicaCollector", FlakyReplica)
        host, port = collector.address
        stop = threading.Event()
        thread, _ = _start_worker(host, port, "flakyw", stop_event=stop)
        try:
            got = collector.collect_with_weights(weights, 0, 5)
            assert (
                collector._coordinator.stats["transient_task_errors"] >= 1
            )
        finally:
            collector.close()
            stop.set()
            thread.join(timeout=10)
        assert _distill(got) == _distill(reference)

    def test_deterministic_slice_error_raises_without_retry(
        self, parts, weights, monkeypatch
    ):
        collector = _collector(parts)
        real = remote_module.ReplicaCollector

        class BrokenReplica(real):
            calls = 0

            def collect(self, *args, **kwargs):
                BrokenReplica.calls += 1
                raise ValueError("deterministic slice bug")

        monkeypatch.setattr(remote_module, "ReplicaCollector", BrokenReplica)
        host, port = collector.address
        stop = threading.Event()
        thread, _ = _start_worker(host, port, "brokew", stop_event=stop)
        try:
            with pytest.raises(RemoteSliceError, match="deterministic"):
                collector.collect_with_weights(weights, 0, 5)
            assert BrokenReplica.calls == 1  # no blind retry of a bug
        finally:
            collector.close()
            stop.set()
            thread.join(timeout=10)


# ----------------------------------------------------------------------
# degradation ladder
# ----------------------------------------------------------------------


class TestDegradationLadder:
    @pytest.mark.parametrize("local_jobs", [1, 2])
    def test_no_workers_falls_back_bitwise(self, parts, weights, local_jobs):
        reference = _reference(parts, weights, 0, 5)
        collector = _collector(
            parts,
            worker_wait_s=0.2,
            max_remote_failures=1,
            local_jobs=local_jobs,
        )
        try:
            got = collector.collect_with_weights(weights, 0, 5)
            assert collector.degraded
            # Degraded rounds skip the coordinator entirely (no
            # worker_wait_s stall per epoch).
            got2 = collector.collect_with_weights(weights, 5, 5)
        finally:
            collector.close()
        assert _distill(got) == _distill(reference)
        assert _distill(got2) == _distill(_reference(parts, weights, 5, 5))

    def test_reprobe_lifts_degradation_once_a_worker_leases(
        self, parts, weights
    ):
        collector = _collector(
            parts, worker_wait_s=0.2, max_remote_failures=1, reprobe_after=1
        )
        stop = threading.Event()
        thread = None
        try:
            collector.collect_with_weights(weights, 0, 3)
            assert collector.degraded

            # One non-remote round; still degraded with no worker up
            # (the re-probe is gated on a live lease, not just time).
            collector.collect_with_weights(weights, 3, 3)
            collector.collect_with_weights(weights, 6, 3)
            assert collector.degraded

            host, port = collector.address
            thread, _ = _start_worker(host, port, "backw", stop_event=stop)
            deadline = time.monotonic() + 10.0
            while (
                not collector._coordinator.live_workers()
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            assert collector._coordinator.live_workers() >= 1

            got = collector.collect_with_weights(weights, 9, 3)
            assert not collector.degraded
        finally:
            collector.close()
            stop.set()
            if thread is not None:
                thread.join(timeout=10)
        assert _distill(got) == _distill(_reference(parts, weights, 9, 3))


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------


class TestWorkerLifecycle:
    def test_shutdown_drains_workers_to_exit_zero(self, parts, weights):
        collector = _collector(parts)
        host, port = collector.address
        stop = threading.Event()
        workers = [
            _start_worker(host, port, f"drain{index}", stop_event=stop)
            for index in range(2)
        ]
        deadline = time.monotonic() + 10.0
        while (
            collector._coordinator.live_workers() < 2
            and time.monotonic() < deadline
        ):
            time.sleep(0.05)
        collector.collect_with_weights(weights, 0, 3)
        collector.close()
        for thread, box in workers:
            thread.join(timeout=10)
            assert box.get("code") == 0, box
        # close() is idempotent and the port is released.
        collector.close()

    def test_stop_event_exits_zero_mid_lease(self, parts):
        collector = _collector(parts)
        host, port = collector.address
        stop = threading.Event()
        thread, box = _start_worker(host, port, "stopw", stop_event=stop)
        deadline = time.monotonic() + 10.0
        while (
            not collector._coordinator.live_workers()
            and time.monotonic() < deadline
        ):
            time.sleep(0.05)
        stop.set()
        thread.join(timeout=10)
        assert box.get("code") == 0
        collector.close()

    def test_reconnect_budget_exhaustion_raises(self):
        port = _free_port()  # nothing listens here
        with pytest.raises(OSError):
            run_worker(
                "127.0.0.1",
                port,
                worker_id="giveupw",
                policy=_fast_policy(),
                max_reconnects=2,
                connect_timeout=0.5,
            )

    def test_validation(self, parts):
        system, calc, env_config = parts
        with pytest.raises(ValueError, match="workers >= 1"):
            RemoteEpisodeCollector(
                system, calc, env_config, workers=0, batch_size=2, seed=0
            )
        with pytest.raises(ValueError, match="batched engine"):
            RemoteEpisodeCollector(
                system, calc, env_config, workers=2, batch_size=1, seed=0
            )


# ----------------------------------------------------------------------
# trainer integration
# ----------------------------------------------------------------------


def _hex(value) -> str:
    return float(value).hex()


def _distill_result(result) -> dict:
    return {
        "best_reward": _hex(result.best_reward),
        "history": [
            {
                key: (_hex(v) if isinstance(v, float) else v)
                for key, v in entry.items()
                if key != "elapsed"
            }
            for entry in result.history
        ],
        "placement": (
            None
            if result.best_placement is None
            else sorted(result.best_placement.positions.items())
        ),
    }


@pytest.fixture
def trainer_env(parts):
    system, calc, env_config = parts
    return FloorplanEnv(system, calc, env_config)


def _make_trainer(env, **overrides):
    defaults = dict(
        epochs=2,
        episodes_per_epoch=5,
        batch_size=2,
        seed=3,
        log_every=0,
        encoder_channels=(4, 8, 8),
        ppo=PPOConfig(minibatch_size=8, update_epochs=2),
        rnd=RNDConfig(bonus_scale=0.5),
    )
    defaults.update(overrides)
    return RLPlannerTrainer(env, TrainerConfig(**defaults))


class _Interrupted(Exception):
    pass


class TestTrainerIntegration:
    def test_training_is_bitwise_vs_in_process(self, trainer_env):
        reference = _make_trainer(trainer_env).train()
        trainer = _make_trainer(trainer_env, collect_workers=2)
        host, port = trainer.collector_address
        stop = threading.Event()
        thread, box = _start_worker(host, port, "tw0", stop_event=stop)
        try:
            result = trainer.train()
        finally:
            trainer.close_collector()
            stop.set()
            thread.join(timeout=10)
        assert _distill_result(result) == _distill_result(reference)
        assert box.get("code") == 0

    def test_kill_and_resume_across_worker_counts(self, trainer_env, tmp_path):
        """Remote run killed at epoch 1 resumes bitwise under a
        *different* slice granularity and leased worker count."""
        reference = _make_trainer(trainer_env).train()

        path = tmp_path / "ckpt.npz"
        interrupted = _make_trainer(
            trainer_env, collect_workers=2, checkpoint_every=1
        )
        host, port = interrupted.collector_address
        stop = threading.Event()
        thread, _ = _start_worker(host, port, "kr0", stop_event=stop)

        def kill_at_checkpoint(state):
            interrupted.save_checkpoint(path)
            raise _Interrupted()

        try:
            with pytest.raises(_Interrupted):
                interrupted.train(checkpoint_fn=kill_at_checkpoint)
        finally:
            interrupted.close_collector()
            stop.set()
            thread.join(timeout=10)
        assert not interrupted._collector.active

        resumed = _make_trainer(
            trainer_env, collect_workers=3, checkpoint_every=1
        )
        host, port = resumed.collector_address
        stop = threading.Event()
        threads = [
            _start_worker(host, port, f"kr{index}", stop_event=stop)[0]
            for index in range(2)
        ]
        resumed.load_checkpoint(path)
        assert resumed._progress["epochs_run"] == 1
        try:
            result = resumed.train()
        finally:
            resumed.close_collector()
            stop.set()
            for worker_thread in threads:
                worker_thread.join(timeout=10)
        assert _distill_result(result) == _distill_result(reference)

    def test_state_dict_records_collect_workers(self, trainer_env):
        trainer = _make_trainer(trainer_env, collect_workers=2)
        try:
            state = trainer.state_dict()
        finally:
            trainer.close_collector()
        assert state["collect_workers"] == 2

    def test_batch_size_one_disables_remote_with_warning(
        self, trainer_env, caplog
    ):
        logger = logging.getLogger("repro")
        logger.addHandler(caplog.handler)
        try:
            trainer = _make_trainer(
                trainer_env, batch_size=1, collect_workers=2, rnd=None
            )
        finally:
            logger.removeHandler(caplog.handler)
        assert trainer._collector is None
        assert trainer.collect_workers == 0
        assert any(
            "sequential engine" in rec.getMessage()
            for rec in caplog.records
        )

    def test_config_validation(self, trainer_env):
        with pytest.raises(ValueError, match="collect_workers"):
            TrainerConfig(collect_workers=-1)
        with pytest.raises(ValueError, match="collect_bind"):
            TrainerConfig(collect_workers=2, collect_bind="no-port-here")
        # The bind format is only validated when remote collection is
        # actually on; the default stays inert.
        TrainerConfig(collect_bind="no-port-here")
