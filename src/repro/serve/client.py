"""Stdlib client for the floorplanning service (urllib, no deps).

Used by ``repro.cli submit``, the CI smoke, and the serve benchmark.
JSON floats round-trip exactly through Python's encoder/parser, so
values read back here are bitwise-comparable against locally computed
results.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """Server answered with an error status (message from its body)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    def __init__(self, base_url: str, timeout: float = 600.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ------------------------------------------------------

    def _request(
        self, method: str, path: str, body: bytes | None = None,
        content_type: str = "application/json",
    ) -> dict:
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=body,
            method=method,
            headers={"Content-Type": content_type} if body else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                return json.loads(reply.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raw = error.read().decode("utf-8", errors="replace")
            try:
                message = json.loads(raw).get("error", raw)
            except json.JSONDecodeError:
                message = raw
            raise ServeError(error.code, message) from None

    def _post_json(self, path: str, payload: dict) -> dict:
        return self._request(
            "POST", path, json.dumps(payload).encode("utf-8")
        )

    # -- endpoints ------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/v1/health")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def benchmarks(self) -> list:
        return self._request("GET", "/v1/benchmarks")["benchmarks"]

    def policies(self) -> dict:
        return self._request("GET", "/v1/policies")["policies"]

    def place(self, system: str, method: str, budget: dict | None = None) -> dict:
        return self._post_json(
            "/v1/place",
            {"system": system, "method": method, "budget": budget or {}},
        )

    def evaluate(
        self,
        system: str,
        placement: dict,
        evaluator: str = "fast",
        budget: dict | None = None,
    ) -> dict:
        return self._post_json(
            "/v1/evaluate",
            {
                "system": system,
                "placement": placement,
                "evaluator": evaluator,
                "budget": budget or {},
            },
        )

    def rollout(
        self,
        policy: str,
        system: str,
        seed: int = 0,
        greedy: bool = False,
        budget: dict | None = None,
    ) -> dict:
        return self._post_json(
            "/v1/rollout",
            {
                "policy": policy,
                "system": system,
                "seed": seed,
                "greedy": greedy,
                "budget": budget or {},
            },
        )

    def register_policy(
        self, name: str, payload: bytes, channels=(16, 32, 32)
    ) -> dict:
        channel_spec = ",".join(str(int(c)) for c in channels)
        return self._request(
            "POST",
            f"/v1/policies?name={name}&channels={channel_spec}",
            payload,
            content_type="application/octet-stream",
        )
