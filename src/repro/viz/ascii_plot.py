"""ASCII floorplan and thermal-map rendering.

Terminal-friendly stand-ins for the paper's figures: each chiplet is
drawn with a distinct letter on a character grid; thermal fields render
as a shade ramp.
"""

from __future__ import annotations

import numpy as np

from repro.chiplet import Placement
from repro.geometry import PlacementGrid

__all__ = ["render_floorplan", "render_thermal_map"]

_SHADES = " .:-=+*#%@"


def render_floorplan(
    placement: Placement, width: int = 60, height: int = 30
) -> str:
    """Draw a placement as an ASCII grid with a legend.

    Each die is filled with a letter (A, B, ...); '.' is empty
    interposer.  Aspect ratio is approximated by the character cell.
    """
    system = placement.system
    grid = PlacementGrid(
        system.interposer.width, system.interposer.height, height, width
    )
    canvas = np.full((height, width), ".", dtype="<U1")
    legend = []
    letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
    for index, name in enumerate(placement.placed_names):
        letter = letters[index % len(letters)]
        rect = placement.footprint(name)
        occupied = grid.coverage(rect) >= 0.5
        canvas[occupied] = letter
        chiplet = system.chiplet(name)
        legend.append(
            f"  {letter} = {name} ({rect.w:g}x{rect.h:g} mm, {chiplet.power:g} W)"
        )
    # Row 0 is the bottom of the interposer: flip for display.
    rows = ["".join(row) for row in canvas[::-1]]
    border = "+" + "-" * width + "+"
    body = "\n".join("|" + row + "|" for row in rows)
    header = (
        f"{system.name}: {system.interposer.width:g} x "
        f"{system.interposer.height:g} mm interposer"
    )
    return "\n".join([header, border, body, border] + legend)


def render_thermal_map(
    field: np.ndarray, width: int = 60, height: int = 30, unit: str = "K"
) -> str:
    """Render a 2D temperature field as an ASCII shade map."""
    field = np.asarray(field, dtype=np.float64)
    if field.ndim != 2:
        raise ValueError("expected a 2D field")
    # Downsample/upsample by nearest indexing.
    rows_idx = np.linspace(0, field.shape[0] - 1, height).astype(int)
    cols_idx = np.linspace(0, field.shape[1] - 1, width).astype(int)
    sampled = field[np.ix_(rows_idx, cols_idx)]
    lo, hi = float(sampled.min()), float(sampled.max())
    span = max(hi - lo, 1e-9)
    levels = ((sampled - lo) / span * (len(_SHADES) - 1)).astype(int)
    rows = ["".join(_SHADES[v] for v in row) for row in levels[::-1]]
    border = "+" + "-" * width + "+"
    body = "\n".join("|" + row + "|" for row in rows)
    footer = f"min {lo:.2f} {unit}   max {hi:.2f} {unit}"
    return "\n".join([border, body, border, footer])
