"""Unit and property tests for the placement grid."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry import PlacementGrid, Rect


@pytest.fixture
def grid():
    return PlacementGrid(width=40.0, height=20.0, rows=10, cols=20)


class TestBasics:
    def test_cell_size(self, grid):
        assert grid.dx == pytest.approx(2.0)
        assert grid.dy == pytest.approx(2.0)
        assert grid.cell_area == pytest.approx(4.0)
        assert grid.n_cells == 200

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            PlacementGrid(10, 10, 0, 5)
        with pytest.raises(ValueError):
            PlacementGrid(-1, 10, 5, 5)

    def test_cell_origin_and_center(self, grid):
        assert grid.cell_origin(0, 0) == (0.0, 0.0)
        assert grid.cell_origin(1, 3) == (6.0, 2.0)
        assert grid.cell_center(0, 0) == (1.0, 1.0)

    def test_cell_out_of_range(self, grid):
        with pytest.raises(ValueError):
            grid.cell_origin(10, 0)
        with pytest.raises(ValueError):
            grid.cell_rect(0, 20)

    def test_locate(self, grid):
        assert grid.locate(0.0, 0.0) == (0, 0)
        assert grid.locate(5.0, 3.0) == (1, 2)
        # Far boundary clamps into the last cell.
        assert grid.locate(40.0, 20.0) == (9, 19)

    def test_locate_outside_raises(self, grid):
        with pytest.raises(ValueError):
            grid.locate(-0.1, 0.0)
        with pytest.raises(ValueError):
            grid.locate(0.0, 20.1)

    def test_flat_index_roundtrip(self, grid):
        for row, col in [(0, 0), (3, 7), (9, 19)]:
            assert grid.unflatten(grid.flat_index(row, col)) == (row, col)

    def test_unflatten_out_of_range(self, grid):
        with pytest.raises(ValueError):
            grid.unflatten(200)


class TestCoverage:
    def test_full_cell_coverage(self, grid):
        cover = grid.coverage(Rect(0, 0, 2, 2))
        assert cover[0, 0] == pytest.approx(1.0)
        assert cover.sum() == pytest.approx(1.0)

    def test_half_cell_coverage(self, grid):
        cover = grid.coverage(Rect(0, 0, 1, 2))
        assert cover[0, 0] == pytest.approx(0.5)

    def test_coverage_conserves_area(self, grid):
        rect = Rect(3.3, 1.7, 7.9, 5.1)
        cover = grid.coverage(rect)
        assert cover.sum() * grid.cell_area == pytest.approx(rect.area, rel=1e-9)

    def test_coverage_clips_to_grid(self, grid):
        rect = Rect(38.0, 18.0, 10.0, 10.0)  # hangs off the top-right
        cover = grid.coverage(rect)
        assert cover.sum() * grid.cell_area == pytest.approx(4.0)

    def test_coverage_outside_is_zero(self, grid):
        cover = grid.coverage(Rect(100, 100, 5, 5))
        assert cover.sum() == 0.0

    def test_occupancy_is_boolean_support(self, grid):
        rect = Rect(0.5, 0.5, 3.0, 1.0)
        occ = grid.occupancy(rect)
        assert occ.dtype == bool
        assert occ.sum() == (grid.coverage(rect) > 0).sum()

    @given(
        x=st.floats(0, 30, allow_nan=False),
        y=st.floats(0, 12, allow_nan=False),
        w=st.floats(0.5, 9, allow_nan=False),
        h=st.floats(0.5, 7, allow_nan=False),
    )
    def test_interior_rect_area_conserved(self, x, y, w, h):
        grid = PlacementGrid(40.0, 20.0, 10, 20)
        rect = Rect(x, y, w, h)
        cover = grid.coverage(rect)
        assert cover.sum() * grid.cell_area == pytest.approx(rect.area, rel=1e-6)
        assert np.all(cover >= 0.0) and np.all(cover <= 1.0 + 1e-12)

    @given(
        row=st.integers(0, 9),
        col=st.integers(0, 19),
    )
    def test_cell_rect_covers_exactly_its_cell(self, row, col):
        grid = PlacementGrid(40.0, 20.0, 10, 20)
        cover = grid.coverage(grid.cell_rect(row, col))
        assert cover[row, col] == pytest.approx(1.0)
        assert cover.sum() == pytest.approx(1.0)
