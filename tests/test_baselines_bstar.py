"""Tests for the B*-tree floorplanner (paper reference [1])."""

import numpy as np
import pytest

from repro.baselines import BStarConfig, BStarFloorplanner, BStarTree
from repro.chiplet import Chiplet, ChipletSystem, Interposer
from repro.chiplet.validate import placement_violations, validate_placement
from repro.reward import RewardCalculator, RewardConfig


@pytest.fixture
def calculator(small_fast_model):
    return RewardCalculator(
        small_fast_model, RewardConfig(lambda_wl=1e-4, use_bump_assignment=False)
    )


def make_tree(system, seed=0):
    return BStarTree(system, np.random.default_rng(seed))


class TestBStarTree:
    def test_initial_tree_valid(self, small_system):
        tree = make_tree(small_system)
        tree.validate()
        assert tree.n_nodes == small_system.n_chiplets

    def test_pack_produces_complete_placement(self, small_system):
        placement = make_tree(small_system).pack()
        assert placement.is_complete

    def test_pack_respects_spacing(self, small_system):
        placement = make_tree(small_system).pack()
        spacing = small_system.interposer.min_spacing
        rects = list(placement.footprints().values())
        for i, a in enumerate(rects):
            for b in rects[i + 1 :]:
                assert not a.overlaps(b)
                assert a.gap(b) >= spacing - 1e-9

    def test_pack_is_compacted(self, small_system):
        """Left-bottom packing: some die must touch each axis origin."""
        placement = make_tree(small_system).pack()
        rects = list(placement.footprints().values())
        assert min(r.x for r in rects) == pytest.approx(0.0)
        assert min(r.y for r in rects) == pytest.approx(0.0)

    def test_left_child_sits_right_of_parent(self, small_system):
        tree = make_tree(small_system)
        placement = tree.pack()
        spacing = small_system.interposer.min_spacing
        for node in range(tree.n_nodes):
            child = tree.left[node]
            if child == -1:
                continue
            parent_rect = placement.footprint(tree.module[node])
            child_rect = placement.footprint(tree.module[child])
            assert child_rect.x == pytest.approx(
                parent_rect.x2 + spacing, abs=1e-9
            )

    def test_perturbations_keep_tree_valid(self, small_system):
        rng = np.random.default_rng(1)
        tree = make_tree(small_system)
        for _ in range(100):
            move = rng.integers(3)
            if move == 0:
                tree.rotate_random(rng)
            elif move == 1:
                tree.swap_random(rng)
            else:
                tree.move_random(rng)
            tree.validate()
            assert tree.pack().is_complete

    def test_copy_is_independent(self, small_system):
        tree = make_tree(small_system)
        clone = tree.copy()
        clone.rotated[0] = not clone.rotated[0]
        assert tree.rotated[0] != clone.rotated[0]

    def test_swap_changes_modules(self, small_system):
        rng = np.random.default_rng(2)
        tree = make_tree(small_system)
        before = list(tree.module)
        assert tree.swap_random(rng)
        assert tree.module != before
        assert sorted(tree.module) == sorted(before)


class TestBStarFloorplanner:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            BStarConfig(rotate_fraction=0.5, swap_fraction=0.5, move_fraction=0.5)

    def test_run_produces_legal_floorplan(self, small_system, calculator):
        planner = BStarFloorplanner(
            small_system, calculator, BStarConfig(n_iterations=60, seed=0)
        )
        result = planner.run()
        validate_placement(result.placement)
        assert result.reward < 0.0
        assert result.n_evaluations > 5

    def test_compaction_tradeoff_vs_spread(self, small_system, calculator):
        """The compacted baseline should run hotter than a spread layout."""
        planner = BStarFloorplanner(
            small_system, calculator, BStarConfig(n_iterations=40, seed=0)
        )
        result = planner.run()
        from repro.baselines import random_search

        spread = random_search(small_system, calculator, n_samples=20, seed=1)
        # Compacted packing concentrates the dies in one corner; its
        # hottest die should be no cooler than the best spread layout's.
        assert (
            result.breakdown.max_temperature_c
            >= spread.breakdown.max_temperature_c - 1.0
        )

    def test_infeasible_system_raises(self, calculator, small_fast_model):
        # Dies that fit individually but never as one compacted block.
        system = ChipletSystem(
            "nofit",
            Interposer(10, 10, min_spacing=3.0),
            (
                Chiplet("a", 6, 6, 1.0),
                Chiplet("b", 6, 6, 1.0),
                Chiplet("c", 6, 6, 1.0),
            ),
        )
        calc = _FakeCalc()
        planner = BStarFloorplanner(system, calc, BStarConfig(n_iterations=5))
        with pytest.raises(RuntimeError, match="no legal compacted"):
            planner.run()


class _FakeCalc:
    def evaluate(self, placement):  # pragma: no cover - never reached
        raise AssertionError("should not evaluate")
