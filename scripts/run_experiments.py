"""Regenerate every paper table and dump JSON artifacts.

This is the script behind the numbers in EXPERIMENTS.md.  Budgets are
chosen to finish in tens of minutes on one CPU; pass ``--paper-scale``
for the full regime and ``--jobs N`` to fan the independent
(benchmark x method) arms and Table II dataset shards over N worker
processes (results are identical at any ``--jobs``; only the wall
clock changes).

Pass ``--resume`` to make the sweep durable: every (benchmark x
method) arm and Table II shard publishes its result to the
content-addressed run store, so a re-run after an interruption skips
finished work and restarts in-flight arms from their latest checkpoint
— with results bitwise identical to an uninterrupted run.

Fault tolerance: transiently failing jobs (dead workers, OS errors)
retry automatically (``--retries``), stragglers past ``--job-timeout``
are killed and retried, and ``--keep-going`` quarantines permanently
failing arms instead of aborting — every independent arm still runs
and publishes, the per-job triage lands in ``<out>/report.json``, and
the script exits nonzero on a partial sweep.

Usage:
    python scripts/run_experiments.py [--paper-scale] [--jobs 4] \
        [--resume] [--keep-going] [--out bench_results]
"""

import argparse
import json
import sys
import time
from dataclasses import asdict
from pathlib import Path

from repro.experiments import run_table2
from repro.experiments.report import save_results
from repro.experiments.runner import ExperimentBudget
from repro.experiments.table1 import TABLE1_SYSTEMS, run_table1
from repro.experiments.table3 import improvement_summary, run_table3
from repro.parallel import (
    RetryPolicy,
    SweepReport,
    resolve_collect_jobs,
    resolve_jobs,
)
from repro.store import DEFAULT_STORE_DIR, RunStore


def parse_args(argv=None):
    parser = argparse.ArgumentParser()
    parser.add_argument("--paper-scale", action="store_true")
    parser.add_argument("--out", type=str, default="bench_results")
    parser.add_argument("--t2-systems", type=int, default=500)
    parser.add_argument("--epochs", type=int, default=80)
    parser.add_argument("--episodes", type=int, default=16)
    parser.add_argument("--grid", type=int, default=24)
    parser.add_argument("--sa-iters", type=int, default=150)
    parser.add_argument(
        "--batch-size",
        type=int,
        default=16,
        help="rollout batch width for RL collection (1 = sequential)",
    )
    parser.add_argument(
        "--collect-jobs",
        type=resolve_collect_jobs,
        default=1,
        help="worker processes for episode collection within each RL "
        "arm ('auto' = available CPUs, in-process with a warning on "
        "single-CPU hosts); bitwise identical at any count, needs "
        "--batch-size >= 2 to take effect",
    )
    parser.add_argument(
        "--collect-workers",
        type=int,
        default=0,
        help="remote (multi-machine) episode collection per RL arm: "
        "open a lease-based TCP coordinator serving wave-aligned "
        "slices to scripts/collect_worker.py processes (0 = off); "
        "bitwise identical at any count, degrades to --collect-jobs "
        "then in-process; needs --batch-size >= 2",
    )
    parser.add_argument(
        "--collect-bind",
        default="127.0.0.1:0",
        help="host:port the collection coordinator binds (port 0 = "
        "ephemeral); use 0.0.0.0:<port> for workers on other machines",
    )
    parser.add_argument(
        "--compress-broadcast",
        action="store_true",
        help="zlib-compress the per-epoch weight broadcast to "
        "collection workers (transport encoding only; results are "
        "bitwise identical either way)",
    )
    parser.add_argument(
        "--async-collect",
        action="store_true",
        help="pipeline collection with PPO updates (one-epoch policy "
        "staleness; reproducible at a fixed seed, not bitwise-equal "
        "to the lockstep schedule); needs --batch-size >= 2",
    )
    parser.add_argument(
        "--sa-chains",
        type=int,
        default=16,
        help="lockstep chains for both SA baselines (1 = sequential; "
        "the HotSpot arm batches all chains through one factorization "
        "per step)",
    )
    parser.add_argument(
        "--positions",
        type=int,
        default=7,
        help="characterization position samples per axis (NxN solves "
        "per die size; smoke runs shrink this)",
    )
    parser.add_argument(
        "--jobs",
        type=resolve_jobs,
        default=1,
        metavar="N|auto",
        help="worker processes for the experiment scheduler; 1 is the "
        "bit-exact sequential path, N>1 fans independent arms / "
        "dataset shards over a pool (identical results, less wall "
        "clock on multi-core hosts); 'auto' uses the CPUs available "
        "to this process",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="publish every arm/shard to the run store and skip work "
        "already published there; interrupted arms restart from their "
        "latest checkpoint (results bitwise identical either way)",
    )
    parser.add_argument(
        "--store-dir",
        type=str,
        default=str(DEFAULT_STORE_DIR),
        help=f"run-store root used by --resume (default {DEFAULT_STORE_DIR})",
    )
    parser.add_argument(
        "--no-time-match",
        action="store_true",
        help="run the TAP-2.5D* arm without the wall-clock match to RL "
        "training; results then depend only on seeds, which is what the "
        "interrupt-and-resume smoke compares bitwise",
    )
    parser.add_argument(
        "--rl-checkpoint-every",
        type=int,
        default=5,
        help="with --resume: trainer checkpoint cadence in epochs",
    )
    parser.add_argument(
        "--sa-checkpoint-every",
        type=int,
        default=50,
        help="with --resume: annealer checkpoint cadence in SA iterations",
    )
    parser.add_argument(
        "--t1-systems",
        nargs="*",
        default=list(TABLE1_SYSTEMS),
        help="Table I benchmark subset (smoke runs shrink this)",
    )
    parser.add_argument(
        "--t3-cases",
        nargs="*",
        type=int,
        default=[1, 2, 3, 4, 5],
        help="Table III synthetic-case subset",
    )
    parser.add_argument(
        "--skip", nargs="*", default=[], choices=["table1", "table2", "table3"]
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="K",
        help="retry transiently failed jobs (dead worker, OS error, "
        "timeout) up to K times on fresh workers with seeded-jitter "
        "backoff (default: 2, 0 disables)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock budget; stragglers past it are killed "
        "and retried as transient failures (needs --jobs >= 2)",
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="quarantine permanently failing arms instead of aborting: "
        "independent arms complete (and publish under --resume), "
        "<out>/report.json records the triage, exit code is nonzero",
    )
    return parser.parse_args(argv)


def build_budget(args) -> ExperimentBudget:
    if args.paper_scale:
        return ExperimentBudget.paper_scale()
    return ExperimentBudget(
        rl_epochs=args.epochs,
        episodes_per_epoch=args.episodes,
        grid_size=args.grid,
        sa_iterations_hotspot=args.sa_iters,
        rollout_batch_size=args.batch_size,
        collect_jobs=args.collect_jobs,
        collect_workers=args.collect_workers,
        collect_bind=args.collect_bind,
        compress_broadcast=args.compress_broadcast,
        async_collect=args.async_collect,
        sa_chains=args.sa_chains,
        position_samples=(args.positions, args.positions),
        sa_time_matched=not args.no_time_match,
        rl_checkpoint_every=args.rl_checkpoint_every,
        sa_checkpoint_every=args.sa_checkpoint_every,
    )


def main(argv=None) -> int:
    args = parse_args(argv)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    budget = build_budget(args)
    store = RunStore(args.store_dir) if args.resume else None
    report = SweepReport()
    fault_kwargs = dict(
        policy=RetryPolicy(max_attempts=args.retries + 1),
        job_timeout=args.job_timeout,
        keep_going=args.keep_going,
        report=report,
    )
    print(f"budget: {budget}")
    print(f"jobs: {args.jobs}")
    if store is not None:
        print(f"run store: {store.root} (resume enabled)")
    started = time.time()

    if "table2" not in args.skip:
        print("\n=== Table II ===")
        t2 = run_table2(
            n_systems=args.t2_systems,
            position_samples=budget.position_samples,
            jobs=args.jobs,
            store=store,
            **fault_kwargs,
        )
        print(t2.format())
        (out / "table2.json").write_text(
            json.dumps(
                {
                    "metrics": t2.metrics,
                    "speedup": t2.speedup,
                    "solver_ms": t2.solver_time_per_eval * 1e3,
                    "fast_ms": t2.fast_time_per_eval * 1e3,
                    "characterization_s": t2.characterization_time,
                    "n_systems": t2.n_systems,
                    "jobs": args.jobs,
                },
                indent=2,
            )
        )

    all_results = []
    if "table1" not in args.skip:
        print("\n=== Table I ===")
        all_results = run_table1(
            budget,
            systems=tuple(args.t1_systems),
            jobs=args.jobs,
            store=store,
            **fault_kwargs,
        )
        by_system = {}
        for res in all_results:
            by_system.setdefault(res.system, []).append(res)
        for name, results in by_system.items():
            save_results(
                results, out / f"table1_{name}.json", {"budget": asdict(budget)}
            )

    table3_results = []
    if "table3" not in args.skip:
        print("\n=== Table III ===")
        table3_results = run_table3(
            budget,
            cases=tuple(args.t3_cases),
            jobs=args.jobs,
            store=store,
            **fault_kwargs,
        )
        save_results(
            table3_results, out / "table3.json", {"budget": asdict(budget)}
        )

    combined = all_results + table3_results
    if combined:
        summary = improvement_summary(combined)
        print("\n=== Aggregate (all cases) ===")
        print(
            f"RLPlanner(RND) vs TAP-2.5D(HotSpot):      "
            f"{summary['rnd_vs_hotspot_pct']:+.2f}%   (paper +20.28%)"
        )
        print(
            f"RLPlanner(RND) vs TAP-2.5D*(FastThermal): "
            f"{summary['rnd_vs_fast_pct']:+.2f}%   (paper +9.25%)"
        )
        (out / "summary.json").write_text(json.dumps(summary, indent=2))

    print(f"\ntotal wall time: {(time.time() - started) / 60:.1f} min")

    (out / "report.json").write_text(json.dumps(report.to_dict(), indent=2))
    if not report.ok:
        print("\n=== PARTIAL SWEEP ===", file=sys.stderr)
        print(report.summary(), file=sys.stderr)
        return 1
    if report.retried:
        print(report.summary(), file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
