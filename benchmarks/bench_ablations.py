"""Ablation benches for the design choices DESIGN.md calls out.

RND bonus, thermal evaluator in the loop, wirelength evaluator, and
placement-grid resolution, all on synthetic case 1.
"""

import json
from dataclasses import asdict
from pathlib import Path

from repro.experiments import run_ablations
from repro.experiments.report import format_table

ARTIFACT_DIR = Path("bench_results")


def test_ablations(benchmark, bench_budget):
    results = benchmark.pedantic(
        run_ablations,
        kwargs={"budget": bench_budget, "verbose": False},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(results, title="Ablations (synthetic case 1)"))
    ARTIFACT_DIR.mkdir(exist_ok=True)
    (ARTIFACT_DIR / "ablations.json").write_text(
        json.dumps([asdict(r) for r in results], indent=2, default=str)
    )
    labels = {r.method for r in results}
    assert "rl/fast/base" in labels
    assert "rl/fast/rnd" in labels
    assert "rl/solver/base" in labels
    # Shape: the solver-in-the-loop variant costs far more wall clock for
    # the same epoch budget — the reason the fast model exists.
    by = {r.method: r for r in results}
    assert by["rl/solver/base"].runtime_s > 2.0 * by["rl/fast/base"].runtime_s
