"""Search-baseline throughput: sequential vs lockstep multi-chain SA.

Measures cost-evaluations/sec of complete :class:`TAP25DPlacer` runs on
the default synthetic system (the same scenario ``bench_rollout.py``
trains on) for ``n_chains`` in {1, 4, 16}: 1 is the original sequential
Metropolis engine, wider counts advance that many chains in lockstep
with one batched ``RewardCalculator.evaluate_many`` pass per step.
Arms alternate inside each measurement round so single-core frequency
noise cannot bias one of them; the reported figure is the median across
rounds.

``--thermal`` selects the evaluator inside the annealer:

* ``fast`` (default) — the paper's LTI surrogate; batching vectorizes
  its table lookups across the chain population.
* ``hotspot`` — the ground-truth :class:`GridThermalSolver` with
  HotSpot-like per-evaluation cost (fresh factorization, no caching
  across steps); batching solves every chain's candidate as one
  multi-RHS block through a *single* factorization per step, which is
  where the speedup comes from.

The reward path uses the bundle wirelength estimator so the measurement
isolates the annealing engine (proposals, legality checks, batched
thermal/wirelength evaluation).

A machine-readable summary is written to ``BENCH_baselines.json`` after
every run (including smoke runs), keyed by thermal mode, so the
performance trajectory of both arms is tracked from PR 2 onward.

Usage::

    PYTHONPATH=src python benchmarks/bench_baselines.py            # full, fast model
    PYTHONPATH=src python benchmarks/bench_baselines.py --thermal hotspot
    PYTHONPATH=src python benchmarks/bench_baselines.py --smoke    # CI, ~30 s
    PYTHONPATH=src python benchmarks/bench_baselines.py --strict   # exit 1 below target

Target (tracked in the README): n_chains=16 achieves >= 3x the
sequential engine's evaluations/sec, in both thermal modes.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

from repro.baselines import TAP25DConfig, TAP25DPlacer
from repro.reward import RewardCalculator, RewardConfig
from repro.systems import synthetic_system
from repro.thermal import FastThermalModel, GridThermalSolver, ThermalConfig
from repro.thermal.characterize import load_or_characterize

DEFAULT_CACHE_DIR = ".cache/thermal_tables"

# Grid resolution of the --thermal hotspot scenario.  Coarser than the
# production default (64x64) so the sequential arm finishes benchmark
# windows in reasonable time; the factorization/solve cost *ratio* the
# speedup depends on only grows with resolution, so the measured
# multiple is conservative.
HOTSPOT_ROWS = 32
HOTSPOT_COLS = 32


def build_calculator(system_seed: int, thermal: str = "fast") -> tuple:
    """The benchmark scenario: one synthetic system + chosen evaluator."""
    system = synthetic_system(seed=system_seed)
    if thermal == "hotspot":
        config = ThermalConfig(rows=HOTSPOT_ROWS, cols=HOTSPOT_COLS)
        calc = RewardCalculator(
            GridThermalSolver(system.interposer, config),
            RewardConfig(use_bump_assignment=False),
        )
        return system, calc
    config = ThermalConfig()
    sizes = []
    for chiplet in system.chiplets:
        sizes.append((chiplet.width, chiplet.height))
        if chiplet.rotatable:
            sizes.append((chiplet.height, chiplet.width))
    tables = load_or_characterize(
        system.interposer,
        sizes,
        config,
        position_samples=(5, 5),
        cache_dir=DEFAULT_CACHE_DIR,
    )
    calc = RewardCalculator(
        FastThermalModel(tables, config),
        RewardConfig(use_bump_assignment=False),
    )
    return system, calc


def measure_window(system, calc, chains: int, iterations: int, seconds: float):
    """Evaluations/sec over one timed window of repeated placer runs."""
    evaluations = 0
    start = time.perf_counter()
    run_index = 0
    while True:
        placer = TAP25DPlacer(
            system,
            calc,
            TAP25DConfig(
                n_iterations=iterations, seed=run_index, n_chains=chains
            ),
        )
        evaluations += placer.run().n_evaluations
        run_index += 1
        elapsed = time.perf_counter() - start
        if elapsed >= seconds:
            return evaluations / elapsed


def _merge_payload(out_path: Path, thermal: str, payload: dict) -> dict:
    """Merge one thermal mode's results into the summary file.

    The file keeps one entry per thermal mode under ``modes`` so a
    hotspot run doesn't clobber the fast-model numbers (and vice
    versa); unreadable or legacy single-mode files are replaced.
    """
    merged = {"benchmark": "bench_baselines", "modes": {}}
    if out_path.exists():
        try:
            existing = json.loads(out_path.read_text())
            if isinstance(existing, dict) and isinstance(
                existing.get("modes"), dict
            ):
                merged["modes"] = existing["modes"]
        except (json.JSONDecodeError, OSError):
            pass
    merged["modes"][thermal] = payload
    return merged


def run(args) -> int:
    system, calc = build_calculator(args.system_seed, args.thermal)
    widths = [int(w) for w in args.chains.split(",")]
    for width in widths:  # warm caches and code paths
        measure_window(system, calc, width, args.iterations, 0.05)

    samples: dict = {w: [] for w in widths}
    for round_index in range(args.rounds):
        for width in widths:
            rate = measure_window(
                system, calc, width, args.iterations, args.window_seconds
            )
            samples[width].append(rate)
            print(
                f"round {round_index}: n_chains={width:<3d} "
                f"{rate:8.1f} evals/s"
            )

    medians = {w: statistics.median(samples[w]) for w in widths}
    print()
    for width in widths:
        print(f"n_chains={width:<3d} median {medians[width]:8.1f} evals/s")
    baseline = medians[widths[0]]
    speedups = {}
    status = 0
    for width in widths[1:]:
        speedup = medians[width] / baseline
        speedups[width] = speedup
        verdict = ""
        # The >=3x target is pinned to the widest arm (intermediate
        # chain counts amortize less and are reported informationally).
        if not args.smoke and width == widths[-1]:
            ok = speedup >= args.target
            verdict = "  [ok]" if ok else f"  [below {args.target:.1f}x target]"
            if not ok and args.strict:
                status = 1
        print(
            f"speedup n_chains={width} vs {widths[0]}: "
            f"{speedup:.2f}x{verdict}"
        )

    payload = {
        "scenario": {
            "system": system.name,
            "n_chiplets": system.n_chiplets,
            "iterations_per_run": args.iterations,
            "thermal": args.thermal,
        },
        "mode": "smoke" if args.smoke else "full",
        "rounds": args.rounds,
        "window_seconds": args.window_seconds,
        "evals_per_sec": {str(w): medians[w] for w in widths},
        "speedup_vs_sequential": {str(w): speedups[w] for w in speedups},
        "target": args.target,
    }
    out_path = Path(args.out)
    merged = _merge_payload(out_path, args.thermal, payload)
    out_path.write_text(json.dumps(merged, indent=2) + "\n")
    print(f"wrote {out_path}")
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--chains",
        type=str,
        default="1,4,16",
        help="comma-separated chain counts; the first is the baseline",
    )
    parser.add_argument(
        "--thermal",
        choices=("fast", "hotspot"),
        default="fast",
        help="thermal evaluator inside the annealer (hotspot = the "
        "ground-truth grid solver with multi-RHS batched solves)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="SA iterations per chain per run "
        "(default: 150 fast, 100 hotspot)",
    )
    parser.add_argument("--rounds", type=int, default=5, help="alternating measurement rounds")
    parser.add_argument(
        "--window-seconds",
        type=float,
        default=2.0,
        help="minimum seconds per measurement window",
    )
    parser.add_argument("--system-seed", type=int, default=1, help="synthetic system seed")
    parser.add_argument(
        "--target", type=float, default=3.0, help="required speedup multiple"
    )
    parser.add_argument(
        "--out",
        type=str,
        default="BENCH_baselines.json",
        help="machine-readable result path",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero when a chain count misses the target",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single fast round, no target check (CI)",
    )
    args = parser.parse_args(argv)
    if args.iterations is None:
        args.iterations = 100 if args.thermal == "hotspot" else 150
    if args.smoke:
        args.rounds = 1
        # The hotspot arm pays a sparse factorization per sequential
        # evaluation; cap its smoke budget harder so CI stays fast.
        cap = 30 if args.thermal == "hotspot" else 60
        args.iterations = min(args.iterations, cap)
        args.window_seconds = min(args.window_seconds, 0.5)
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
