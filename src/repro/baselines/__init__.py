"""Baseline floorplanners.

* :class:`TAP25DPlacer` — the paper's SA comparison (thermal-aware,
  continuous coordinates).
* :class:`BStarFloorplanner` — the classic compacted-floorplan baseline
  (paper reference [1]); area/WL-driven, thermally oblivious.
* :func:`random_search` — best of N random legal placements.
"""

from repro.baselines.sa import SAConfig, SAHistory, SAResult, SimulatedAnnealing
from repro.baselines.tap25d import TAP25DConfig, TAP25DPlacer, PlacerResult
from repro.baselines.bstar import BStarConfig, BStarFloorplanner, BStarTree
from repro.baselines.random_search import random_search

__all__ = [
    "SAConfig",
    "SAHistory",
    "SAResult",
    "SimulatedAnnealing",
    "TAP25DConfig",
    "TAP25DPlacer",
    "PlacerResult",
    "BStarConfig",
    "BStarFloorplanner",
    "BStarTree",
    "random_search",
]
