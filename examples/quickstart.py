"""Quickstart: define a chiplet system, train RLPlanner, print the floorplan.

Run:
    python examples/quickstart.py

Takes about a minute on a laptop CPU (small budgets; crank the epochs for
better floorplans).
"""

from repro.chiplet import Chiplet, ChipletSystem, Interposer, Net
from repro.env import EnvConfig, FloorplanEnv
from repro.agent import RLPlannerTrainer, TrainerConfig
from repro.reward import RewardCalculator, RewardConfig
from repro.thermal import FastThermalModel, ThermalConfig
from repro.thermal.characterize import characterize_for_system
from repro.viz import render_floorplan


def main() -> None:
    # 1. Describe the system: dies, powers, and die-to-die bundles.
    system = ChipletSystem(
        name="quickstart",
        interposer=Interposer(width=30.0, height=30.0, min_spacing=0.2),
        chiplets=(
            Chiplet("soc", 10.0, 10.0, power=55.0, kind="cpu"),
            Chiplet("gpu", 8.0, 8.0, power=45.0, kind="gpu"),
            Chiplet("hbm0", 6.0, 8.0, power=6.0, kind="hbm"),
            Chiplet("hbm1", 6.0, 8.0, power=6.0, kind="hbm"),
        ),
        nets=(
            Net("soc", "gpu", wires=512),
            Net("gpu", "hbm0", wires=1024),
            Net("gpu", "hbm1", wires=1024),
            Net("soc", "hbm0", wires=128),
        ),
    )

    # 2. Characterize the fast thermal model once for this package.
    thermal_config = ThermalConfig(r_convection=0.12)
    print("characterizing thermal tables (one-time per package)...")
    tables = characterize_for_system(system, thermal_config)
    fast_model = FastThermalModel(tables, thermal_config)

    # 3. Reward: wirelength + temperature-over-limit penalty.
    reward = RewardCalculator(
        fast_model, RewardConfig(lambda_wl=3.3e-4, t_limit=85.0)
    )

    # 4. Train the agent.
    env = FloorplanEnv(system, reward, EnvConfig(grid_size=24))
    trainer = RLPlannerTrainer(
        env, TrainerConfig(epochs=25, episodes_per_epoch=8, seed=0, log_every=5)
    )
    result = trainer.train()

    # 5. Inspect the best floorplan found.
    breakdown = result.best_breakdown
    print(f"\nbest reward      {result.best_reward:.4f}")
    print(f"wirelength       {breakdown.wirelength:.0f} mm")
    print(f"max temperature  {breakdown.max_temperature_c:.2f} C")
    print()
    print(render_floorplan(result.best_placement))


if __name__ == "__main__":
    main()
