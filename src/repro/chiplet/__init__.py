"""Chiplet-system data model.

A :class:`ChipletSystem` bundles the interposer, the chiplets to place and
the inter-chiplet netlist; a :class:`Placement` maps chiplet names to
positions.  These objects are shared by the environment, the thermal
evaluators, the bump assigner and the baselines.
"""

from repro.chiplet.chiplet import Chiplet
from repro.chiplet.netlist import Net
from repro.chiplet.system import ChipletSystem, Interposer, Placement
from repro.chiplet.io import system_to_dict, system_from_dict, save_system, load_system
from repro.chiplet.validate import (
    ValidationError,
    validate_placement,
    validate_system,
)

__all__ = [
    "Chiplet",
    "Net",
    "ChipletSystem",
    "Interposer",
    "Placement",
    "system_to_dict",
    "system_from_dict",
    "save_system",
    "load_system",
    "ValidationError",
    "validate_placement",
    "validate_system",
]
