"""Dependency-aware job scheduler over supervised worker processes.

Design constraints, in order:

1. **Bit-for-bit sequential fallback.**  ``run_jobs(specs, jobs=1)``
   executes every job in submission order, in process, with no pool and
   no pickling — exactly the code path the pre-scheduler harness ran.
   The golden-experiments regression pins this.
2. **Determinism at any worker count.**  Jobs must be pure functions of
   their spec (every experiment job carries its own seed), so results
   cannot depend on scheduling order; only wall clock does.  The result
   mapping is returned in submission order regardless of completion
   order.
3. **Explicit dependencies.**  A job may name earlier jobs in
   ``needs``; it is not dispatched until they finish.  Cross-job data
   flows through ``inject``, which runs **in the parent** right before
   dispatch and may rewrite the job's kwargs from the dependencies'
   results (the wall-clock-matched SA arm receives the measured RL
   runtime this way).  Requiring ``needs`` to point at earlier
   submissions keeps the graph acyclic by construction and makes the
   sequential fallback trivially dependency-correct.
4. **Fault tolerance.**  Each job runs in its *own supervised worker
   process* (``multiprocessing.Process`` + pipe), which is what makes
   per-job fault attribution possible: a crash kills exactly one job's
   worker, a straggler past its ``job_timeout`` is killed without
   collateral damage, and both are retried on a fresh worker under the
   :class:`~repro.parallel.faults.RetryPolicy` (exponential backoff,
   seeded jitter).  Deterministic failures are never retried; with
   ``keep_going=True`` they are *quarantined* — their dependency-
   downstream jobs are skipped and every independent job still runs —
   and the caller reads the triage from a
   :class:`~repro.parallel.faults.SweepReport`.

Job functions must be importable top-level callables and their kwargs
picklable — the usual :mod:`multiprocessing` contract.  A permanently
failed job raises :class:`JobFailedError` in the parent (without
waiting for unrelated in-flight siblings) unless ``keep_going`` is set.

**Run-store integration.**  A spec may carry a ``store_key`` (a
:func:`repro.store.store_key` digest).  When ``run_jobs`` is given a
:class:`~repro.store.RunStore`, keyed jobs whose result is already
published are *never scheduled*: the stored result enters the outcome
mapping (and feeds dependents' ``inject`` hooks) directly, which is
what makes re-running a completed sweep with ``--resume`` execute zero
method-arm jobs.  Keyed jobs that do execute have their result
published to the store on completion (in the parent, atomically).
With ``store=None`` the scheduler behaves exactly as before.  The
store also makes retries cheap: a retried job resumes from its own
in-flight checkpoint slot rather than recomputing from scratch.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import os
import pickle
import threading
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import wait

from repro.parallel import chaos
from repro.parallel.faults import (
    JobOutcome,
    JobTimeoutError,
    RetryBudget,
    RetryPolicy,
    SweepReport,
    WorkerCrashError,
)
from repro.utils import get_logger

__all__ = [
    "JobFailedError",
    "JobSpec",
    "RemoteTraceback",
    "resolve_collect_jobs",
    "resolve_jobs",
    "run_jobs",
]

_logger = get_logger("parallel.scheduler")

#: Grace period between SIGTERM and SIGKILL when stopping a worker.
_TERMINATE_GRACE_S = 5.0

#: Supervisor poll ceiling: an upper bound on how long the parent waits
#: on worker pipes before re-checking deadlines and retry timers.
_POLL_S = 0.5


class JobFailedError(RuntimeError):
    """A job raised in a worker; carries the failing job id."""

    def __init__(self, job_id: str, cause: BaseException):
        super().__init__(f"job {job_id!r} failed: {cause!r}")
        self.job_id = job_id
        self.cause = cause


class RemoteTraceback(RuntimeError):
    """A worker raised an exception whose object could not be pickled.

    Carries the remote type name and formatted traceback so the
    failure is still debuggable; classified deterministic (retrying
    re-raises the same unpicklable error).
    """

    def __init__(self, type_name: str, message: str, trace: str):
        super().__init__(f"{type_name}: {message}\n{trace}")
        self.type_name = type_name


@dataclass
class JobSpec:
    """One schedulable unit of work.

    Attributes
    ----------
    job_id:
        Unique name; dependency edges and the result mapping use it.
    fn:
        Importable top-level callable (workers re-import it by
        qualified name when pickled).
    kwargs:
        Keyword arguments for ``fn``; must be picklable for ``jobs>1``.
    needs:
        Ids of jobs that must complete first.  They must refer to
        *earlier* submissions (forward edges only), which keeps the
        graph a DAG and the ``jobs=1`` fallback dependency-correct
        without a topological sort.
    inject:
        Optional ``inject(kwargs, done) -> kwargs`` hook run in the
        parent immediately before dispatch, where ``done`` maps
        completed job ids to their results.  This is the only
        cross-job data channel; use :func:`functools.partial` to bind
        which dependency feeds which keyword.
    store_key:
        Optional content-addressed key in the run store.  When
        ``run_jobs`` receives a store, a published result under this
        key short-circuits the job entirely, and a freshly computed
        result is published under it.  ``None`` (default) opts the job
        out of the store.
    """

    job_id: str
    fn: object
    kwargs: dict = field(default_factory=dict)
    needs: tuple = ()
    inject: object = None
    store_key: str | None = None

    def resolved_kwargs(self, done: dict) -> dict:
        kwargs = dict(self.kwargs)
        if self.inject is not None:
            kwargs = self.inject(kwargs, done)
        return kwargs


def _validate(specs: list) -> None:
    seen = set()
    for spec in specs:
        if spec.job_id in seen:
            raise ValueError(f"duplicate job id {spec.job_id!r}")
        for dep in spec.needs:
            if dep not in seen:
                raise ValueError(
                    f"job {spec.job_id!r} needs {dep!r}, which is not an "
                    "earlier submission (forward dependency edges only)"
                )
        seen.add(spec.job_id)


def _probe_cpu_count() -> int:
    """CPUs available to this process, probed defensively.

    Every probe in the chain is allowed to be missing, raise, or answer
    ``None`` (``os.cpu_count`` is documented to return ``None`` when it
    cannot determine the count, and containers/exotic hosts do hit
    that): a dead probe falls through to the next one instead of
    propagating ``None``/``TypeError`` into a worker count, and the
    final answer is always clamped to at least 1.
    """
    probes = (
        # Python >= 3.13: cgroup/affinity-aware by design.
        getattr(os, "process_cpu_count", None),
        # Linux: scheduling affinity of this process.
        lambda: len(os.sched_getaffinity(0)),
        # Portable last resort.
        os.cpu_count,
    )
    for probe in probes:
        if probe is None:
            continue
        try:
            count = probe()
        except (AttributeError, OSError, ValueError):
            continue
        if count is not None and int(count) >= 1:
            return int(count)
    return 1


def resolve_jobs(value) -> int:
    """Parse a ``--jobs`` value: a positive integer or ``"auto"``.

    ``"auto"`` resolves to the CPUs actually available to this process
    (``os.process_cpu_count`` where it exists — Python >= 3.13 — then
    the scheduling affinity, then ``os.cpu_count``), never less than 1
    even when every probe is unavailable or answers ``None``.
    """
    if isinstance(value, int):
        jobs = value
    else:
        text = str(value).strip().lower()
        if text == "auto":
            return _probe_cpu_count()
        jobs = int(text)  # ValueError on garbage, as argparse expects
    if jobs < 1:
        raise ValueError("jobs must be >= 1 (or 'auto')")
    return jobs


def resolve_collect_jobs(value) -> int:
    """Parse a ``--collect-jobs`` value: like :func:`resolve_jobs`, but
    ``"auto"`` on a single-CPU host resolves to **in-process**
    collection (1) with a warning instead of silently standing up a
    one-worker pool — on one core a pool buys no parallelism and pays
    per-epoch weight broadcast and IPC for every slice (the collection
    bench measures it well below 1x).  Results are unaffected either
    way: ``collect_jobs`` is bitwise-non-semantic by construction.

    An *explicit* worker count is honored verbatim, single core or not
    (the bench deliberately measures pool overhead on small hosts).
    """
    if not isinstance(value, int) and str(value).strip().lower() == "auto":
        jobs = _probe_cpu_count()
        if jobs == 1:
            _logger.warning(
                "--collect-jobs auto: only 1 CPU is available to this "
                "process, so a worker pool would be pure IPC overhead; "
                "collecting episodes in-process (results are identical "
                "at any collect_jobs)"
            )
        return jobs
    return resolve_jobs(value)


def run_jobs(
    specs,
    jobs: int = 1,
    store=None,
    *,
    policy: RetryPolicy | None = None,
    job_timeout: float | None = None,
    keep_going: bool = False,
    report: SweepReport | None = None,
) -> dict:
    """Execute ``specs``; return ``{job_id: result}`` in submission order.

    ``jobs=1`` runs in process and in submission order — the bit-exact
    sequential path.  ``jobs>1`` dispatches every dependency-free job to
    its own supervised worker process (at most ``jobs`` concurrent) and
    releases dependents as their ``needs`` complete.

    ``store`` (a :class:`repro.store.RunStore`) makes keyed jobs
    resumable: published results are returned without executing the
    job, and newly computed results are published.

    Fault tolerance:

    * ``policy`` (default :class:`RetryPolicy`) retries *transiently*
      failed jobs — dead workers, ``OSError``/timeouts — on a fresh
      worker with exponential, seeded-jitter backoff.  Deterministic
      exceptions reproduce on retry and are never retried.
    * ``job_timeout`` kills and retries any single job running longer
      than this many seconds (``jobs>1`` only: an in-process job cannot
      be preempted).
    * ``keep_going=False`` (default) raises :class:`JobFailedError` on
      the first permanent failure, without waiting for unrelated
      in-flight siblings.  ``keep_going=True`` *quarantines* permanent
      failures, skips only their dependency-downstream jobs, completes
      the rest of the graph, and returns results for every surviving
      job (quarantined/skipped ids are absent from the mapping).
    * ``report`` (a :class:`SweepReport`) receives the per-job outcome
      triage either way.
    """
    specs = list(specs)
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    _validate(specs)
    policy = policy if policy is not None else RetryPolicy()
    report = report if report is not None else SweepReport()
    # One mutable budget per sweep: with no sweep-wide caps configured
    # on the policy, every allow() grants and behavior is unchanged.
    budget = RetryBudget(policy)
    if not specs:
        return {}
    done: dict = {}
    pending = specs
    if store is not None:
        pending = []
        for spec in specs:
            if spec.store_key is not None:
                hit, value = store.fetch(spec.store_key)
                if hit:
                    _logger.info("store hit, skipping %s", spec.job_id)
                    done[spec.job_id] = value
                    report.record(JobOutcome(spec.job_id, "cached"))
                    continue
            pending.append(spec)
    try:
        if jobs == 1:
            _run_sequential(
                pending, done, store, policy, budget, keep_going, report
            )
        else:
            _run_supervised(
                pending,
                jobs,
                done,
                store,
                policy,
                budget,
                job_timeout,
                keep_going,
                report,
            )
    finally:
        if (
            policy.sweep_retry_budget is not None
            or policy.sweep_retry_window_s is not None
            or budget.granted
        ):
            report.attach_retry_budget(budget)
    return {
        spec.job_id: done[spec.job_id]
        for spec in specs
        if spec.job_id in done
    }


def _publish(store, spec: JobSpec, result) -> None:
    if store is not None and spec.store_key is not None:
        store.put(spec.store_key, result)


def _blocking_dep(spec: JobSpec, report: SweepReport) -> str | None:
    """The first dependency of ``spec`` that can never complete."""
    for dep in spec.needs:
        outcome = report.outcomes.get(dep)
        if outcome is not None and outcome.status in ("quarantined", "skipped"):
            return dep
    return None


def _record_skip(spec: JobSpec, blocked_by: str, report: SweepReport) -> None:
    _logger.warning(
        "skipping %s: dependency %s was quarantined", spec.job_id, blocked_by
    )
    report.record(
        JobOutcome(spec.job_id, "skipped", attempts=0, blocked_by=blocked_by)
    )


def _run_sequential(
    specs: list,
    done: dict,
    store,
    policy: RetryPolicy,
    budget: RetryBudget,
    keep_going: bool,
    report: SweepReport,
) -> None:
    """In-process execution, bit-for-bit the pre-scheduler harness.

    Fault handling layers *around* the job call, never inside it: with
    no failures the executed code path is byte-identical to the
    original loop.  Transient failures retry after the policy backoff;
    deterministic failures raise directly (the historical contract) or
    quarantine under ``keep_going``.  Timeouts do not apply — an
    in-process job cannot be preempted.
    """
    for spec in specs:
        blocked_by = _blocking_dep(spec, report)
        if blocked_by is not None:
            _record_skip(spec, blocked_by, report)
            continue
        attempt = 1
        while True:
            try:
                chaos.maybe_fail("scheduler.job", spec.job_id)
                result = spec.fn(**spec.resolved_kwargs(done))
            except Exception as error:
                if policy.is_transient(error) and attempt < policy.max_attempts:
                    if budget.allow(spec.job_id):
                        delay = policy.backoff(spec.job_id, attempt)
                        _logger.warning(
                            "%s failed transiently (%r), attempt %d/%d; "
                            "retrying in %.2fs",
                            spec.job_id,
                            error,
                            attempt,
                            policy.max_attempts,
                            delay,
                        )
                        time.sleep(delay)
                        attempt += 1
                        continue
                    _logger.error(
                        "%s failed transiently (%r) but the sweep retry "
                        "budget is exhausted (%s); treating as permanent",
                        spec.job_id,
                        error,
                        budget.describe(),
                    )
                if keep_going:
                    _logger.error(
                        "quarantining %s after %d attempt(s): %r",
                        spec.job_id,
                        attempt,
                        error,
                    )
                    report.record(
                        JobOutcome.failure(
                            spec.job_id, "quarantined", attempt, error
                        )
                    )
                    break
                raise
            else:
                done[spec.job_id] = result
                _publish(store, spec, result)
                report.record(
                    JobOutcome(
                        spec.job_id,
                        "succeeded" if attempt == 1 else "retried",
                        attempts=attempt,
                    )
                )
                break


# ----------------------------------------------------------------------
# supervised workers (jobs > 1)
# ----------------------------------------------------------------------


def _supervised_main(conn, fn, kwargs, job_id: str) -> None:
    """Worker entry: run one job, report ``("ok"|"error", payload)``.

    The envelope travels over a dedicated pipe.  An exception whose
    *object* fails to pickle degrades to a :class:`RemoteTraceback`
    envelope (type name + formatted traceback) instead of poisoning the
    channel — the parent still gets a classifiable, debuggable error.
    """
    try:
        chaos.maybe_fail("scheduler.job", job_id)
        payload = ("ok", fn(**kwargs))
    except BaseException as error:  # noqa: BLE001 - supervisor boundary
        payload = ("error", error)
    try:
        conn.send(payload)
    except Exception:
        # Unpicklable result/exception: nothing was written (pickling
        # happens before any bytes hit the pipe), so the channel is
        # still clean for the fallback envelope.
        if payload[0] == "ok":
            error = TypeError(
                f"job {job_id!r} returned an unpicklable result"
            )
            trace = ""
        else:
            error = payload[1]
            trace = "".join(
                traceback.format_exception(
                    type(error), error, error.__traceback__
                )
            )
        conn.send(
            ("error", RemoteTraceback(type(error).__name__, str(error), trace))
        )
    finally:
        conn.close()


@dataclass
class _Running:
    """Supervisor-side handle of one in-flight job attempt."""

    spec: JobSpec
    attempt: int
    process: multiprocessing.Process
    conn: object
    started: float

    def deadline(self, job_timeout) -> float | None:
        return None if job_timeout is None else self.started + job_timeout


def _start_worker(spec: JobSpec, attempt: int, done: dict) -> _Running:
    parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
    process = multiprocessing.Process(
        target=_supervised_main,
        args=(child_conn, spec.fn, spec.resolved_kwargs(done), spec.job_id),
        name=f"job-{spec.job_id}",
    )
    process.start()
    child_conn.close()  # parent keeps only its end; EOF tracks the child
    _logger.debug(
        "dispatched %s (attempt %d, pid %d)", spec.job_id, attempt, process.pid
    )
    return _Running(spec, attempt, process, parent_conn, time.monotonic())


def _stop_worker(rec: _Running) -> None:
    """SIGTERM, then SIGKILL, then reap one worker process."""
    process = rec.process
    if process.is_alive():
        process.terminate()
        process.join(_TERMINATE_GRACE_S)
        if process.is_alive():  # pragma: no cover - SIGTERM blocked
            process.kill()
            process.join(_TERMINATE_GRACE_S)
    rec.conn.close()


def _drain_in_background(running: list) -> None:
    """Let in-flight siblings finish after a fail-fast raise.

    Their worker-side publishes salvage real work (method arms publish
    to the run store from the worker), but nobody will read their
    pipes — and a result larger than the pipe buffer would block the
    child's ``send`` forever, deadlocking interpreter exit on the
    ``multiprocessing`` join.  A daemon thread drains and reaps them
    without holding up the failure.
    """

    def drain(rec: _Running) -> None:
        try:
            rec.conn.recv()
        except (EOFError, OSError):
            pass
        finally:
            rec.conn.close()
        rec.process.join()

    for rec in running:
        threading.Thread(target=drain, args=(rec,), daemon=True).start()


def _receive(rec: _Running):
    """Collect a finished worker's envelope: ``("ok"|"error", payload)``.

    A worker that died without sending (crash, SIGKILL, interpreter
    abort) yields a transient :class:`WorkerCrashError` carrying its
    exit code.
    """
    message = None
    try:
        if rec.conn.poll():
            message = rec.conn.recv()
    except (EOFError, OSError, pickle.UnpicklingError) as error:
        message = ("error", WorkerCrashError(f"result channel broke: {error!r}"))
    rec.process.join()
    rec.conn.close()
    if message is None:
        code = rec.process.exitcode
        message = (
            "error",
            WorkerCrashError(
                f"worker for {rec.spec.job_id!r} died without a result "
                f"(exitcode {code})"
            ),
        )
    return message


def _run_supervised(
    specs: list,
    jobs: int,
    done: dict,
    store,
    policy: RetryPolicy,
    budget: RetryBudget,
    job_timeout: float | None,
    keep_going: bool,
    report: SweepReport,
) -> None:
    """Supervise up to ``jobs`` concurrent single-job worker processes.

    Per-job fault attribution is the reason this is not a shared pool:
    a crash or straggler kill touches exactly one job, so siblings keep
    their workers and their wall clock.  Retries always get a fresh
    process (a poisoned interpreter state cannot leak into the retry).
    """
    waiting = list(specs)
    running: list = []
    retries: list = []  # heap of (ready_time, tiebreak, spec, next_attempt)
    tiebreak = itertools.count()

    def fail(rec_spec: JobSpec, attempt: int, error: BaseException) -> None:
        transient = policy.is_transient(error)
        if transient and attempt < policy.max_attempts:
            if budget.allow(rec_spec.job_id):
                delay = policy.backoff(rec_spec.job_id, attempt)
                _logger.warning(
                    "%s failed transiently (%r), attempt %d/%d; retrying "
                    "on a fresh worker in %.2fs",
                    rec_spec.job_id,
                    error,
                    attempt,
                    policy.max_attempts,
                    delay,
                )
                heapq.heappush(
                    retries,
                    (
                        time.monotonic() + delay,
                        next(tiebreak),
                        rec_spec,
                        attempt + 1,
                    ),
                )
                return
            _logger.error(
                "%s failed transiently (%r) but the sweep retry budget "
                "is exhausted (%s); treating as permanent",
                rec_spec.job_id,
                error,
                budget.describe(),
            )
        if keep_going:
            _logger.error(
                "quarantining %s after %d attempt(s): %r",
                rec_spec.job_id,
                attempt,
                error,
            )
            report.record(
                JobOutcome.failure(rec_spec.job_id, "quarantined", attempt, error)
            )
            return
        raise JobFailedError(rec_spec.job_id, error)

    def succeed(rec: _Running, result) -> None:
        done[rec.spec.job_id] = result
        _publish(store, rec.spec, result)
        report.record(
            JobOutcome(
                rec.spec.job_id,
                "succeeded" if rec.attempt == 1 else "retried",
                attempts=rec.attempt,
            )
        )

    def dispatch_ready() -> None:
        now = time.monotonic()
        while retries and len(running) < jobs and retries[0][0] <= now:
            _, _, spec, attempt = heapq.heappop(retries)
            running.append(_start_worker(spec, attempt, done))
        still_waiting = []
        for spec in waiting:
            blocked_by = _blocking_dep(spec, report)
            if blocked_by is not None:
                _record_skip(spec, blocked_by, report)
            elif (
                all(dep in done for dep in spec.needs)
                and len(running) < jobs
            ):
                running.append(_start_worker(spec, 1, done))
            else:
                still_waiting.append(spec)
        waiting[:] = still_waiting

    def poll_timeout() -> float:
        """How long the supervisor may sleep before the next event."""
        now = time.monotonic()
        horizon = _POLL_S
        if retries:
            horizon = min(horizon, max(retries[0][0] - now, 0.0))
        if job_timeout is not None:
            for rec in running:
                horizon = min(
                    horizon, max(rec.deadline(job_timeout) - now, 0.0)
                )
        return horizon

    try:
        dispatch_ready()
        while running or retries or waiting:
            if not running:
                if retries:
                    # Nothing in flight; sleep until the earliest retry.
                    time.sleep(max(retries[0][0] - time.monotonic(), 0.0))
                    dispatch_ready()
                    continue
                if waiting:
                    # Only reachable if every remaining job is blocked on
                    # quarantined deps but escaped _blocking_dep — a bug
                    # tripwire, as _validate guarantees forward edges.
                    dispatch_ready()
                    if not running and not retries and waiting:
                        raise RuntimeError(
                            f"{len(waiting)} jobs never became ready: "
                            f"{[spec.job_id for spec in waiting]}"
                        )
                    continue
            sentinels = {rec.process.sentinel: rec for rec in running}
            channels = {rec.conn: rec for rec in running}
            ready = wait(
                list(channels) + list(sentinels), timeout=poll_timeout()
            )
            finished = {
                id(rec): rec
                for handle in ready
                for rec in (channels.get(handle) or sentinels.get(handle),)
            }
            now = time.monotonic()
            for rec in list(running):
                if id(rec) in finished:
                    running.remove(rec)
                    kind, payload = _receive(rec)
                    if kind == "ok":
                        succeed(rec, payload)
                    else:
                        fail(rec.spec, rec.attempt, payload)
                elif (
                    job_timeout is not None
                    and now >= rec.deadline(job_timeout)
                ):
                    # Straggler: past its wall-clock budget with no
                    # result.  Kill the worker (only this job's) and
                    # route through the normal transient-failure path.
                    running.remove(rec)
                    _logger.warning(
                        "%s exceeded job_timeout=%.1fs; killing worker "
                        "pid %d",
                        rec.spec.job_id,
                        job_timeout,
                        rec.process.pid,
                    )
                    _stop_worker(rec)
                    fail(
                        rec.spec,
                        rec.attempt,
                        JobTimeoutError(
                            f"{rec.spec.job_id!r} exceeded "
                            f"{job_timeout:.1f}s wall clock"
                        ),
                    )
            dispatch_ready()
    except BaseException as error:
        if isinstance(error, KeyboardInterrupt):
            # Ctrl-C means *stop now*: kill in-flight workers instead of
            # letting them grind on behind a dead sweep.  Every store
            # write is atomic, so a killed job simply never published
            # and restarts from its last checkpoint under --resume.
            for rec in running:
                _stop_worker(rec)
        else:
            # Fail fast but salvage: surface the failure immediately
            # while in-flight siblings drain in the background (their
            # worker-side publishes are real work; see the helper).
            _drain_in_background(running)
        raise
