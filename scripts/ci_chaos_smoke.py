"""Chaos smoke test for the fault-tolerance layer (CI job).

Drives ``scripts/run_experiments.py`` end to end under deterministic
fault injection (``RLPLANNER_CHAOS``), the way a sweep on a flaky
machine would fail:

1. **Reference** — run a tiny-budget Table I+III sweep (with sharded
   episode collection) to completion, no chaos.
2. **Crash leg** — run the identical sweep while chaos SIGKILLs one
   scheduler worker (a whole method arm's process) and one collection
   pool worker (one slice of an RL arm's epoch), each exactly once via
   sentinel-dir accounting.  The sweep must exit 0 with every table
   row **bitwise identical** to the reference — dead workers are
   retried / re-dispatched, losing nothing.
3. **Keep-going leg** — run with a deterministically failing arm
   (chaos ``raise`` with ``times=0``: the failure reproduces on every
   retry) under ``--keep-going --resume``.  The sweep must exit
   *nonzero*, quarantine exactly that arm in ``report.json``, keep
   every surviving arm bitwise identical to the reference, and publish
   every surviving arm to the run store.
4. **Async leg** — run the same sweep twice with ``--async-collect``
   (pipelined actor/learner overlap): once undisturbed as the async
   reference, once while chaos SIGKILLs a collection worker inside a
   *prefetched* epoch (``collector.prefetch``), exactly once.  Async
   results are deliberately one epoch stale, so they are compared
   against the async reference, not leg 1's lockstep reference; the
   crashed prefetch must be re-dispatched from its stored pre-update
   weights so the chaos run stays bitwise identical to it.
5. **Remote leg** — run the sweep with ``--collect-workers 2``: a
   lease-based TCP coordinator on localhost serving two persistent
   ``scripts/collect_worker.py`` subprocesses.  Chaos SIGKILLs one
   worker mid-slice (exactly once) and chaos-disconnects the other's
   connection mid-conversation (exactly once); the coordinator must
   fence the lost leases, re-dispatch their slices, and finish with
   every table row **bitwise identical** to leg 1's in-process
   reference — the remote transport is pure plumbing.

Exit code 0 = all assertions hold.  Designed to be fast (a few
minutes) and deterministic: every fault fires at a named injection
point under seeded accounting, so there is nothing racy to flake on.

Usage:
    PYTHONPATH=src python scripts/ci_chaos_smoke.py [--workdir DIR]
"""

import argparse
import hashlib
import json
import os
import socket
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

SWEEP_ARGS = [
    "--skip",
    "table2",
    "--epochs",
    "3",
    "--episodes",
    "2",
    "--grid",
    "12",
    "--sa-iters",
    "8",
    "--sa-chains",
    "2",
    "--batch-size",
    "4",
    "--collect-jobs",
    "2",
    "--positions",
    "2",
    "--t1-systems",
    "multi_gpu",
    "--t3-cases",
    "1",
    "--no-time-match",
    "--jobs",
    "2",
    "--retries",
    "2",
]

#: The arm the keep-going leg poisons (a deterministic failure that
#: reproduces on every retry).  Chosen to be dependency-independent so
#: every other arm must still complete.
POISONED_ARM = "synthetic1/RLPlanner(RND)"


def run_sweep(out: Path, env: dict, extra=(), check=True):
    return subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "scripts" / "run_experiments.py"),
            *SWEEP_ARGS,
            *extra,
            "--out",
            str(out),
        ],
        check=check,
        env=env,
        cwd=REPO_ROOT,
    )


def load_table_rows(out: Path) -> dict:
    """{(system, method): (reward, wirelength, temperature_c)}."""
    rows = {}
    for name in ("table1_multi_gpu.json", "table3.json"):
        payload = json.loads((out / name).read_text())
        for row in payload["results"]:
            rows[(row["system"], row["method"])] = (
                row["reward"],
                row["wirelength"],
                row["temperature_c"],
            )
    return rows


def snapshot_results(store: Path) -> dict:
    """{relative path: sha256} of every published store result."""
    root = store / "results"
    if not root.exists():
        return {}
    return {
        str(path.relative_to(store)): hashlib.sha256(
            path.read_bytes()
        ).hexdigest()
        for path in sorted(root.rglob("*.pkl"))
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--workdir", type=str, default=None)
    args = parser.parse_args(argv)

    workdir = Path(args.workdir or tempfile.mkdtemp(prefix="chaos_smoke_"))
    workdir.mkdir(parents=True, exist_ok=True)
    base_env = dict(os.environ)
    base_env["PYTHONPATH"] = (
        str(REPO_ROOT / "src") + os.pathsep + base_env.get("PYTHONPATH", "")
    )
    base_env.pop("RLPLANNER_CHAOS", None)

    print("=== reference sweep (no chaos) ===")
    run_sweep(workdir / "ref_out", base_env)
    reference = load_table_rows(workdir / "ref_out")
    assert reference, "reference sweep produced no table rows"
    print(f"reference: {len(reference)} arms")

    print("\n=== crash leg: SIGKILL one scheduler + one collector worker ===")
    sched_dir = workdir / "chaos_sched"
    coll_dir = workdir / "chaos_coll"
    crash_env = dict(base_env)
    crash_env["RLPLANNER_CHAOS"] = json.dumps(
        [
            # Kill the worker process of one whole method arm, once.
            {
                "point": "scheduler.job",
                "mode": "crash",
                "match": "multi_gpu/RLPlanner",
                "times": 1,
                "dir": str(sched_dir),
            },
            # Kill one episode-collection pool worker mid-epoch, once.
            {
                "point": "collector.slice",
                "mode": "crash",
                "times": 1,
                "dir": str(coll_dir),
            },
        ]
    )
    run_sweep(workdir / "crash_out", crash_env)
    assert len(list(sched_dir.iterdir())) == 1, (
        "the scheduler-worker crash never fired"
    )
    assert len(list(coll_dir.iterdir())) == 1, (
        "the collector-worker crash never fired"
    )
    crashed = load_table_rows(workdir / "crash_out")
    assert crashed.keys() == reference.keys(), (
        "crash-leg sweep covers different arms than the reference"
    )
    for arm, expected in reference.items():
        assert crashed[arm] == expected, (
            f"{arm}: with worker crashes {crashed[arm]} != "
            f"reference {expected} — retry was not bitwise-faithful"
        )
    print(
        f"OK: both injected crashes fired; all {len(reference)} arms "
        "bitwise identical to the undisturbed reference"
    )

    print("\n=== keep-going leg: deterministically failing arm ===")
    poison_env = dict(base_env)
    poison_env["RLPLANNER_CHAOS"] = json.dumps(
        {
            "point": "scheduler.job",
            "mode": "raise",
            "error": "deterministic",
            "match": POISONED_ARM,
            "times": 0,  # fires on every attempt: a permanent failure
        }
    )
    store = workdir / "keepgoing_store"
    proc = run_sweep(
        workdir / "keepgoing_out",
        poison_env,
        extra=[
            "--keep-going",
            "--resume",
            "--store-dir",
            str(store),
        ],
        check=False,
    )
    assert proc.returncode != 0, (
        "sweep with a quarantined arm exited 0 — partial sweeps must "
        "exit nonzero"
    )

    report = json.loads((workdir / "keepgoing_out" / "report.json").read_text())
    assert report["ok"] is False
    triage = {
        job_id: entry["status"] for job_id, entry in report["jobs"].items()
    }
    assert triage.get(POISONED_ARM) == "quarantined", (
        f"expected {POISONED_ARM} quarantined, triage: {triage}"
    )
    quarantined = [j for j, s in triage.items() if s == "quarantined"]
    assert quarantined == [POISONED_ARM], (
        f"unexpected extra quarantines: {quarantined}"
    )

    surviving = load_table_rows(workdir / "keepgoing_out")
    expected_surviving = {
        arm for arm in reference if f"{arm[0]}/{arm[1]}" != POISONED_ARM
    }
    assert set(surviving) == expected_surviving, (
        f"surviving arms {sorted(surviving)} != expected "
        f"{sorted(expected_surviving)}"
    )
    for arm in expected_surviving:
        assert surviving[arm] == reference[arm], (
            f"{arm}: surviving arm {surviving[arm]} != reference "
            f"{reference[arm]}"
        )
    published = snapshot_results(store)
    assert len(published) == len(expected_surviving), (
        f"{len(published)} store artifacts for "
        f"{len(expected_surviving)} surviving arms — independent arms "
        "must publish even when a sibling is quarantined"
    )
    print(
        f"OK: {POISONED_ARM} quarantined; {len(expected_surviving)} "
        "surviving arms bitwise identical and published to the store"
    )

    print("\n=== async leg: SIGKILL a prefetch worker mid-epoch ===")
    run_sweep(workdir / "async_ref_out", base_env, extra=["--async-collect"])
    async_reference = load_table_rows(workdir / "async_ref_out")
    assert async_reference.keys() == reference.keys(), (
        "async sweep covers different arms than the lockstep reference"
    )
    assert any(
        async_reference[arm] != reference[arm]
        for arm in reference
        if "RLPlanner" in arm[1]
    ), (
        "async RL arms match lockstep bitwise — the one-epoch staleness "
        "schedule is not actually engaged"
    )

    prefetch_dir = workdir / "chaos_prefetch"
    async_env = dict(base_env)
    async_env["RLPLANNER_CHAOS"] = json.dumps(
        {
            "point": "collector.prefetch",
            "mode": "crash",
            "times": 1,
            "dir": str(prefetch_dir),
        }
    )
    run_sweep(
        workdir / "async_crash_out", async_env, extra=["--async-collect"]
    )
    assert len(list(prefetch_dir.iterdir())) == 1, (
        "the prefetch-worker crash never fired"
    )
    async_crashed = load_table_rows(workdir / "async_crash_out")
    assert async_crashed.keys() == async_reference.keys()
    for arm, expected in async_reference.items():
        assert async_crashed[arm] == expected, (
            f"{arm}: with a prefetch-worker crash {async_crashed[arm]} != "
            f"async reference {expected} — re-dispatch from the stored "
            "pre-update weights was not bitwise-faithful"
        )
    print(
        f"OK: prefetch crash fired; all {len(async_reference)} arms "
        "bitwise identical to the undisturbed async reference"
    )

    print("\n=== remote leg: kill + disconnect leased TCP workers ===")
    # A fixed port so persistent workers can re-lease across the
    # sweep's successive per-arm coordinators; --jobs 1 (argparse
    # last-wins over SWEEP_ARGS) keeps one coordinator on it at a time.
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    kill_dir = workdir / "chaos_remote_kill"
    disc_dir = workdir / "chaos_remote_disc"
    remote_env = dict(base_env)
    remote_env["RLPLANNER_CHAOS"] = json.dumps(
        [
            # SIGKILL one remote worker mid-slice, once (fires inside
            # a collect_worker.py subprocess — the trainer runs no
            # collector.slice point of its own under remote dispatch).
            {
                "point": "collector.slice",
                "mode": "crash",
                "times": 1,
                "dir": str(kill_dir),
            },
            # Sever the other worker's connection mid-conversation,
            # once (worker-side recv; it must reconnect and re-lease).
            {
                "point": "transport.recv",
                "mode": "disconnect",
                "match": "worker",
                "times": 1,
                "dir": str(disc_dir),
            },
        ]
    )
    workers = [
        subprocess.Popen(
            [
                sys.executable,
                str(REPO_ROOT / "scripts" / "collect_worker.py"),
                "--connect",
                f"127.0.0.1:{port}",
                "--worker-id",
                f"ci-remote-{index}",
                "--persist",
                "--backoff-base",
                "0.1",
                "--backoff-max",
                "1.0",
            ],
            env=remote_env,
            cwd=REPO_ROOT,
        )
        for index in range(2)
    ]
    try:
        run_sweep(
            workdir / "remote_out",
            remote_env,
            extra=[
                "--collect-workers",
                "2",
                "--collect-bind",
                f"127.0.0.1:{port}",
                "--jobs",
                "1",
            ],
        )
    finally:
        for worker in workers:
            if worker.poll() is None:
                worker.terminate()
        for worker in workers:
            try:
                worker.wait(timeout=20)
            except subprocess.TimeoutExpired:
                worker.kill()
                worker.wait(timeout=20)
    assert len(list(kill_dir.iterdir())) == 1, (
        "the remote-worker SIGKILL never fired"
    )
    assert len(list(disc_dir.iterdir())) == 1, (
        "the chaos disconnect never fired"
    )
    remote = load_table_rows(workdir / "remote_out")
    assert remote.keys() == reference.keys(), (
        "remote-leg sweep covers different arms than the reference"
    )
    for arm, expected in reference.items():
        assert remote[arm] == expected, (
            f"{arm}: with remote collection under kill+disconnect "
            f"{remote[arm]} != reference {expected} — lease recovery "
            "was not bitwise-faithful"
        )
    print(
        f"OK: remote kill + disconnect both fired; all {len(reference)} "
        "arms bitwise identical to the in-process reference"
    )

    print("\nchaos smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
