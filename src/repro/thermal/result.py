"""Thermal evaluation result container."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.thermal.config import KELVIN_OFFSET

__all__ = ["ThermalResult"]


@dataclass(frozen=True)
class ThermalResult:
    """Outcome of one thermal evaluation.

    Attributes
    ----------
    chiplet_temperatures:
        Name -> hottest-cell temperature of that die, in K.
    max_temperature:
        System maximum in K (max over chiplets).
    grid_temperatures:
        Optional full field, shape ``(n_layers, rows, cols)`` in K —
        the grid solver fills this, the surrogate leaves it ``None``.
    elapsed:
        Wall-clock seconds spent in the evaluation.
    """

    chiplet_temperatures: dict
    max_temperature: float
    grid_temperatures: np.ndarray | None = None
    elapsed: float = 0.0
    metadata: dict = field(default_factory=dict)

    @property
    def max_temperature_celsius(self) -> float:
        return self.max_temperature - KELVIN_OFFSET

    @property
    def hottest_chiplet(self) -> str:
        """Name of the die reaching :attr:`max_temperature`."""
        return max(self.chiplet_temperatures, key=self.chiplet_temperatures.get)

    def temperature_of(self, name: str, celsius: bool = False) -> float:
        t = self.chiplet_temperatures[name]
        return t - KELVIN_OFFSET if celsius else t
