"""Differential fast-model-vs-ground-truth harness + multi-RHS solver tests.

Two families of guarantees land here:

1. **Accuracy envelope** — on every bundled benchmark system
   (multi_gpu, cpu_dram, ascend910, synthetic), seeded random legal
   placements are evaluated by both :class:`FastThermalModel` and
   :class:`GridThermalSolver`; peak temperatures must stay inside the
   paper's documented envelope (``PEAK_TEMP_*_ERROR_C``) and per-chiplet
   temperatures inside the wider documented per-die envelope
   (``CHIPLET_TEMP_*_ERROR_C``).  A solver, characterization, or
   surrogate change that degrades either fails here instead of silently
   skewing reproduced tables.

2. **Multi-RHS batched solver** — ``solve_footprints_many`` /
   ``evaluate_many`` / ``max_temperatures`` must be *bitwise* identical
   to sequential solves (that is what lets the HotSpot SA arm join the
   multi-chain annealing engine), must amortize to one factorization
   per batch in homogeneous mode, and must fall back to per-column
   factorizations in heterogeneous mode.  ``solve_count`` /
   ``factorization_count`` accounting makes the sharing observable.

The systems use coarsened grids (32x32) and characterization sampling so
the module stays fast; every code path is resolution-independent.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.baselines import SAConfig, SimulatedAnnealing, TAP25DConfig, TAP25DPlacer
from repro.baselines.random_search import random_legal_placement
from repro.chiplet import Chiplet, ChipletSystem, Placement
from repro.reward import RewardCalculator, RewardConfig
from repro.systems import get_benchmark
from repro.thermal import (
    FastThermalModel,
    GridThermalSolver,
    ThermalConfig,
    characterize_tables,
)
from repro.thermal.fast_model import (
    CHIPLET_TEMP_MAX_ERROR_C,
    CHIPLET_TEMP_MEAN_ERROR_C,
    PEAK_TEMP_MAX_ERROR_C,
    PEAK_TEMP_MEAN_ERROR_C,
)

DIFFERENTIAL_SYSTEMS = ("multi_gpu", "cpu_dram", "ascend910", "synthetic1")
N_PLACEMENTS = 8
PLACEMENT_SEED = 7


@pytest.fixture(scope="module", params=DIFFERENTIAL_SYSTEMS)
def differential_setup(request):
    """(system, solver, fast model) triple on a coarsened test grid."""
    spec = get_benchmark(request.param)
    config = replace(spec.thermal_config, rows=32, cols=32)
    sizes = []
    for chiplet in spec.system.chiplets:
        sizes.append((chiplet.width, chiplet.height))
        if chiplet.rotatable:
            sizes.append((chiplet.height, chiplet.width))
    solver = GridThermalSolver(
        spec.system.interposer, config, reuse_factorization=True
    )
    tables = characterize_tables(
        spec.system.interposer,
        sizes,
        config,
        position_samples=(5, 5),
        solver=solver,
    )
    return spec.system, solver, FastThermalModel(tables, config)


def _seeded_placements(system, n=N_PLACEMENTS, seed=PLACEMENT_SEED):
    rng = np.random.default_rng(seed)
    return [random_legal_placement(system, rng) for _ in range(n)]


class TestAccuracyEnvelope:
    """Fast model vs ground truth on every bundled benchmark system."""

    def test_peak_and_per_chiplet_errors_within_envelope(
        self, differential_setup
    ):
        system, solver, fast = differential_setup
        peak_errors, chiplet_errors = [], []
        for placement in _seeded_placements(system):
            ref = solver.evaluate(placement)
            pred = fast.evaluate(placement)
            peak_errors.append(
                abs(pred.max_temperature - ref.max_temperature)
            )
            for name, temp in ref.chiplet_temperatures.items():
                chiplet_errors.append(
                    abs(pred.chiplet_temperatures[name] - temp)
                )
        peak_errors = np.array(peak_errors)
        chiplet_errors = np.array(chiplet_errors)
        assert peak_errors.max() < PEAK_TEMP_MAX_ERROR_C
        assert peak_errors.mean() < PEAK_TEMP_MEAN_ERROR_C
        assert chiplet_errors.max() < CHIPLET_TEMP_MAX_ERROR_C
        assert chiplet_errors.mean() < CHIPLET_TEMP_MEAN_ERROR_C

    def test_fast_batch_matches_fast_scalar(self, differential_setup):
        """The surrogate's own batch path agrees with its scalar path."""
        system, _, fast = differential_setup
        placements = _seeded_placements(system, n=4)
        batch = fast.max_temperatures(placements)
        scalar = np.array(
            [fast.evaluate(p).max_temperature for p in placements]
        )
        np.testing.assert_allclose(batch, scalar, rtol=0, atol=1e-9)


class TestMultiRHSBitwise:
    """The batched grid solver vs sequential solves, to the last bit."""

    def test_evaluate_many_bitwise_equals_sequential(
        self, differential_setup
    ):
        system, solver, _ = differential_setup
        placements = _seeded_placements(system, n=4)
        sequential = [solver.evaluate(p) for p in placements]
        batched = solver.evaluate_many(placements)
        assert len(batched) == len(sequential)
        for seq, bat in zip(sequential, batched):
            assert bat.chiplet_temperatures == seq.chiplet_temperatures
            assert bat.max_temperature == seq.max_temperature
            assert np.array_equal(
                bat.grid_temperatures, seq.grid_temperatures
            )

    def test_max_temperatures_bitwise(self, differential_setup):
        system, solver, _ = differential_setup
        placements = _seeded_placements(system, n=4)
        batched = solver.max_temperatures(placements)
        scalar = np.array(
            [solver.evaluate(p).max_temperature for p in placements]
        )
        assert np.array_equal(batched, scalar)

    def test_fresh_solver_block_solve_bitwise(self, differential_setup):
        """reuse_factorization=False: fresh per-call factorizations still
        reproduce the cached solver's solutions bitwise (deterministic
        assembly => identical matrix => identical LU)."""
        system, cached_solver, _ = differential_setup
        fresh = GridThermalSolver(system.interposer, cached_solver.config)
        placements = _seeded_placements(system, n=3)
        fields_fresh = fresh.evaluate_many(placements)
        fields_cached = cached_solver.evaluate_many(placements)
        for a, b in zip(fields_fresh, fields_cached):
            assert np.array_equal(a.grid_temperatures, b.grid_temperatures)


class TestSolveAccounting:
    """solve_count counts columns; factorization_count counts LU runs."""

    def _solver_and_placements(self, reuse):
        system = ChipletSystem(
            "acct",
            get_benchmark("synthetic1").system.interposer,
            (
                Chiplet("a", 8.0, 8.0, 40.0),
                Chiplet("b", 6.0, 6.0, 10.0),
            ),
        )
        config = ThermalConfig(rows=16, cols=16, package_margin=8.0)
        solver = GridThermalSolver(
            system.interposer, config, reuse_factorization=reuse
        )
        placements = []
        for x in (2.0, 12.0, 22.0):
            p = Placement(system)
            p.place("a", x, 2.0)
            p.place("b", x, 20.0)
            placements.append(p)
        return solver, placements

    def test_batched_call_counts_all_columns_one_factorization(self):
        solver, placements = self._solver_and_placements(reuse=False)
        solver.evaluate_many(placements)
        assert solver.solve_count == 3
        assert solver.factorization_count == 1
        # A second batched call re-factorizes (HotSpot-like per-call
        # cost at batch granularity) but still only once for the block.
        solver.evaluate_many(placements)
        assert solver.solve_count == 6
        assert solver.factorization_count == 2

    def test_reused_factorization_shared_across_batches(self):
        solver, placements = self._solver_and_placements(reuse=True)
        solver.evaluate_many(placements)
        solver.evaluate_many(placements)
        solver.evaluate(placements[0])
        assert solver.solve_count == 7
        assert solver.factorization_count == 1

    def test_sequential_scalar_counts(self):
        solver, placements = self._solver_and_placements(reuse=False)
        for p in placements:
            solver.evaluate(p)
        assert solver.solve_count == 3
        assert solver.factorization_count == 3

    def test_heterogeneous_mode_falls_back_per_column(self):
        system = ChipletSystem(
            "het",
            get_benchmark("synthetic1").system.interposer,
            (Chiplet("a", 8.0, 8.0, 40.0),),
        )
        config = ThermalConfig(
            rows=16,
            cols=16,
            package_margin=8.0,
            heterogeneous_chiplet_layer=True,
        )
        solver = GridThermalSolver(system.interposer, config)
        placements = []
        for x in (2.0, 20.0):
            p = Placement(system)
            p.place("a", x, 10.0)
            placements.append(p)
        batched = solver.evaluate_many(placements)
        # Coverage-dependent matrix: one factorization per configuration.
        assert solver.solve_count == 2
        assert solver.factorization_count == 2
        reference = GridThermalSolver(system.interposer, config)
        for result, p in zip(batched, placements):
            assert np.array_equal(
                result.grid_temperatures,
                reference.evaluate(p).grid_temperatures,
            )

    def test_empty_batch(self):
        solver, _ = self._solver_and_placements(reuse=False)
        assert solver.evaluate_many([]) == []
        assert len(solver.max_temperatures([])) == 0
        assert solver.solve_count == 0
        assert solver.factorization_count == 0

    def test_mismatched_lengths_rejected(self):
        solver, placements = self._solver_and_placements(reuse=False)
        footprints = [p.footprints() for p in placements]
        with pytest.raises(ValueError, match="lengths"):
            solver.solve_footprints_many(footprints, [{}])


class TestExactRewardAdapter:
    """RewardCalculator routing for solver-backed (exact) evaluators."""

    @pytest.fixture(scope="class")
    def hotspot_calc(self, small_interposer, small_system):
        config = ThermalConfig(rows=16, cols=16, package_margin=8.0)
        calc = RewardCalculator(
            GridThermalSolver(small_interposer, config),
            RewardConfig(lambda_wl=1e-4, use_bump_assignment=False),
        )
        return calc, small_system

    def test_evaluate_many_bitwise_equals_scalar(self, hotspot_calc):
        calc, system = hotspot_calc
        placements = _seeded_placements(system, n=5, seed=3)
        batched = calc.evaluate_many(placements)
        scalar = np.array([calc.evaluate(p).reward for p in placements])
        assert np.array_equal(batched, scalar)

    def test_exact_adapter_used_for_solver(self, hotspot_calc):
        calc, system = hotspot_calc
        assert calc.thermal.exact_batched_rewards is True
        placements = _seeded_placements(system, n=3, seed=4)
        exact = calc.evaluate_many_exact(placements)
        routed = calc.evaluate_many(placements)
        assert np.array_equal(exact, routed)

    def test_fast_model_keeps_vectorized_path(self, small_fast_model):
        assert not getattr(
            small_fast_model, "exact_batched_rewards", False
        )


class TestHotSpotArmMultiChain:
    """run_chains with the grid solver == M sequential seeded runs."""

    N_CHAINS = 16

    @pytest.fixture(scope="class")
    def annealing_pieces(self, small_interposer, small_system):
        config = ThermalConfig(rows=16, cols=16, package_margin=8.0)
        calc = RewardCalculator(
            GridThermalSolver(small_interposer, config),
            RewardConfig(lambda_wl=1e-4, use_bump_assignment=False),
        )
        placer = TAP25DPlacer(small_system, calc, TAP25DConfig())
        return calc, placer

    def test_16_chains_bitwise_equal_16_sequential_runs(
        self, annealing_pieces
    ):
        calc, placer = annealing_pieces
        initial = placer.initial_placement()

        def evaluate(placement):
            return -calc.evaluate(placement).reward

        def evaluate_many(placements):
            return -calc.evaluate_many(placements)

        def make_engine(seed, chains):
            return SimulatedAnnealing(
                propose=placer.propose,
                evaluate=evaluate,
                config=SAConfig(
                    n_iterations=10, seed=seed, n_chains=chains
                ),
                evaluate_many=evaluate_many,
            )

        multi = make_engine(11, self.N_CHAINS).run(initial)
        assert multi.n_chains == self.N_CHAINS
        sequential_best = []
        for c in range(self.N_CHAINS):
            solo = make_engine(11 + c, 1).run(initial)
            assert multi.chain_best_costs[c] == solo.best_cost, (
                f"chain {c} diverged from its sequential twin"
            )
            sequential_best.append(solo.best_cost)
        assert multi.best_cost == min(sequential_best)

    def test_multichain_amortizes_factorizations(self, annealing_pieces):
        calc, placer = annealing_pieces
        solver = calc.thermal
        solver.solve_count = 0
        solver.factorization_count = 0
        result = TAP25DPlacer(
            placer.system,
            calc,
            TAP25DConfig(n_iterations=8, seed=2, n_chains=8),
        ).run()
        assert result.n_evaluations > 8
        # Without the multi-RHS path every solve would factorize; with
        # it, factorizations only happen once per lockstep step.
        assert solver.factorization_count < solver.solve_count / 2

    def test_reuse_factorization_amortizes_across_sa_steps(
        self, small_interposer, small_system
    ):
        """ROADMAP follow-up from PR 3: ``reuse_factorization=True`` keeps
        ONE splu factorization alive across successive ``evaluate_many``
        calls — across lockstep SA steps, not just within one — and the
        whole annealing run is bitwise identical to the fresh-per-step
        solver (deterministic assembly => identical LU)."""
        config = ThermalConfig(rows=16, cols=16, package_margin=8.0)
        results = {}
        solvers = {}
        for reuse in (False, True):
            solver = GridThermalSolver(
                small_interposer, config, reuse_factorization=reuse
            )
            solvers[reuse] = solver
            calc = RewardCalculator(
                solver,
                RewardConfig(lambda_wl=1e-4, use_bump_assignment=False),
            )
            results[reuse] = TAP25DPlacer(
                small_system,
                calc,
                TAP25DConfig(n_iterations=6, seed=2, n_chains=4),
            ).run()
        reused = solvers[True]
        fresh = solvers[False]
        assert reused.solve_count == fresh.solve_count
        # Calibration + every SA step share the single factorization.
        assert reused.factorization_count == 1
        assert fresh.factorization_count > reused.solve_count / 8
        # Same solves, same answers — bit for bit.
        assert results[True].reward == results[False].reward
        assert (
            results[True].placement.as_dict()
            == results[False].placement.as_dict()
        )
