"""Unit and property tests for repro.geometry.rect."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Rect


def rects(max_coord=50.0, max_size=20.0):
    finite = st.floats(
        min_value=-max_coord, max_value=max_coord, allow_nan=False
    )
    size = st.floats(min_value=0.1, max_value=max_size, allow_nan=False)
    return st.builds(Rect, finite, finite, size, size)


class TestConstruction:
    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 0.0, 1.0)

    def test_rejects_negative_height(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 1.0, -2.0)

    def test_from_center(self):
        r = Rect.from_center(5.0, 5.0, 4.0, 2.0)
        assert r.x == 3.0 and r.y == 4.0
        assert r.center == (5.0, 5.0)

    def test_from_corners_any_order(self):
        a = Rect.from_corners(0, 0, 2, 3)
        b = Rect.from_corners(2, 3, 0, 0)
        assert a == b
        assert a.w == 2 and a.h == 3

    def test_derived_coordinates(self):
        r = Rect(1.0, 2.0, 3.0, 4.0)
        assert r.x2 == 4.0
        assert r.y2 == 6.0
        assert r.cx == 2.5
        assert r.cy == 4.0
        assert r.area == 12.0
        assert r.aspect == 0.75


class TestPredicates:
    def test_abutting_rects_do_not_overlap(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(2, 0, 2, 2)
        assert not a.overlaps(b)
        assert not b.overlaps(a)

    def test_interior_intersection_overlaps(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(1.5, 1.5, 2, 2)
        assert a.overlaps(b)

    def test_containment(self):
        outer = Rect(0, 0, 10, 10)
        inner = Rect(1, 1, 3, 3)
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)
        assert outer.contains_rect(outer)

    def test_contains_point_half_open(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains_point(0.0, 0.0)
        assert not r.contains_point(2.0, 1.0)
        assert not r.contains_point(1.0, 2.0)


class TestMeasures:
    def test_intersection_area(self):
        a = Rect(0, 0, 4, 4)
        b = Rect(2, 2, 4, 4)
        assert a.intersection_area(b) == pytest.approx(4.0)

    def test_intersection_area_disjoint(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(5, 5, 1, 1)
        assert a.intersection_area(b) == 0.0

    def test_gap_of_touching_rects_is_zero(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(2, 0, 2, 2)
        assert a.gap(b) == 0.0

    def test_gap_axis_separated(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(3, 0, 2, 2)
        assert a.gap(b) == pytest.approx(1.0)

    def test_gap_diagonal(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(2, 2, 1, 1)
        assert a.gap(b) == pytest.approx(math.sqrt(2.0))

    def test_center_distances(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(3, 4, 2, 2)
        assert a.center_distance(b) == pytest.approx(5.0)
        assert a.center_manhattan(b) == pytest.approx(7.0)

    def test_union_bbox(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(4, 5, 1, 1)
        u = a.union_bbox(b)
        assert (u.x, u.y, u.x2, u.y2) == (0, 0, 5, 6)


class TestTransforms:
    def test_rotated_swaps_dims(self):
        r = Rect(1, 2, 3, 4).rotated()
        assert (r.w, r.h) == (4, 3)
        assert (r.x, r.y) == (1, 2)

    def test_translated(self):
        r = Rect(0, 0, 1, 1).translated(2.5, -1.0)
        assert (r.x, r.y) == (2.5, -1.0)

    def test_inflated(self):
        r = Rect(1, 1, 2, 2).inflated(0.5)
        assert (r.x, r.y, r.w, r.h) == (0.5, 0.5, 3.0, 3.0)


class TestProperties:
    @given(rects(), rects())
    def test_overlap_is_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(rects(), rects())
    def test_overlap_iff_positive_intersection_area(self, a, b):
        assert a.overlaps(b) == (a.intersection_area(b) > 0.0)

    @given(rects())
    def test_self_intersection_is_area(self, r):
        assert r.intersection_area(r) == pytest.approx(r.area, rel=1e-6)

    @given(rects(), rects())
    def test_gap_zero_when_overlapping(self, a, b):
        if a.overlaps(b):
            assert a.gap(b) == 0.0

    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        u = a.union_bbox(b)
        assert u.contains_rect(a) and u.contains_rect(b)

    @given(rects())
    def test_rotation_is_involution(self, r):
        assert r.rotated().rotated() == r

    @given(rects())
    def test_center_is_inside(self, r):
        assert r.contains_point(r.cx, r.cy)
