"""Pipelined (async) actor/learner overlap: the PR-8 tentpole.

``TrainerConfig.async_collect`` overlaps epoch k's PPO update with the
collection of epoch k+1, which is collected with the *pre-update*
epoch-k policy (a fixed one-epoch staleness schedule; epoch 0 is always
collected synchronously with the initial policy).  These tests pin the
mode's own determinism contract:

* async runs are **reproducible** at a fixed ``(seed, collect_jobs)``
  and **invariant** to ``collect_jobs`` — pooled and in-process async
  runs match bitwise (the staleness schedule is part of the algorithm,
  never an artifact of timing);
* the staleness schedule itself: the prefetch for epoch 1 carries the
  exact serialized pre-update initial weights — the same bytes epoch 0
  collected with — and later prefetches carry fresher weights;
* checkpoint/resume: the in-flight prefetch is persisted (weights
  bytes + index range), discarded, and deterministically re-collected
  on resume — kill+resume matches the uninterrupted async run bitwise;
* a lockstep trainer resuming an async checkpoint warns and rewinds
  the episode counter instead of silently skipping the pending block;
* ``async_collect`` + the sequential engine (``batch_size=1``) raises —
  the mode is semantic, so a silent fallback would poison store keys;
* ``async_collect`` is a **semantic** budget field (enters store keys),
  unlike ``collect_jobs`` which never does.

The lockstep default path is pinned elsewhere (goldens +
``test_collector``/``test_trainer_batched``); nothing here touches it.
"""

import logging

import pytest

from repro.agent import RLPlannerTrainer, TrainerConfig
from repro.env import EnvConfig, FloorplanEnv
from repro.experiments.runner import ExperimentBudget, budget_store_payload
from repro.reward import RewardCalculator, RewardConfig
from test_collector import _Interrupted, _distill, _make_trainer


@pytest.fixture
def trainer_env(small_system, small_fast_model):
    calc = RewardCalculator(
        small_fast_model, RewardConfig(lambda_wl=1e-4, use_bump_assignment=False)
    )
    return FloorplanEnv(small_system, calc, EnvConfig(grid_size=10))


def _train_async(env, **overrides):
    defaults = dict(epochs=3, async_collect=True)
    defaults.update(overrides)
    trainer = _make_trainer(env, **defaults)
    try:
        return _distill(trainer.train())
    finally:
        trainer.close_collector()


class TestAsyncDeterminism:
    def test_reproducible_at_fixed_seed(self, trainer_env):
        first = _train_async(trainer_env)
        second = _train_async(trainer_env)
        assert first == second

    def test_differs_from_lockstep_schedule(self, trainer_env):
        # Documented semantics, pinned: one epoch of policy staleness
        # changes the training trajectory.  If this ever starts passing
        # as equal, async is silently running lockstep.
        lockstep = _distill(_make_trainer(trainer_env, epochs=3).train())
        assert _train_async(trainer_env) != lockstep

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_invariant_to_collect_jobs(self, trainer_env, jobs):
        reference = _train_async(trainer_env)
        pooled = _train_async(trainer_env, collect_jobs=jobs)
        assert pooled == reference

    def test_epoch_one_collects_with_preupdate_initial_weights(
        self, trainer_env
    ):
        """The staleness schedule, pinned at the broadcast boundary:
        epoch 0 collects synchronously with the initial policy, and the
        prefetch for epoch 1 is dispatched with those *same* serialized
        bytes — before update 0 runs.  Epoch 2's prefetch then carries
        post-update-0 weights."""
        trainer = _make_trainer(
            trainer_env, epochs=3, collect_jobs=2, async_collect=True
        )
        collector = trainer._collector
        sync_calls, prefetch_calls = [], []

        original_collect = collector.collect_with_weights
        original_prefetch = collector.prefetch

        def spy_collect(weights, start_index, count, greedy=False):
            sync_calls.append((start_index, weights))
            return original_collect(weights, start_index, count, greedy=greedy)

        def spy_prefetch(weights, start_index, count, greedy=False):
            prefetch_calls.append((start_index, weights))
            return original_prefetch(weights, start_index, count, greedy=greedy)

        collector.collect_with_weights = spy_collect
        collector.prefetch = spy_prefetch
        try:
            trainer.train()
        finally:
            trainer.close_collector()

        # Epoch 0 synchronous; epochs 1 and 2 prefetched; no prefetch
        # past the last epoch.
        assert [start for start, _ in sync_calls] == [0]
        assert [start for start, _ in prefetch_calls] == [5, 10]
        theta0 = sync_calls[0][1]
        assert prefetch_calls[0][1] == theta0  # pre-update: same bytes
        assert prefetch_calls[1][1] != theta0  # post-update-0 weights

    def test_async_with_sequential_engine_raises(self):
        with pytest.raises(ValueError, match="batched engine"):
            TrainerConfig(async_collect=True, batch_size=1)

    def test_async_without_collector_warns(self, trainer_env, caplog):
        logger = logging.getLogger("repro")
        logger.addHandler(caplog.handler)
        try:
            trainer = _make_trainer(trainer_env, async_collect=True)
        finally:
            logger.removeHandler(caplog.handler)
        assert trainer._collector is None
        assert any(
            "async_collect without collect_jobs" in rec.getMessage()
            for rec in caplog.records
        )


class TestAsyncResume:
    def test_kill_and_resume_bitwise(self, trainer_env, tmp_path):
        """Async run killed at epoch 2 — with the epoch-3 prefetch in
        flight — resumes to the uninterrupted run, bitwise.  The
        pending block is persisted as (stored stale weights, index
        range), dropped, and re-collected from those bytes on resume."""
        reference_trainer = _make_trainer(
            trainer_env, epochs=4, collect_jobs=2, async_collect=True
        )
        reference = _distill(reference_trainer.train())
        reference_trainer.close_collector()

        path = tmp_path / "ckpt.npz"
        interrupted = _make_trainer(
            trainer_env,
            epochs=4,
            collect_jobs=2,
            async_collect=True,
            checkpoint_every=2,
        )

        def kill_at_checkpoint(state):
            # The prefetch for the next epoch is already in flight —
            # the checkpoint must carry it.
            assert state["async_prefetch"] is not None
            assert isinstance(state["async_prefetch"]["weights"], bytes)
            interrupted.save_checkpoint(path)
            raise _Interrupted()

        with pytest.raises(_Interrupted):
            interrupted.train(checkpoint_fn=kill_at_checkpoint)
        interrupted.close_collector()

        resumed = _make_trainer(
            trainer_env,
            epochs=4,
            collect_jobs=2,
            async_collect=True,
            checkpoint_every=2,
        )
        resumed.load_checkpoint(path)
        assert resumed._progress["epochs_run"] == 2
        result = resumed.train()
        resumed.close_collector()
        assert _distill(result) == reference

    def test_resume_under_different_collect_jobs_bitwise(
        self, trainer_env, tmp_path
    ):
        """Worker count stays non-semantic under async: a pooled async
        run killed mid-flight resumes bitwise on an in-process trainer."""
        reference = _train_async(trainer_env, epochs=4)

        path = tmp_path / "ckpt.npz"
        interrupted = _make_trainer(
            trainer_env,
            epochs=4,
            collect_jobs=2,
            async_collect=True,
            checkpoint_every=2,
        )

        def kill_at_checkpoint(state):
            interrupted.save_checkpoint(path)
            raise _Interrupted()

        with pytest.raises(_Interrupted):
            interrupted.train(checkpoint_fn=kill_at_checkpoint)
        interrupted.close_collector()

        resumed = _make_trainer(
            trainer_env, epochs=4, async_collect=True, checkpoint_every=2
        )
        resumed.load_checkpoint(path)
        assert _distill(resumed.train()) == reference

    def test_lockstep_resume_of_async_checkpoint_warns_and_rewinds(
        self, trainer_env, tmp_path, caplog
    ):
        path = tmp_path / "ckpt.npz"
        interrupted = _make_trainer(
            trainer_env, epochs=4, async_collect=True, checkpoint_every=2
        )

        def kill_at_checkpoint(state):
            interrupted.save_checkpoint(path)
            raise _Interrupted()

        with pytest.raises(_Interrupted):
            interrupted.train(checkpoint_fn=kill_at_checkpoint)
        index_with_pending = interrupted._episode_index

        resumed = _make_trainer(trainer_env, epochs=4, checkpoint_every=2)
        logger = logging.getLogger("repro")
        logger.addHandler(caplog.handler)
        try:
            resumed.load_checkpoint(path)
        finally:
            logger.removeHandler(caplog.handler)
        assert any(
            "async_collect" in rec.getMessage() for rec in caplog.records
        )
        # The never-consumed pending block is handed back: lockstep
        # collection restarts at the block's own start index.
        assert resumed._episode_index == index_with_pending - 5
        result = resumed.train()
        assert result.epochs_run == 4


class TestAsyncBudgetSemantics:
    def test_async_collect_is_semantic_in_store_keys(self):
        lockstep = budget_store_payload(ExperimentBudget())
        pipelined = budget_store_payload(
            ExperimentBudget(async_collect=True)
        )
        assert lockstep["async_collect"] is False
        assert pipelined["async_collect"] is True
        assert lockstep != pipelined
        # collect_jobs stays non-semantic either way.
        assert "collect_jobs" not in lockstep
