"""TAP-2.5D: simulated-annealing thermal-aware chiplet placement.

Reimplementation of the baseline the paper compares against [Ma et al.,
DATE 2021].  TAP-2.5D anneals over continuous chiplet positions with
displace / swap / rotate moves and evaluates each accepted layout with a
full thermal analysis plus microbump-assigned wirelength — the same
objective RLPlanner optimizes, so Tables I/III compare like for like.

Pairing it with :class:`~repro.thermal.GridThermalSolver` reproduces
"TAP-2.5D (HotSpot)"; pairing it with
:class:`~repro.thermal.FastThermalModel` reproduces "TAP-2.5D* (fast
thermal model)".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.sa import SAConfig, SimulatedAnnealing
from repro.chiplet import ChipletSystem, Placement
from repro.chiplet.validate import placement_is_legal, placement_violations
from repro.reward import RewardCalculator
from repro.utils import get_logger

__all__ = ["TAP25DConfig", "PlacerResult", "TAP25DPlacer"]

_logger = get_logger("baselines.tap25d")


@dataclass(frozen=True)
class TAP25DConfig:
    """Placer parameters.

    Attributes
    ----------
    n_iterations:
        SA proposal budget.
    displace_fraction / swap_fraction / rotate_fraction:
        Move-type mix (must sum to 1).
    max_displacement_fraction:
        Initial displacement radius as a fraction of the interposer
        extent; shrinks linearly to 10 % of itself as annealing cools.
    time_limit:
        Wall-clock cap in seconds (time-matched comparisons).
    n_chains:
        Independent lockstep annealing chains; every chain spends the
        full ``n_iterations`` budget and the best layout over all chains
        wins.  Chains > 1 evaluate candidates through the batched
        reward path (one vectorized thermal pass per step); ``1`` is the
        original sequential engine, kept bit-for-bit.
    incremental:
        Single-chain only: evaluate candidates through an incremental
        ``FastThermalModel`` (O(moved x n) single-move deltas instead
        of the full O(n^2) superposition rebuild — the win grows with
        die count).  Requires the reward calculator's thermal evaluator
        to be a fast model; ignored (with a log message) otherwise, and
        ignored when ``n_chains > 1`` since the delta path needs one
        consecutive evaluate chain to diff against.  Results match the
        full evaluation to ~1e-9 degC (exactness-pinned), not bitwise.
    history_stride:
        Thin the recorded history to every ``stride``-th iteration.
    checkpoint_every:
        Snapshot cadence in SA iterations (0 = never); see
        :attr:`repro.baselines.sa.SAConfig.checkpoint_every`.
    """

    n_iterations: int = 2000
    initial_temperature: float | None = None
    final_temperature: float = 1e-3
    displace_fraction: float = 0.6
    swap_fraction: float = 0.3
    rotate_fraction: float = 0.1
    max_displacement_fraction: float = 0.5
    time_limit: float | None = None
    seed: int = 0
    n_chains: int = 1
    incremental: bool = False
    history_stride: int = 1
    checkpoint_every: int = 0

    def __post_init__(self) -> None:
        mix = self.displace_fraction + self.swap_fraction + self.rotate_fraction
        if abs(mix - 1.0) > 1e-9:
            raise ValueError("move fractions must sum to 1")
        if self.n_chains < 1:
            raise ValueError("n_chains must be >= 1")


@dataclass
class PlacerResult:
    """Best floorplan found by the placer."""

    placement: Placement
    breakdown: object
    n_evaluations: int
    elapsed: float
    history: list = field(default_factory=list)

    @property
    def reward(self) -> float:
        return self.breakdown.reward


class TAP25DPlacer:
    """SA-based thermal-aware placer for one system.

    Parameters
    ----------
    system:
        The design to floorplan.
    reward_calculator:
        Shared objective evaluator (choice of thermal backend selects the
        TAP-2.5D variant).
    config:
        Annealing parameters.
    """

    def __init__(
        self,
        system: ChipletSystem,
        reward_calculator: RewardCalculator,
        config: TAP25DConfig | None = None,
    ):
        self.system = system
        self.reward_calculator = reward_calculator
        self.config = config or TAP25DConfig()
        self._names = list(system.chiplet_names)

    # ------------------------------------------------------------------
    # initial state
    # ------------------------------------------------------------------

    def initial_placement(self, rng: np.random.Generator = None) -> Placement:
        """Legal starting layout: shelf packing in descending area."""
        interposer = self.system.interposer
        spacing = interposer.min_spacing
        placement = Placement(self.system)
        x = y = 0.0
        shelf_height = 0.0
        for name in self.system.placement_order():
            chiplet = self.system.chiplet(name)
            w, h = chiplet.width, chiplet.height
            if x + w > interposer.width:
                x = 0.0
                y += shelf_height + spacing
                shelf_height = 0.0
            if y + h > interposer.height:
                raise RuntimeError(
                    f"shelf packing failed for system {self.system.name!r}"
                )
            placement.place(name, x, y)
            x += w + spacing
            shelf_height = max(shelf_height, h)
        if placement_violations(placement):
            raise RuntimeError("initial shelf packing produced violations")
        return placement

    # ------------------------------------------------------------------
    # moves
    # ------------------------------------------------------------------

    def propose(
        self, placement: Placement, rng: np.random.Generator, progress: float
    ):
        """One annealing move; None when the proposal is illegal."""
        cfg = self.config
        roll = rng.random()
        candidate = placement.copy()
        if roll < cfg.displace_fraction:
            self._displace(candidate, rng, progress)
        elif roll < cfg.displace_fraction + cfg.swap_fraction:
            if not self._swap(candidate, rng):
                return None
        else:
            if not self._rotate(candidate, rng):
                return None
        if not placement_is_legal(candidate):
            return None
        return candidate

    def _displace(self, placement, rng, progress) -> None:
        name = self._names[rng.integers(len(self._names))]
        interposer = self.system.interposer
        scale = self.config.max_displacement_fraction * (1.0 - 0.9 * progress)
        dx = rng.normal(0.0, scale * interposer.width / 2.0)
        dy = rng.normal(0.0, scale * interposer.height / 2.0)
        x, y, rotated = placement.positions[name]
        rect = placement.footprint(name)
        new_x = float(np.clip(x + dx, 0.0, interposer.width - rect.w))
        new_y = float(np.clip(y + dy, 0.0, interposer.height - rect.h))
        placement.place(name, new_x, new_y, rotated)

    def _swap(self, placement, rng) -> bool:
        if len(self._names) < 2:
            return False
        i, j = rng.choice(len(self._names), size=2, replace=False)
        name_a, name_b = self._names[i], self._names[j]
        xa, ya, rot_a = placement.positions[name_a]
        xb, yb, rot_b = placement.positions[name_b]
        placement.place(name_a, xb, yb, rot_a)
        placement.place(name_b, xa, ya, rot_b)
        # Keep both inside the interposer (sizes differ).
        interposer = self.system.interposer
        for name in (name_a, name_b):
            rect = placement.footprint(name)
            x = min(rect.x, interposer.width - rect.w)
            y = min(rect.y, interposer.height - rect.h)
            if x < 0 or y < 0:
                return False
            rotated = placement.positions[name][2]
            placement.place(name, x, y, rotated)
        return True

    def _rotate(self, placement, rng) -> bool:
        rotatable = [
            name
            for name in self._names
            if self.system.chiplet(name).rotatable
        ]
        if not rotatable:
            return False
        name = rotatable[rng.integers(len(rotatable))]
        x, y, rotated = placement.positions[name]
        placement.place(name, x, y, not rotated)
        rect = placement.footprint(name)
        interposer = self.system.interposer
        if rect.x2 > interposer.width or rect.y2 > interposer.height:
            return False
        return True

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------

    def _annealing_calculator(self) -> RewardCalculator:
        """The calculator the SA loop evaluates with.

        ``config.incremental`` (single-chain only) swaps in a clone of
        the reward calculator whose fast thermal model runs the
        incremental single-move delta path — same tables, same reward
        weights, same bump assigner, O(moved x n) per proposal.  The
        swap is local to the annealing loop; the caller's calculator is
        never mutated, and the final breakdown of the best layout is
        still computed by the caller's (full-evaluation) calculator.
        """
        cfg = self.config
        if not cfg.incremental or cfg.n_chains != 1:
            return self.reward_calculator
        from repro.thermal import FastThermalModel

        thermal = self.reward_calculator.thermal
        if not isinstance(thermal, FastThermalModel):
            _logger.info(
                "incremental=True ignored: thermal evaluator %s has no "
                "incremental path (only FastThermalModel does)",
                type(thermal).__name__,
            )
            return self.reward_calculator
        return RewardCalculator(
            FastThermalModel(thermal.tables, thermal.config, incremental=True),
            self.reward_calculator.config,
            assigner=self.reward_calculator.assigner,
        )

    def run(self, resume_state=None, checkpoint_fn=None) -> PlacerResult:
        """Anneal from the shelf packing; returns the best layout found.

        With ``config.n_chains > 1`` the SA engine advances all chains
        in lockstep and each step's candidates are costed through
        ``RewardCalculator.evaluate_many`` — one batched
        wirelength/thermal pass per iteration instead of one scalar
        evaluation per chain.  With ``config.incremental`` (single
        chain) the scalar evaluations run through the fast model's
        single-move delta path instead.

        ``checkpoint_fn``/``resume_state`` pass straight through to the
        SA engine (see :meth:`SimulatedAnnealing.run`): a run resumed
        from a snapshot reproduces the uninterrupted run bitwise —
        except under ``config.incremental``, whose delta evaluator
        carries accumulated running sums the snapshot does not capture
        (a resumed leg rebuilds them drift-free, so it matches the
        uninterrupted run only to the incremental path's documented
        ~1e-9 degC exactness, not bitwise; the experiment harness
        therefore disables checkpointing for incremental arms).
        """
        cfg = self.config
        start = time.perf_counter()
        calculator = self._annealing_calculator()

        def evaluate(placement) -> float:
            return -calculator.evaluate(placement).reward

        def evaluate_many(placements):
            return -calculator.evaluate_many(placements)

        engine = SimulatedAnnealing(
            propose=self.propose,
            evaluate=evaluate,
            config=SAConfig(
                n_iterations=cfg.n_iterations,
                initial_temperature=cfg.initial_temperature,
                final_temperature=cfg.final_temperature,
                time_limit=cfg.time_limit,
                seed=cfg.seed,
                n_chains=cfg.n_chains,
                incremental=cfg.incremental and cfg.n_chains == 1,
                history_stride=cfg.history_stride,
                checkpoint_every=cfg.checkpoint_every,
            ),
            evaluate_many=evaluate_many,
        )
        rng = np.random.default_rng(cfg.seed)
        # A resume ignores the initial state (the snapshot carries the
        # incumbents), so don't pay for shelf packing again.
        initial = None if resume_state is not None else self.initial_placement(rng)
        result = engine.run(
            initial,
            resume_state=resume_state,
            checkpoint_fn=checkpoint_fn,
        )
        best_placement = result.best_state
        breakdown = self.reward_calculator.evaluate(best_placement)
        # Fold the interrupted leg's wall clock back in so a resumed
        # run reports its full runtime, not just the final leg.
        prior = resume_state["elapsed"] if resume_state is not None else 0.0
        return PlacerResult(
            placement=best_placement,
            breakdown=breakdown,
            n_evaluations=result.n_evaluations,
            elapsed=prior + time.perf_counter() - start,
            history=result.history,
        )
