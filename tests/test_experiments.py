"""Tests for the experiment harness (reporting, summary math, mini runs)."""

import json
from pathlib import Path

import numpy as np
import pytest

from golden_experiments_utils import (
    GOLDEN_EXPERIMENTS_PATH,
    run_golden_experiments,
)
from repro.experiments import (
    ExperimentBudget,
    MethodResult,
    format_table,
    run_table2,
    save_results,
)
from repro.experiments.report import format_comparison
from repro.experiments.table3 import improvement_summary
from repro.thermal import ThermalConfig


def _result(system, method, reward):
    return MethodResult(
        system=system,
        method=method,
        reward=reward,
        wirelength=1000.0,
        temperature_c=80.0,
        runtime_s=1.0,
    )


class TestReport:
    def test_format_table_contains_rows(self):
        results = [
            _result("sysA", "RLPlanner", -5.0),
            _result("sysA", "TAP-2.5D(HotSpot)", -6.0),
        ]
        text = format_table(results, title="Demo")
        assert "Demo" in text
        assert "RLPlanner" in text
        assert "-5.0000" in text

    def test_format_comparison_includes_paper(self):
        results = [_result("sysA", "RLPlanner", -5.0)]
        ref = {"RLPlanner": {"reward": -5.5}}
        text = format_comparison(results, ref, "sysA")
        assert "-5.5000" in text

    def test_format_comparison_missing_reference(self):
        results = [_result("sysA", "NewMethod", -5.0)]
        text = format_comparison(results, {}, "sysA")
        assert "n/a" in text

    def test_save_results_roundtrip(self, tmp_path):
        results = [_result("sysA", "RLPlanner", -5.0)]
        path = tmp_path / "out" / "results.json"
        save_results(results, path, metadata={"budget": "tiny"})
        payload = json.loads(path.read_text())
        assert payload["metadata"]["budget"] == "tiny"
        assert payload["results"][0]["reward"] == -5.0


class TestImprovementSummary:
    def test_positive_when_rl_better(self):
        results = [
            _result("s1", "RLPlanner(RND)", -8.0),
            _result("s1", "TAP-2.5D(HotSpot)", -10.0),
            _result("s2", "RLPlanner(RND)", -9.0),
            _result("s2", "TAP-2.5D(HotSpot)", -10.0),
        ]
        summary = improvement_summary(results)
        assert summary["rnd_vs_hotspot_pct"] == pytest.approx(15.0)

    def test_negative_when_rl_worse(self):
        results = [
            _result("s1", "RLPlanner(RND)", -12.0),
            _result("s1", "TAP-2.5D(HotSpot)", -10.0),
        ]
        summary = improvement_summary(results)
        assert summary["rnd_vs_hotspot_pct"] == pytest.approx(-20.0)

    def test_missing_methods_yield_nan(self):
        summary = improvement_summary([_result("s1", "RLPlanner(RND)", -5.0)])
        assert np.isnan(summary["rnd_vs_hotspot_pct"])


class TestBudget:
    def test_paper_scale(self):
        budget = ExperimentBudget.paper_scale()
        assert budget.rl_epochs == 600
        assert budget.grid_size == 32

    def test_default_is_scaled_down(self):
        assert ExperimentBudget().rl_epochs < 100


class TestGoldenExperiments:
    def test_jobs1_bitwise_faithful_to_sequential_harness(self, tmp_path):
        """The scheduler's in-process ``jobs=1`` path must reproduce the
        pre-scheduler sequential runner bit for bit — all four method
        arms, float-hex comparison.  Regenerate via
        ``scripts/gen_golden_experiments.py`` only for *intentional*
        behavior changes."""
        golden = json.loads(Path(GOLDEN_EXPERIMENTS_PATH).read_text())
        record = run_golden_experiments(tmp_path)
        assert record == golden


class TestTable2Mini:
    def test_mini_run_metrics(self, tmp_path):
        config = ThermalConfig(
            rows=24, cols=24, package_margin=8.0, r_convection=0.12
        )
        result = run_table2(
            n_systems=4,
            seed=11,
            thermal_config=config,
            cache_dir=tmp_path,
            position_samples=(3, 3),
        )
        assert result.n_systems == 4
        assert result.metrics["mae"] < 3.0
        # Timing-based: keep the bound loose so CPU contention in CI
        # cannot flake it (the real figure is >100x; see Table II bench).
        assert result.speedup > 3.0
        assert len(result.predictions) == 4
        text = result.format()
        assert "MAE" in text and "speedup" in text
