"""Process-level experiment scheduler + shared-cache tests.

Covers the PR-4 tentpole guarantees:

* scheduler mechanics — submission-order results, forward-only
  dependency edges, parent-side injection, failure propagation, and the
  in-process ``jobs=1`` fallback;
* concurrency safety of the thermal-table disk cache — two processes
  characterizing the same fingerprint produce exactly one ``.npz``;
* determinism — table-1-style method arms and table-2 dataset shards
  are **bitwise** identical at ``jobs=2`` and ``jobs=1`` (the golden
  test in ``test_experiments.py`` separately pins ``jobs=1`` to the
  pre-scheduler sequential harness);
* the dependency-ordered wall-clock matching of the ``TAP-2.5D*`` arm,
  including the satellite fix: time matching without an RL arm now
  warns and records ``time_matched: False`` instead of silently
  running unmatched;
* the PR-6 scheduler bugfixes — fail-fast (a failing job surfaces
  before unrelated in-flight siblings finish), pool teardown on
  KeyboardInterrupt, and ``resolve_jobs("auto")`` never propagating a
  dead CPU probe.
"""

import contextlib
import logging
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from golden_utils import build_golden_system
from repro.chiplet import Interposer
from repro.experiments.runner import (
    ExperimentBudget,
    build_evaluators,
    run_all_methods,
)
from repro.experiments.table2 import run_table2
from repro.parallel import (
    FileLock,
    JobFailedError,
    JobSpec,
    atomic_replace,
    resolve_collect_jobs,
    resolve_jobs,
    run_jobs,
)
from repro.parallel import scheduler as scheduler_module
from repro.reward import RewardConfig
from repro.systems.spec import BenchmarkSpec
from repro.thermal import ThermalConfig
from repro.thermal.characterize import load_or_characterize

# ----------------------------------------------------------------------
# top-level job functions (picklable for pool workers)
# ----------------------------------------------------------------------


def _square(x):
    return x * x


def _add(x, offset=0):
    return x + offset


def _boom():
    raise RuntimeError("boom")


def _slow_square(x):
    time.sleep(0.02)
    return x * x


def _very_slow_square(x):
    time.sleep(4.0)
    return x * x


def _boom_after(delay):
    time.sleep(delay)
    raise RuntimeError("boom")


def _inject_offset(dep_id, kwargs, done):
    kwargs["offset"] = done[dep_id]
    return kwargs


def _characterize_worker(cache_dir, queue):
    tables = load_or_characterize(
        Interposer(20.0, 20.0),
        [(6.0, 6.0)],
        ThermalConfig(rows=12, cols=12, package_margin=4.0),
        position_samples=(2, 2),
        cache_dir=cache_dir,
    )
    queue.put(float(tables.for_size(6.0, 6.0).r_self.sum()))


def _hold_lock_then_report(lock_path, held_event, release_event):
    with FileLock(lock_path):
        held_event.set()
        release_event.wait(timeout=30)


@contextlib.contextmanager
def _capture_repro_logs(caplog):
    """Attach caplog to the ``repro`` logger (it does not propagate)."""
    logger = logging.getLogger("repro")
    logger.addHandler(caplog.handler)
    try:
        yield
    finally:
        logger.removeHandler(caplog.handler)


class TestScheduler:
    def _specs(self):
        return [
            JobSpec("a", _square, dict(x=3)),
            JobSpec("b", _slow_square, dict(x=4)),
            JobSpec(
                "c",
                _add,
                dict(x=100),
                needs=("a",),
                inject=lambda kwargs, done: {**kwargs, "offset": done["a"]},
            ),
        ]

    def test_sequential_results_in_submission_order(self):
        outcome = run_jobs(self._specs(), jobs=1)
        assert list(outcome) == ["a", "b", "c"]
        assert outcome == {"a": 9, "b": 16, "c": 109}

    def test_pool_matches_sequential(self):
        import functools

        specs = [
            JobSpec("a", _square, dict(x=3)),
            JobSpec("b", _slow_square, dict(x=4)),
            JobSpec(
                "c",
                _add,
                dict(x=100),
                needs=("a",),
                inject=functools.partial(_inject_offset, "a"),
            ),
        ]
        outcome = run_jobs(specs, jobs=2)
        assert list(outcome) == ["a", "b", "c"]
        assert outcome == {"a": 9, "b": 16, "c": 109}

    def test_duplicate_job_id_rejected(self):
        specs = [JobSpec("a", _square, dict(x=1)), JobSpec("a", _square, dict(x=2))]
        with pytest.raises(ValueError, match="duplicate"):
            run_jobs(specs, jobs=1)

    def test_backward_only_dependencies_rejected(self):
        specs = [
            JobSpec("a", _square, dict(x=1), needs=("b",)),
            JobSpec("b", _square, dict(x=2)),
        ]
        with pytest.raises(ValueError, match="earlier submission"):
            run_jobs(specs, jobs=1)

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs"):
            run_jobs([JobSpec("a", _square, dict(x=1))], jobs=0)

    def test_empty_graph(self):
        assert run_jobs([], jobs=1) == {}
        assert run_jobs([], jobs=2) == {}

    def test_sequential_failure_raises_directly(self):
        with pytest.raises(RuntimeError, match="boom"):
            run_jobs([JobSpec("bad", _boom)], jobs=1)

    def test_pool_failure_carries_job_id(self):
        specs = [JobSpec("ok", _square, dict(x=2)), JobSpec("bad", _boom)]
        with pytest.raises(JobFailedError, match="bad"):
            run_jobs(specs, jobs=2)


class TestPoolTeardown:
    """PR-6 scheduler bugfixes: fail fast, never strand the pool."""

    def test_failure_surfaces_before_slow_sibling_completes(self):
        # Regression: _run_pooled used to raise inside the pool's
        # ``with`` block, whose __exit__ is shutdown(wait=True) — so a
        # job failing at t=0.1s was reported only after the 4-second
        # sibling finished.  With the fix the JobFailedError must
        # surface while the sibling is still running.
        specs = [
            JobSpec("slow", _very_slow_square, dict(x=3)),
            JobSpec("fast-fail", _boom_after, dict(delay=0.1)),
        ]
        start = time.monotonic()
        with pytest.raises(JobFailedError, match="fast-fail"):
            run_jobs(specs, jobs=2)
        elapsed = time.monotonic() - start
        assert elapsed < 3.0, (
            f"failure took {elapsed:.1f}s to surface — the scheduler "
            "waited for the unrelated in-flight job"
        )

    def test_keyboard_interrupt_tears_down_pool(self, monkeypatch):
        # A Ctrl-C while waiting on worker pipes must kill the in-flight
        # supervised workers and re-raise, not leave orphaned processes
        # grinding on behind a dead sweep.
        stopped = []
        original_stop = scheduler_module._stop_worker

        def spy(rec):
            stopped.append(rec.spec.job_id)
            return original_stop(rec)

        monkeypatch.setattr(scheduler_module, "_stop_worker", spy)

        def interrupted_wait(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(scheduler_module, "wait", interrupted_wait)
        with pytest.raises(KeyboardInterrupt):
            run_jobs([JobSpec("a", _slow_square, dict(x=2))], jobs=2)
        assert stopped == ["a"], (
            f"expected the in-flight worker to be stopped, saw {stopped}"
        )
        # Siblings from other tests may still be draining; only this
        # test's worker must be gone.
        for process in multiprocessing.active_children():
            assert process.name != "job-a", (
                f"orphaned supervised worker survived Ctrl-C: {process}"
            )


class TestResolveJobsProbes:
    """``resolve_jobs("auto")`` on exotic hosts: every probe may die."""

    def test_process_cpu_count_none_falls_through(self, monkeypatch):
        # Regression: a present-but-None process_cpu_count used to
        # resolve straight to 1 instead of consulting the remaining
        # probes.
        monkeypatch.setattr(
            scheduler_module.os,
            "process_cpu_count",
            lambda: None,
            raising=False,
        )
        monkeypatch.setattr(
            scheduler_module.os,
            "sched_getaffinity",
            lambda pid: {0, 1, 2},
            raising=False,
        )
        assert resolve_jobs("auto") == 3

    def test_all_probes_dead_resolves_to_one(self, monkeypatch):
        monkeypatch.setattr(
            scheduler_module.os,
            "process_cpu_count",
            lambda: None,
            raising=False,
        )
        monkeypatch.delattr(
            scheduler_module.os, "sched_getaffinity", raising=False
        )
        monkeypatch.setattr(scheduler_module.os, "cpu_count", lambda: None)
        assert resolve_jobs("auto") == 1

    def test_zero_and_raising_probes_clamp_to_one(self, monkeypatch):
        def raising_probe():
            raise OSError("no such syscall")

        monkeypatch.setattr(
            scheduler_module.os,
            "process_cpu_count",
            raising_probe,
            raising=False,
        )
        monkeypatch.setattr(
            scheduler_module.os,
            "sched_getaffinity",
            lambda pid: set(),
            raising=False,
        )
        monkeypatch.setattr(scheduler_module.os, "cpu_count", lambda: 0)
        assert resolve_jobs("auto") == 1


class TestResolveCollectJobs:
    """``--collect-jobs auto``: 1-CPU hosts collect in-process, loudly."""

    def test_auto_on_single_cpu_warns_and_returns_one(
        self, monkeypatch, caplog
    ):
        monkeypatch.setattr(scheduler_module, "_probe_cpu_count", lambda: 1)
        with _capture_repro_logs(caplog):
            assert resolve_collect_jobs("auto") == 1
        assert any(
            rec.levelno >= logging.WARNING
            and "in-process" in rec.getMessage()
            for rec in caplog.records
        )

    def test_auto_on_multicore_is_silent(self, monkeypatch, caplog):
        monkeypatch.setattr(scheduler_module, "_probe_cpu_count", lambda: 4)
        with _capture_repro_logs(caplog):
            assert resolve_collect_jobs("auto") == 4
        assert not [
            rec for rec in caplog.records if rec.levelno >= logging.WARNING
        ]

    def test_explicit_values_delegate_to_resolve_jobs(self, monkeypatch):
        # An explicit count is honored verbatim even on one core (the
        # collection bench deliberately measures pool overhead there).
        monkeypatch.setattr(scheduler_module, "_probe_cpu_count", lambda: 1)
        assert resolve_collect_jobs(3) == 3
        assert resolve_collect_jobs("2") == 2
        with pytest.raises(ValueError):
            resolve_collect_jobs("0")
        with pytest.raises(ValueError):
            resolve_collect_jobs("many")


class TestLockedCache:
    def test_atomic_replace_publishes_complete_file(self, tmp_path):
        target = tmp_path / "artifact.txt"
        with atomic_replace(target) as tmp:
            tmp.write_text("payload")
            assert not target.exists()
        assert target.read_text() == "payload"
        assert list(tmp_path.iterdir()) == [target]

    def test_atomic_replace_cleans_up_on_error(self, tmp_path):
        target = tmp_path / "artifact.txt"
        with pytest.raises(RuntimeError):
            with atomic_replace(target) as tmp:
                tmp.write_text("partial")
                raise RuntimeError("writer died")
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []

    def test_filelock_blocks_second_acquirer(self, tmp_path):
        lock_path = tmp_path / "x.lock"
        held = multiprocessing.Event()
        release = multiprocessing.Event()
        proc = multiprocessing.Process(
            target=_hold_lock_then_report, args=(lock_path, held, release)
        )
        proc.start()
        try:
            assert held.wait(timeout=30)
            with pytest.raises(TimeoutError):
                FileLock(lock_path, timeout=0.2, poll=0.02).acquire()
        finally:
            release.set()
            proc.join(timeout=30)
        # Released now: acquiring must succeed.
        with FileLock(lock_path, timeout=5.0):
            pass

    def test_concurrent_characterization_yields_one_cache_file(self, tmp_path):
        queue = multiprocessing.Queue()
        workers = [
            multiprocessing.Process(
                target=_characterize_worker, args=(tmp_path, queue)
            )
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        checksums = [queue.get(timeout=120) for _ in workers]
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0
        npz_files = list(tmp_path.glob("*.npz"))
        assert len(npz_files) == 1, [p.name for p in tmp_path.iterdir()]
        # No torn temp files left behind; both processes saw identical tables.
        assert not list(tmp_path.glob("*.tmp*"))
        assert checksums[0] == checksums[1]
        # A third (in-process) call loads the same cached entry.
        _characterize_worker(tmp_path, queue)
        assert queue.get(timeout=30) == checksums[0]
        assert len(list(tmp_path.glob("*.npz"))) == 1


# ----------------------------------------------------------------------
# experiment-harness determinism across worker counts
# ----------------------------------------------------------------------


def _tiny_spec() -> BenchmarkSpec:
    return BenchmarkSpec(
        name="tiny_par",
        system=build_golden_system(),
        thermal_config=ThermalConfig(rows=16, cols=16, package_margin=8.0),
        reward_config=RewardConfig(lambda_wl=1e-4, use_bump_assignment=False),
    )


def _tiny_budget(**overrides) -> ExperimentBudget:
    defaults = dict(
        rl_epochs=1,
        episodes_per_epoch=2,
        grid_size=12,
        sa_iterations_hotspot=16,
        sa_time_matched=False,
        position_samples=(2, 2),
        seed=5,
    )
    defaults.update(overrides)
    return ExperimentBudget(**defaults)


def _distill(results):
    return [
        (
            res.method,
            float(res.reward).hex(),
            float(res.wirelength).hex(),
            float(res.temperature_c).hex(),
        )
        for res in results
    ]


class TestParallelDeterminism:
    METHODS = ("RLPlanner", "TAP-2.5D(HotSpot)", "TAP-2.5D*(FastThermal)")

    def test_jobs2_bitwise_equals_jobs1_method_arms(self, tmp_path):
        spec = _tiny_spec()
        budget = _tiny_budget()
        sequential = run_all_methods(
            spec, budget, cache_dir=tmp_path, methods=self.METHODS, jobs=1
        )
        pooled = run_all_methods(
            spec, budget, cache_dir=tmp_path, methods=self.METHODS, jobs=2
        )
        assert _distill(pooled) == _distill(sequential)

    def test_time_matched_arm_receives_measured_rl_runtime(self, tmp_path):
        spec = _tiny_spec()
        budget = _tiny_budget(sa_time_matched=True)
        results = run_all_methods(
            spec,
            budget,
            cache_dir=tmp_path,
            methods=("RLPlanner", "TAP-2.5D*(FastThermal)"),
            jobs=2,
        )
        rl, fast_sa = results
        assert rl.method == "RLPlanner"
        assert fast_sa.method == "TAP-2.5D*(FastThermal)"
        assert fast_sa.extra["time_matched"] is True
        assert fast_sa.extra["time_limit_s"] == rl.runtime_s
        assert fast_sa.extra["time_limit_s"] > 0.0

    def test_time_matching_without_rl_arm_warns(self, tmp_path, caplog):
        spec = _tiny_spec()
        budget = _tiny_budget(sa_time_matched=True)
        with _capture_repro_logs(caplog):
            results = run_all_methods(
                spec,
                budget,
                cache_dir=tmp_path,
                methods=("TAP-2.5D*(FastThermal)",),
                jobs=1,
            )
        assert any(
            "WITHOUT a time limit" in rec.getMessage()
            for rec in caplog.records
        )
        (fast_sa,) = results
        assert fast_sa.extra["time_matched"] is False
        assert fast_sa.extra["time_limit_s"] is None

    def test_table2_shards_bitwise_equal_sequential(self, tmp_path):
        config = ThermalConfig(
            rows=24, cols=24, package_margin=8.0, r_convection=0.12
        )
        kwargs = dict(
            n_systems=5,
            seed=11,
            thermal_config=config,
            cache_dir=tmp_path,
            position_samples=(3, 3),
        )
        sequential = run_table2(jobs=1, **kwargs)
        sharded = run_table2(jobs=2, **kwargs)
        assert sharded.predictions == sequential.predictions
        assert sharded.references == sequential.references
        assert sharded.metrics == sequential.metrics
        assert sharded.n_systems == sequential.n_systems

    def test_unknown_method_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown methods"):
            run_all_methods(
                _tiny_spec(),
                _tiny_budget(),
                cache_dir=tmp_path,
                methods=("RLPlanner", "NotAMethod"),
            )


class TestBudgetWiring:
    def test_hotspot_reuse_factorization_flag(self, tmp_path):
        spec = _tiny_spec()
        evaluators = build_evaluators(
            spec,
            _tiny_budget(hotspot_reuse_factorization=True),
            cache_dir=tmp_path,
        )
        assert evaluators["solver"].reuse_factorization is True
        default = build_evaluators(spec, _tiny_budget(), cache_dir=tmp_path)
        assert default["solver"].reuse_factorization is False

    def test_sa_incremental_multichain_warns_and_falls_back(
        self, tmp_path, caplog
    ):
        spec = _tiny_spec()
        budget = _tiny_budget(sa_incremental=True, sa_chains=4)
        with _capture_repro_logs(caplog):
            results = run_all_methods(
                spec,
                budget,
                cache_dir=tmp_path,
                methods=("TAP-2.5D*(FastThermal)",),
            )
        assert any(
            "sa_incremental" in rec.getMessage() for rec in caplog.records
        )
        assert np.isfinite(results[0].reward)
