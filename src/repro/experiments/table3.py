"""Table III: reward comparison on the five synthetic systems.

Also computes the paper's headline aggregate: the average improvement of
RLPlanner(RND) over TAP-2.5D(HotSpot) and TAP-2.5D*(fast model) across
cases (paper: 20.28 % and 9.25 % over all eight cases).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.report import format_comparison, format_table
from repro.experiments.runner import (
    METHOD_ORDER,
    ExperimentBudget,
    as_store,
    collect_arm_results,
    method_arm_jobs,
)
from repro.parallel import run_jobs
from repro.systems import get_benchmark
from repro.utils import get_logger

__all__ = ["run_table3", "improvement_summary"]

_logger = get_logger("experiments.table3")


def improvement_summary(results: list) -> dict:
    """Mean relative reward improvement of RL over the SA baselines.

    Improvement per system = (R_rl - R_sa) / |R_sa|; positive means the
    RL reward is better (less negative).
    """
    by_system = {}
    for res in results:
        by_system.setdefault(res.system, {})[res.method] = res.reward

    def mean_improvement(rl_method: str, sa_method: str) -> float:
        gains = []
        for methods in by_system.values():
            if rl_method in methods and sa_method in methods:
                rl, sa = methods[rl_method], methods[sa_method]
                gains.append((rl - sa) / abs(sa))
        return float(np.mean(gains)) * 100.0 if gains else float("nan")

    return {
        "rnd_vs_hotspot_pct": mean_improvement(
            "RLPlanner(RND)", "TAP-2.5D(HotSpot)"
        ),
        "rnd_vs_fast_pct": mean_improvement(
            "RLPlanner(RND)", "TAP-2.5D*(FastThermal)"
        ),
        "plain_vs_hotspot_pct": mean_improvement(
            "RLPlanner", "TAP-2.5D(HotSpot)"
        ),
    }


def run_table3(
    budget: ExperimentBudget | None = None,
    cases: tuple = (1, 2, 3, 4, 5),
    cache_dir=None,
    verbose: bool = True,
    jobs: int = 1,
    store=None,
    policy=None,
    job_timeout: float | None = None,
    keep_going: bool = False,
    report=None,
) -> list:
    """Regenerate Table III; returns a flat list of MethodResults.

    Like :func:`~repro.experiments.table1.run_table1`, all (case x
    method) arms go through one scheduler graph: ``jobs=1`` is the
    bit-exact sequential order, ``jobs=N`` fans independent arms over a
    worker pool, ``store`` makes the sweep resumable, and the
    ``policy``/``job_timeout``/``keep_going``/``report`` knobs are the
    :func:`repro.parallel.run_jobs` fault-tolerance controls.
    """
    budget = budget or ExperimentBudget()
    store = as_store(store)
    specs = [get_benchmark(f"synthetic{case}") for case in cases]
    job_specs = []
    for spec in specs:
        job_specs.extend(
            method_arm_jobs(spec, budget, cache_dir=cache_dir, store=store)
        )
    outcome = run_jobs(
        job_specs,
        jobs=jobs,
        store=store,
        policy=policy,
        job_timeout=job_timeout,
        keep_going=keep_going,
        report=report,
    )
    all_results = []
    for spec in specs:
        results = collect_arm_results(outcome, spec.name, METHOD_ORDER)
        all_results.extend(results)
        if verbose:
            print(format_comparison(results, spec.paper_reference, spec.name))
    if verbose:
        print()
        print(format_table(all_results, title="Table III (scaled budgets)"))
        summary = improvement_summary(all_results)
        print(
            f"\nRLPlanner(RND) vs TAP-2.5D(HotSpot): "
            f"{summary['rnd_vs_hotspot_pct']:+.2f}% (paper +20.28% over 8 cases)"
        )
        print(
            f"RLPlanner(RND) vs TAP-2.5D*(FastThermal): "
            f"{summary['rnd_vs_fast_pct']:+.2f}% (paper +9.25%)"
        )
    return all_results
