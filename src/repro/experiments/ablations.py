"""Ablations over the design choices DESIGN.md calls out.

* RND bonus on/off (also visible in Tables I/III)
* thermal evaluator inside the RL loop: fast model vs grid solver
* wirelength evaluator: bump assignment (greedy / hungarian) vs estimate
* placement grid resolution

Each ablation runs on synthetic case 1 with a small budget; results are
MethodResult rows whose ``method`` encodes the variant.
"""

from __future__ import annotations

import time

from repro.agent import RLPlannerTrainer, TrainerConfig
from repro.bumps import BumpAssigner
from repro.env import EnvConfig, FloorplanEnv
from repro.experiments.report import MethodResult
from repro.experiments.runner import ExperimentBudget, build_evaluators
from repro.reward import RewardCalculator, RewardConfig
from repro.rl import RNDConfig
from repro.systems import get_benchmark
from repro.utils import get_logger

__all__ = ["run_ablations"]

_logger = get_logger("experiments.ablations")


def _train(spec, reward_calculator, budget, label, use_rnd=False, grid=None):
    env = FloorplanEnv(
        spec.system,
        reward_calculator,
        EnvConfig(grid_size=grid or budget.grid_size),
    )
    trainer = RLPlannerTrainer(
        env,
        TrainerConfig(
            epochs=budget.rl_epochs,
            episodes_per_epoch=budget.episodes_per_epoch,
            seed=budget.seed,
            use_rnd=use_rnd,
            rnd=RNDConfig(bonus_scale=0.5),
            log_every=0,
        ),
    )
    result = trainer.train()
    breakdown = result.best_breakdown
    return MethodResult(
        system=spec.name,
        method=label,
        reward=breakdown.reward,
        wirelength=breakdown.wirelength,
        temperature_c=breakdown.max_temperature_c,
        runtime_s=result.elapsed,
        extra={"epochs": result.epochs_run},
    )


def run_ablations(
    budget: ExperimentBudget | None = None, cache_dir=None, verbose: bool = True
) -> list:
    """Run all ablation variants on synthetic case 1."""
    budget = budget or ExperimentBudget(rl_epochs=15)
    spec = get_benchmark("synthetic1")
    evaluators = build_evaluators(spec, budget, cache_dir)
    results = []

    # --- RND on/off -----------------------------------------------------
    results.append(
        _train(spec, evaluators["reward_fast"], budget, "rl/fast/base")
    )
    results.append(
        _train(spec, evaluators["reward_fast"], budget, "rl/fast/rnd", use_rnd=True)
    )

    # --- thermal evaluator inside the loop -------------------------------
    # The whole point of the fast model: the solver-in-the-loop variant
    # gets the same *epoch* budget and pays the wall-clock price.
    results.append(
        _train(spec, evaluators["reward_solver"], budget, "rl/solver/base")
    )

    # --- wirelength evaluator --------------------------------------------
    estimate_reward = RewardCalculator(
        evaluators["fast_model"],
        RewardConfig(
            lambda_wl=spec.reward_config.lambda_wl,
            t_limit=spec.reward_config.t_limit,
            alpha=spec.reward_config.alpha,
            use_bump_assignment=False,
        ),
    )
    results.append(
        _train(spec, estimate_reward, budget, "rl/fast/wl-estimate")
    )
    hungarian_reward = RewardCalculator(
        evaluators["fast_model"],
        spec.reward_config,
        assigner=BumpAssigner(wire_group_size=8, method="hungarian"),
    )
    results.append(
        _train(spec, hungarian_reward, budget, "rl/fast/wl-hungarian")
    )

    # --- grid resolution --------------------------------------------------
    for grid in (16, 32):
        results.append(
            _train(
                spec,
                evaluators["reward_fast"],
                budget,
                f"rl/fast/grid{grid}",
                grid=grid,
            )
        )

    if verbose:
        from repro.experiments.report import format_table

        print(format_table(results, title="Ablations (synthetic case 1)"))
    return results
