"""Huawei Ascend 910 system (benchmark [6]).

The publicly documented CoWoS package: one large Da Vinci AI compute die
(~456 mm^2), the Nimbus I/O die (~168 mm^2), four HBM2 stacks and two
dummy dies that balance the package mechanically (they draw no power but
still occupy placement area — exactly why the paper includes this case).
"""

from __future__ import annotations

from repro.chiplet import Chiplet, ChipletSystem, Interposer, Net
from repro.reward import RewardConfig
from repro.systems.spec import BenchmarkSpec
from repro.thermal import ThermalConfig

__all__ = ["ascend910_system"]


def ascend910_system() -> BenchmarkSpec:
    """Build the Ascend 910 benchmark spec."""
    chiplets = [
        Chiplet("vcore", 21.0, 22.0, 220.0, kind="ai", rotatable=True),
        Chiplet("nimbus", 14.0, 12.0, 18.0, kind="io"),
        Chiplet("dummy0", 10.0, 11.0, 0.0, kind="dummy"),
        Chiplet("dummy1", 10.0, 11.0, 0.0, kind="dummy"),
    ]
    nets = [Net("vcore", "nimbus", wires=1024, name="v2n")]
    for i in range(4):
        chiplets.append(Chiplet(f"hbm{i}", 8.0, 12.0, 8.0, kind="hbm"))
        nets.append(Net("vcore", f"hbm{i}", wires=512, name=f"v2h{i}"))

    system = ChipletSystem(
        name="ascend910",
        interposer=Interposer(50.0, 38.0, min_spacing=0.2),
        chiplets=tuple(chiplets),
        nets=tuple(nets),
        metadata={"source": "Huawei Ascend 910 public package description"},
    )
    # ~270 W accelerator with a substantial server sink.
    # Calibrated so optimized layouts land near the paper's ~77 degC.
    thermal = ThermalConfig(r_convection=0.02, package_margin=12.0)
    reward = RewardConfig(lambda_wl=4.1e-4, t_limit=85.0, alpha=1.0)
    return BenchmarkSpec(
        name="ascend910",
        system=system,
        thermal_config=thermal,
        reward_config=reward,
        description="Da Vinci AI die + Nimbus IO + 4 HBM2 + 2 dummy dies",
        paper_reference={
            "RLPlanner": {"reward": -7.4063, "wirelength": 18130, "temperature": 77.12},
            "RLPlanner(RND)": {"reward": -7.4433, "wirelength": 18221, "temperature": 76.84},
            "TAP-2.5D(HotSpot)": {"reward": -8.7651, "wirelength": 21456, "temperature": 74.94},
            "TAP-2.5D*(FastThermal)": {"reward": -7.7890, "wirelength": 19067, "temperature": 76.16},
        },
    )
