"""CPU-DRAM system (benchmark [5], after Kannan et al., MICRO'15).

"Enabling interposer-based disintegration of multi-core processors":
a large multicore is split into four core-cluster chiplets plus four
DRAM stacks on an interposer, connected by a cross-chiplet coherence
fabric and per-cluster memory channels.
"""

from __future__ import annotations

from repro.chiplet import Chiplet, ChipletSystem, Interposer, Net
from repro.reward import RewardConfig
from repro.systems.spec import BenchmarkSpec
from repro.thermal import ThermalConfig

__all__ = ["cpu_dram_system"]


def cpu_dram_system() -> BenchmarkSpec:
    """Build the CPU-DRAM benchmark spec."""
    chiplets = []
    nets = []
    for i in range(4):
        chiplets.append(Chiplet(f"cpu{i}", 10.0, 10.0, 33.0, kind="cpu"))
        chiplets.append(Chiplet(f"dram{i}", 8.0, 12.0, 5.0, kind="dram"))
    # Coherence fabric: all CPU pairs.
    for i in range(4):
        for j in range(i + 1, 4):
            nets.append(
                Net(f"cpu{i}", f"cpu{j}", wires=1024, name=f"c{i}c{j}")
            )
    # One memory channel per cluster.
    for i in range(4):
        nets.append(Net(f"cpu{i}", f"dram{i}", wires=1536, name=f"c{i}d{i}"))

    system = ChipletSystem(
        name="cpu_dram",
        interposer=Interposer(45.0, 45.0, min_spacing=0.2),
        chiplets=tuple(chiplets),
        nets=tuple(nets),
        metadata={"source": "Kannan et al., MICRO'15 (disintegrated multicore)"},
    )
    # 152 W desktop-class package.
    # Calibrated so optimized layouts land near the paper's ~93 degC.
    thermal = ThermalConfig(r_convection=0.24, package_margin=12.0)
    reward = RewardConfig(lambda_wl=2.1e-4, t_limit=85.0, alpha=1.0)
    return BenchmarkSpec(
        name="cpu_dram",
        system=system,
        thermal_config=thermal,
        reward_config=reward,
        description="4 CPU core-cluster chiplets + 4 DRAM stacks, coherence fabric",
        paper_reference={
            "RLPlanner": {"reward": -44.9467, "wirelength": 176246, "temperature": 92.88},
            "RLPlanner(RND)": {"reward": -41.7496, "wirelength": 164460, "temperature": 92.15},
            "TAP-2.5D(HotSpot)": {"reward": -60.3570, "wirelength": 181269, "temperature": 97.94},
            "TAP-2.5D*(FastThermal)": {"reward": -50.2010, "wirelength": 231859, "temperature": 92.82},
        },
    )
