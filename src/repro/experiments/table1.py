"""Table I: four methods on the three open-source benchmark systems."""

from __future__ import annotations

from repro.experiments.report import format_comparison, format_table
from repro.experiments.runner import (
    METHOD_ORDER,
    ExperimentBudget,
    as_store,
    collect_arm_results,
    method_arm_jobs,
)
from repro.parallel import run_jobs
from repro.systems import get_benchmark
from repro.utils import get_logger

__all__ = ["run_table1"]

_logger = get_logger("experiments.table1")

TABLE1_SYSTEMS = ("multi_gpu", "cpu_dram", "ascend910")


def run_table1(
    budget: ExperimentBudget | None = None,
    systems: tuple = TABLE1_SYSTEMS,
    cache_dir=None,
    verbose: bool = True,
    jobs: int = 1,
    store=None,
    policy=None,
    job_timeout: float | None = None,
    keep_going: bool = False,
    report=None,
) -> list:
    """Regenerate Table I; returns a flat list of MethodResults.

    All (system x method) arms are scheduled through one job graph:
    ``jobs=1`` runs them in the sequential order the harness always
    used, ``jobs=N`` spreads independent arms (and the per-system
    characterization prewarms) over N worker processes.  Results are
    identical at any ``jobs`` — arms are self-seeded and the
    time-matched arm keeps its dependency on the measured RL runtime.
    ``store`` makes the sweep resumable: published arms are skipped,
    interrupted arms restart from their latest checkpoint.

    ``policy``/``job_timeout``/``keep_going``/``report`` are the
    :func:`repro.parallel.run_jobs` fault-tolerance knobs; under
    ``keep_going`` quarantined arms simply drop out of the returned
    rows while every independent arm still reports.
    """
    budget = budget or ExperimentBudget()
    store = as_store(store)
    specs = [get_benchmark(name) for name in systems]
    job_specs = []
    for spec in specs:
        job_specs.extend(
            method_arm_jobs(spec, budget, cache_dir=cache_dir, store=store)
        )
    outcome = run_jobs(
        job_specs,
        jobs=jobs,
        store=store,
        policy=policy,
        job_timeout=job_timeout,
        keep_going=keep_going,
        report=report,
    )
    all_results = []
    for spec in specs:
        results = collect_arm_results(outcome, spec.name, METHOD_ORDER)
        all_results.extend(results)
        if verbose:
            print(format_comparison(results, spec.paper_reference, spec.name))
    if verbose:
        print()
        print(format_table(all_results, title="Table I (scaled budgets)"))
    return all_results
