"""Text rendering of floorplans and thermal fields."""

from repro.viz.ascii_plot import render_floorplan, render_thermal_map

__all__ = ["render_floorplan", "render_thermal_map"]
