"""Multi-chain SA engine, batched reward path, and history columns.

Three equivalence guarantees from PR 2 are locked in here:

1. the single-chain (``n_chains=1``) baselines reproduce the pre-PR
   sequential engines bitwise (``tests/data/golden_baselines.json``);
2. the lockstep multi-chain engine with an exact ``evaluate_many`` is
   bitwise equal to running its chains sequentially (chain ``c`` with
   seed ``seed + c``);
3. the batched reward path (``RewardCalculator.evaluate_many``) agrees
   with scalar evaluation to float rounding.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.baselines import (
    BStarConfig,
    BStarFloorplanner,
    SAConfig,
    SAHistory,
    SimulatedAnnealing,
    TAP25DConfig,
    TAP25DPlacer,
    random_search,
)
from repro.bumps import estimate_wirelength, estimate_wirelength_batch
from repro.chiplet.validate import validate_placement
from repro.reward import RewardCalculator, RewardConfig

from golden_baseline_utils import GOLDEN_BASELINES_PATH, run_golden_baselines


def _toy_propose(state, rng, progress):
    return state + rng.normal(0.0, 1.0 * (1.0 - 0.9 * progress))


def _toy_evaluate(state):
    return (state - 3.0) ** 2


@pytest.fixture
def calculator(small_fast_model):
    return RewardCalculator(
        small_fast_model, RewardConfig(lambda_wl=1e-4, use_bump_assignment=False)
    )


class TestGoldenSingleChain:
    """n_chains=1 must stay bitwise-faithful to the pre-PR engines."""

    def test_single_chain_matches_pre_pr_golden(self):
        golden_path = Path(__file__).resolve().parent.parent / GOLDEN_BASELINES_PATH
        golden = json.loads(golden_path.read_text())
        record = run_golden_baselines()
        for method in golden:
            assert record[method] == golden[method], (
                f"{method} diverged from the pre-PR sequential engine; "
                "if intentional, rerun scripts/gen_golden_baselines.py"
            )


class TestMultiChainEngine:
    def test_m1_reproduces_sequential_bitwise(self):
        """run_chains with one chain == the sequential engine, bitwise."""
        config = SAConfig(n_iterations=400, seed=11)
        sequential = SimulatedAnnealing(
            _toy_propose, _toy_evaluate, config
        ).run(-6.0)
        multi = SimulatedAnnealing(
            _toy_propose, _toy_evaluate, config
        ).run_chains([-6.0])
        assert multi.best_state == sequential.best_state
        assert multi.best_cost == sequential.best_cost
        assert multi.n_evaluations == sequential.n_evaluations
        assert multi.n_accepted == sequential.n_accepted
        assert [h["best_cost"] for h in multi.history] == [
            h["best_cost"] for h in sequential.history
        ]

    @pytest.mark.parametrize("chains", [2, 5])
    def test_chain_c_equals_sequential_seed_plus_c(self, chains):
        """Every lockstep chain is bitwise one sequential run."""
        config = SAConfig(n_iterations=250, seed=42, n_chains=chains)
        multi = SimulatedAnnealing(_toy_propose, _toy_evaluate, config).run(
            -4.0
        )
        assert multi.n_chains == chains
        best_costs = []
        for c in range(chains):
            solo = SimulatedAnnealing(
                _toy_propose,
                _toy_evaluate,
                SAConfig(n_iterations=250, seed=42 + c),
            ).run(-4.0)
            assert multi.chain_best_costs[c] == solo.best_cost
            best_costs.append(solo.best_cost)
        assert multi.best_cost == min(best_costs)

    def test_run_dispatches_on_n_chains(self):
        multi = SimulatedAnnealing(
            _toy_propose,
            _toy_evaluate,
            SAConfig(n_iterations=100, seed=0, n_chains=3),
        ).run(0.0)
        assert multi.n_chains == 3
        assert len(multi.chain_best_costs) == 3

    def test_explicit_initial_temperature_vectorizes(self):
        multi = SimulatedAnnealing(
            _toy_propose,
            _toy_evaluate,
            SAConfig(
                n_iterations=100, seed=0, n_chains=4, initial_temperature=5.0
            ),
        ).run(0.0)
        assert multi.best_cost <= _toy_evaluate(0.0)

    def test_all_none_proposals(self):
        sa = SimulatedAnnealing(
            lambda state, rng, progress: None,
            _toy_evaluate,
            SAConfig(n_iterations=50, seed=0, n_chains=3),
        )
        result = sa.run(1.0)
        # Only the three initial evaluations happened.
        assert result.n_evaluations == 3
        assert result.best_state == 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SAConfig(n_chains=0)
        with pytest.raises(ValueError):
            SAConfig(history_stride=0)


class TestSAHistoryColumns:
    def test_columns_and_dict_views(self):
        sa = SimulatedAnnealing(
            _toy_propose, _toy_evaluate, SAConfig(n_iterations=120, seed=1)
        )
        result = sa.run(0.0)
        history = result.history
        assert isinstance(history, SAHistory)
        assert len(history) > 0
        best = history.column("best_cost")
        assert isinstance(best, np.ndarray)
        assert best[-1] == history[-1]["best_cost"]
        assert isinstance(history[0]["iteration"], int)
        # best-cost column is monotone non-increasing.
        assert (np.diff(best) <= 1e-12).all()

    def test_stride_thins_history(self):
        dense = SimulatedAnnealing(
            _toy_propose, _toy_evaluate, SAConfig(n_iterations=200, seed=2)
        ).run(0.0)
        thinned = SimulatedAnnealing(
            _toy_propose,
            _toy_evaluate,
            SAConfig(n_iterations=200, seed=2, history_stride=10),
        ).run(0.0)
        assert 0 < len(thinned.history) <= len(dense.history) // 5
        # Thinning never changes the search itself.
        assert thinned.best_cost == dense.best_cost
        assert all(h["iteration"] % 10 == 0 for h in thinned.history)

    def test_history_works_with_csv_writer(self, tmp_path):
        from repro.experiments.curves import history_to_csv

        result = SimulatedAnnealing(
            _toy_propose, _toy_evaluate, SAConfig(n_iterations=60, seed=3)
        ).run(0.0)
        path = tmp_path / "history.csv"
        history_to_csv(result.history, path)
        lines = path.read_text().strip().splitlines()
        assert lines[0].split(",") == list(SAHistory.FIELDS)
        assert len(lines) == len(result.history) + 1

    def test_slice_access(self):
        result = SimulatedAnnealing(
            _toy_propose, _toy_evaluate, SAConfig(n_iterations=60, seed=4)
        ).run(0.0)
        head = result.history[:3]
        assert len(head) == 3
        assert head[0] == result.history[0]


class TestBatchedRewardPath:
    def _candidates(self, system, calculator, n):
        placer = TAP25DPlacer(system, calculator, TAP25DConfig())
        rng = np.random.default_rng(7)
        current = placer.initial_placement()
        out = []
        while len(out) < n:
            candidate = placer.propose(current, rng, 0.3)
            if candidate is not None:
                out.append(candidate)
                current = candidate
        return out

    def test_evaluate_many_matches_scalar(self, small_system, calculator):
        placements = self._candidates(small_system, calculator, 9)
        rewards = calculator.evaluate_many(placements)
        scalar = np.array(
            [calculator.evaluate(p).reward for p in placements]
        )
        np.testing.assert_allclose(rewards, scalar, rtol=0, atol=1e-9)

    def test_evaluate_many_empty(self, calculator):
        assert len(calculator.evaluate_many([])) == 0

    def test_evaluate_many_mixed_systems_falls_back(
        self, small_system, calculator
    ):
        """Same die names on a different system must not share a batch."""
        from repro.chiplet import Chiplet, ChipletSystem, Placement

        twin = ChipletSystem(
            "twin",
            small_system.interposer,
            tuple(
                Chiplet(c.name, c.width, c.height, c.power * 3.0, kind=c.kind)
                for c in small_system.chiplets
            ),
        )
        placement = self._candidates(small_system, calculator, 1)[0]
        twin_placement = Placement(twin, dict(placement.positions))
        rewards = calculator.evaluate_many([placement, twin_placement])
        scalar = np.array(
            [
                calculator.evaluate(placement).reward,
                calculator.evaluate(twin_placement).reward,
            ]
        )
        np.testing.assert_allclose(rewards, scalar, rtol=0, atol=1e-9)

    def test_wirelength_batch_matches_scalar(self, small_system, calculator):
        placements = self._candidates(small_system, calculator, 6)
        batch = estimate_wirelength_batch(placements)
        scalar = np.array([estimate_wirelength(p) for p in placements])
        np.testing.assert_allclose(batch, scalar, rtol=1e-12)

    def test_wirelength_batch_bump_assignment(self, small_system, small_fast_model):
        calc = RewardCalculator(
            small_fast_model,
            RewardConfig(lambda_wl=1e-4, use_bump_assignment=True),
        )
        placements = self._candidates(small_system, calc, 3)
        batch = calc.wirelength_many(placements)
        scalar = np.array([calc.wirelength(p) for p in placements])
        np.testing.assert_allclose(batch, scalar, rtol=1e-12)

    def test_penalty_many_matches_scalar(self):
        config = RewardConfig(t_limit=85.0, alpha=1.2)
        temps = np.array([20.0, 84.9999, 85.0, 85.5, 120.0, -40.0])
        batch = config.thermal_penalty_many(temps)
        scalar = np.array([config.thermal_penalty(t) for t in temps])
        assert (batch == scalar).all()


class TestMultiChainPlacers:
    def test_tap25d_multichain_runs_and_is_legal(
        self, small_system, calculator
    ):
        result = TAP25DPlacer(
            small_system,
            calculator,
            TAP25DConfig(n_iterations=60, seed=0, n_chains=4),
        ).run()
        validate_placement(result.placement)
        # Every chain spends its budget: more evaluations than one chain.
        assert result.n_evaluations > 60
        again = calculator.evaluate(result.placement)
        assert again.reward == pytest.approx(result.reward, rel=1e-9)

    def test_tap25d_multichain_never_worse_than_worst_chain(
        self, small_system, calculator
    ):
        multi = TAP25DPlacer(
            small_system,
            calculator,
            TAP25DConfig(n_iterations=50, seed=1, n_chains=3),
        ).run()
        solo = TAP25DPlacer(
            small_system,
            calculator,
            TAP25DConfig(n_iterations=50, seed=1),
        ).run()
        # Chain 0 shares the solo run's seed; best-of-3 can only improve
        # on it (costs differ at float-rounding level, hence the slack).
        assert multi.reward >= solo.reward - 1e-6

    def test_bstar_multichain_runs_and_is_legal(
        self, small_system, calculator
    ):
        result = BStarFloorplanner(
            small_system,
            calculator,
            BStarConfig(n_iterations=50, seed=0, n_chains=3),
        ).run()
        validate_placement(result.placement)
        assert result.n_evaluations > 50

    def test_random_search_batched_matches_sequential(
        self, small_system, calculator
    ):
        sequential = random_search(
            small_system, calculator, n_samples=12, seed=9
        )
        batched = random_search(
            small_system, calculator, n_samples=12, seed=9, batch_size=5
        )
        # Identical RNG stream => identical samples => identical winner.
        assert batched.n_evaluations == sequential.n_evaluations == 12
        assert batched.placement.as_dict() == sequential.placement.as_dict()
        assert batched.reward == pytest.approx(sequential.reward, rel=1e-9)

    def test_random_search_batch_size_validation(
        self, small_system, calculator
    ):
        with pytest.raises(ValueError):
            random_search(small_system, calculator, batch_size=0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TAP25DConfig(n_chains=0)
        with pytest.raises(ValueError):
            BStarConfig(n_chains=0)
