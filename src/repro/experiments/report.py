"""Result containers and plain-text table rendering.

The harness prints tables in the same row/column layout as the paper so
measured-vs-published comparisons are one glance.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = ["MethodResult", "format_table", "format_comparison", "save_results"]


@dataclass
class MethodResult:
    """One method's outcome on one system (a Table I cell group)."""

    system: str
    method: str
    reward: float
    wirelength: float
    temperature_c: float
    runtime_s: float
    extra: dict = field(default_factory=dict)


def format_table(results: list, title: str = "") -> str:
    """Render MethodResults as a fixed-width table grouped by system."""
    lines = []
    if title:
        lines.append(title)
    header = (
        f"{'System':<14} {'Method':<26} {'Reward':>12} "
        f"{'WL (mm)':>12} {'Temp (C)':>10} {'Runtime (s)':>12}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for res in results:
        lines.append(
            f"{res.system:<14} {res.method:<26} {res.reward:>12.4f} "
            f"{res.wirelength:>12.0f} {res.temperature_c:>10.2f} "
            f"{res.runtime_s:>12.1f}"
        )
    return "\n".join(lines)


def format_comparison(results: list, paper_reference: dict, system: str) -> str:
    """Measured-vs-paper block for one system."""
    lines = [f"{system}: measured vs paper"]
    for res in results:
        if res.system != system:
            continue
        ref = paper_reference.get(res.method, {})
        ref_reward = ref.get("reward")
        ref_str = f"{ref_reward:.4f}" if ref_reward is not None else "n/a"
        lines.append(
            f"  {res.method:<26} reward {res.reward:>10.4f}  (paper {ref_str})"
        )
    return "\n".join(lines)


def save_results(results: list, path, metadata: dict | None = None) -> None:
    """Dump results (+ run metadata) as JSON for EXPERIMENTS.md updates."""
    payload = {
        "metadata": metadata or {},
        "results": [asdict(r) for r in results],
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, default=str))
