"""Transfer learning across chiplet systems.

The paper's introduction argues RL brings "flexibility and
transferability" that SA lacks: a policy trained on one system can warm-
start another.  This example trains on synthetic case 1, then fine-tunes
on case 2 and compares against training case 2 from scratch under the
same epoch budget.  It also estimates link delays of the final
floorplan, closing the loop on the intro's three concerns (bumps,
delays, heat).

Run:
    python examples/transfer_learning.py
"""

from repro.agent import RLPlannerTrainer, TrainerConfig
from repro.bumps import BumpAssigner, worst_net_delay
from repro.env import EnvConfig, FloorplanEnv
from repro.experiments.runner import ExperimentBudget, build_evaluators
from repro.systems import get_benchmark

EPOCHS = 20
GRID = 24


def make_trainer(spec, evaluators, seed=0):
    env = FloorplanEnv(
        spec.system, evaluators["reward_fast"], EnvConfig(grid_size=GRID)
    )
    return RLPlannerTrainer(
        env,
        TrainerConfig(
            epochs=EPOCHS, episodes_per_epoch=8, seed=seed, log_every=0
        ),
    )


def main() -> None:
    budget = ExperimentBudget(grid_size=GRID)
    source = get_benchmark("synthetic1")
    target = get_benchmark("synthetic2")
    ev_source = build_evaluators(source, budget)
    ev_target = build_evaluators(target, budget)

    print(f"source system: {source.system.n_chiplets} dies; "
          f"target system: {target.system.n_chiplets} dies")

    print(f"\n[1/3] pre-training on {source.name} ({EPOCHS} epochs)...")
    pretrainer = make_trainer(source, ev_source)
    pre = pretrainer.train()
    print(f"   source best reward {pre.best_reward:.4f}")

    print(f"[2/3] fine-tuning on {target.name} (warm start)...")
    warm = make_trainer(target, ev_target)
    # Observation channels and action grid match, so weights transfer.
    warm.network.load_state_dict(pretrainer.network.state_dict())
    warm_result = warm.train()

    print(f"[3/3] training on {target.name} from scratch...")
    cold = make_trainer(target, ev_target, seed=0)
    cold_result = cold.train()

    print(f"\nwarm-started best reward : {warm_result.best_reward:.4f}")
    print(f"from-scratch best reward : {cold_result.best_reward:.4f}")
    warm_first = warm_result.history[0]["mean_reward"]
    cold_first = cold_result.history[0]["mean_reward"]
    print(f"first-epoch mean reward  : warm {warm_first:.4f} "
          f"vs cold {cold_first:.4f}")

    # Link-delay check of the winning floorplan.
    best = max((warm_result, cold_result), key=lambda r: r.best_reward)
    assignment = BumpAssigner(wire_group_size=8).assign(best.best_placement)
    worst = worst_net_delay(assignment)
    print(
        f"\nslowest link: {worst.src} -> {worst.dst} "
        f"({worst.max_length_mm:.1f} mm, {worst.max_delay_ns:.3f} ns Elmore)"
    )


if __name__ == "__main__":
    main()
