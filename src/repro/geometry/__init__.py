"""Planar geometry substrate: rectangles and placement grids.

All coordinates are in millimetres with the origin at the lower-left
corner of the interposer.  Rectangles are axis-aligned and closed on the
lower/left edges, open on the upper/right edges, so two abutting chiplets
do not count as overlapping.
"""

from repro.geometry.rect import Rect
from repro.geometry.grid import PlacementGrid

__all__ = ["Rect", "PlacementGrid"]
