"""Discretization of the interposer into a placement / thermal grid.

The RL agent's action space is a ``rows x cols`` grid of candidate
lower-left corners; the thermal solver rasterizes chiplet power onto the
same kind of grid.  Both use :class:`PlacementGrid` so that cell <-> mm
conversions are consistent everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.rect import Rect

__all__ = ["PlacementGrid"]


@dataclass(frozen=True)
class PlacementGrid:
    """Uniform grid over a ``width x height`` mm region.

    Cell ``(row, col)`` covers ``[col*dx, (col+1)*dx) x [row*dy, (row+1)*dy)``
    with ``dx = width / cols`` and ``dy = height / rows``.  Rows grow with
    y so that ``grid[row, col]`` renders naturally with origin lower-left.
    """

    width: float
    height: float
    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("grid region must have positive size")
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("grid must have positive shape")

    @property
    def dx(self) -> float:
        """Cell width in mm."""
        return self.width / self.cols

    @property
    def dy(self) -> float:
        """Cell height in mm."""
        return self.height / self.rows

    @property
    def n_cells(self) -> int:
        return self.rows * self.cols

    @property
    def shape(self) -> tuple:
        return (self.rows, self.cols)

    @property
    def cell_area(self) -> float:
        """Area of one cell in mm^2."""
        return self.dx * self.dy

    @property
    def bounds(self) -> Rect:
        """The full gridded region as a rectangle at the origin."""
        return Rect(0.0, 0.0, self.width, self.height)

    # -- index conversions ---------------------------------------------------

    def cell_origin(self, row: int, col: int) -> tuple:
        """Lower-left mm coordinate of cell ``(row, col)``."""
        self._check_cell(row, col)
        return (col * self.dx, row * self.dy)

    def cell_center(self, row: int, col: int) -> tuple:
        """Center mm coordinate of cell ``(row, col)``."""
        self._check_cell(row, col)
        return ((col + 0.5) * self.dx, (row + 0.5) * self.dy)

    def cell_rect(self, row: int, col: int) -> Rect:
        """The cell's footprint rectangle."""
        ox, oy = self.cell_origin(row, col)
        return Rect(ox, oy, self.dx, self.dy)

    def locate(self, x: float, y: float) -> tuple:
        """``(row, col)`` of the cell containing point ``(x, y)``.

        Points on the far right/top boundary are clamped into the last
        cell so ``locate(width, height)`` is valid.
        """
        if not (0.0 <= x <= self.width and 0.0 <= y <= self.height):
            raise ValueError(f"point ({x}, {y}) outside grid region")
        col = min(int(x / self.dx), self.cols - 1)
        row = min(int(y / self.dy), self.rows - 1)
        return (row, col)

    def flat_index(self, row: int, col: int) -> int:
        """Row-major flattened index (the RL action id)."""
        self._check_cell(row, col)
        return row * self.cols + col

    def unflatten(self, index: int) -> tuple:
        """Inverse of :meth:`flat_index`."""
        if not 0 <= index < self.n_cells:
            raise ValueError(f"flat index {index} out of range")
        return divmod(index, self.cols)

    # -- rasterization -------------------------------------------------------

    def coverage(self, rect: Rect) -> np.ndarray:
        """Fraction of each cell covered by ``rect`` (float array rows x cols).

        Exact area-weighted rasterization: a chiplet that half-covers a
        boundary cell contributes 0.5 there.  Used for power maps.
        """
        cover = np.zeros((self.rows, self.cols), dtype=np.float64)
        clipped_x1 = max(rect.x, 0.0)
        clipped_y1 = max(rect.y, 0.0)
        clipped_x2 = min(rect.x2, self.width)
        clipped_y2 = min(rect.y2, self.height)
        if clipped_x1 >= clipped_x2 or clipped_y1 >= clipped_y2:
            return cover
        col_lo = int(clipped_x1 / self.dx)
        col_hi = min(int(np.ceil(clipped_x2 / self.dx)), self.cols)
        row_lo = int(clipped_y1 / self.dy)
        row_hi = min(int(np.ceil(clipped_y2 / self.dy)), self.rows)
        cols = np.arange(col_lo, col_hi)
        rows = np.arange(row_lo, row_hi)
        # Per-cell overlap length along each axis, then outer product.
        x_overlap = np.minimum((cols + 1) * self.dx, clipped_x2) - np.maximum(
            cols * self.dx, clipped_x1
        )
        y_overlap = np.minimum((rows + 1) * self.dy, clipped_y2) - np.maximum(
            rows * self.dy, clipped_y1
        )
        cover[row_lo:row_hi, col_lo:col_hi] = np.outer(y_overlap, x_overlap) / (
            self.dx * self.dy
        )
        return cover

    def occupancy(self, rect: Rect) -> np.ndarray:
        """Boolean mask of cells whose interior intersects ``rect``."""
        return self.coverage(rect) > 0.0

    def _check_cell(self, row: int, col: int) -> None:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(
                f"cell ({row}, {col}) outside grid {self.rows}x{self.cols}"
            )
