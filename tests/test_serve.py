"""Tests for the floorplanning service (``repro.serve``).

Covers each layer in isolation and then the stack end to end:

* :class:`MicroBatcher` — coalescing, ordering, the ``max_batch`` cap,
  group separation, and error propagation.
* :class:`WarmRegistry` — single-flight builds under thread contention,
  retry after a failed build, and content-key semantics.
* The cold-characterization satellite: N server threads concurrently
  requesting the same uncharacterized system must trigger exactly one
  characterization (and one evaluator build), with the other N-1
  counted as hits.
* :class:`ServeEngine` — place memoization through the run store
  (hit = zero evaluator calls, bitwise-equal response) and
  micro-batched evaluate vs the scalar calculator, bitwise.
* The HTTP surface — health/benchmarks/error codes, served responses
  over real sockets, policy registration, and rollout determinism
  (batch-width invariance via the padded wave path).

Serve-stack tests share one module-scoped server: the expensive parts
(thermal characterization, the cold place arm) run once and every later
test exercises the warm paths — which is exactly the deployment shape.
"""

import struct
import threading
import time

import pytest

from repro.agent.networks import ActorCritic
from repro.chiplet import Placement
from repro.env import EnvConfig, FloorplanEnv
from repro.experiments.runner import ExperimentBudget
from repro.nn.serialization import dumps_payload
from repro.parallel.collector import POLICY_PAYLOAD_KIND
from repro.serve import (
    BadRequest,
    FloorplanServer,
    MicroBatcher,
    ServeClient,
    ServeError,
    WarmRegistry,
    bundle_key,
)
from repro.serve.schema import budget_from_dict, budget_to_dict
from repro.systems import get_benchmark

import numpy as np

METHOD = "TAP-2.5D*(FastThermal)"


def tiny_budget(**overrides) -> ExperimentBudget:
    defaults = dict(
        rl_epochs=1,
        episodes_per_epoch=2,
        grid_size=10,
        sa_iterations_hotspot=12,
        sa_chains=2,
        rollout_batch_size=2,
        position_samples=(2, 2),
        seed=11,
    )
    defaults.update(overrides)
    return ExperimentBudget(**defaults)


def bits(value: float) -> bytes:
    return struct.pack("<d", float(value))


# ----------------------------------------------------------------------
# MicroBatcher
# ----------------------------------------------------------------------


class _GatedBatches:
    """run_batch stub whose first call blocks until released, so the
    test can deterministically queue companions behind it."""

    def __init__(self):
        self.batches = []
        self.first_started = threading.Event()
        self.release_first = threading.Event()

    def __call__(self, group_key, payloads):
        self.batches.append((group_key, list(payloads)))
        if len(self.batches) == 1:
            self.first_started.set()
            assert self.release_first.wait(timeout=10.0)
        return [payload * 2 for payload in payloads]


class TestMicroBatcher:
    def test_coalesces_queued_items_in_submission_order(self):
        gate = _GatedBatches()
        with MicroBatcher(gate, window_s=0.0, max_batch=8) as batcher:
            first = batcher.submit("g", 1)
            assert gate.first_started.wait(timeout=10.0)
            rest = [batcher.submit("g", value) for value in (2, 3, 4, 5)]
            gate.release_first.set()
            assert first.result(timeout=10.0) == 2
            assert [f.result(timeout=10.0) for f in rest] == [4, 6, 8, 10]
        assert gate.batches[0] == ("g", [1])
        # Everything queued while the worker was busy rode one batch,
        # in submission order.
        assert gate.batches[1] == ("g", [2, 3, 4, 5])
        stats = batcher.stats()
        assert stats["items"] == 5
        assert stats["largest_batch"] == 4

    def test_max_batch_caps_each_batch(self):
        gate = _GatedBatches()
        with MicroBatcher(gate, window_s=0.0, max_batch=3) as batcher:
            leader = batcher.submit("g", 0)
            assert gate.first_started.wait(timeout=10.0)
            futures = [batcher.submit("g", value) for value in range(1, 8)]
            gate.release_first.set()
            leader.result(timeout=10.0)
            for future in futures:
                future.result(timeout=10.0)
        sizes = [len(payloads) for _, payloads in gate.batches[1:]]
        assert sizes == [3, 3, 1]

    def test_groups_never_share_a_batch(self):
        gate = _GatedBatches()
        with MicroBatcher(gate, window_s=0.0, max_batch=8) as batcher:
            leader = batcher.submit("a", 0)
            assert gate.first_started.wait(timeout=10.0)
            futures = [
                batcher.submit(group, value)
                for group, value in (("a", 1), ("b", 2), ("a", 3))
            ]
            gate.release_first.set()
            leader.result(timeout=10.0)
            for future in futures:
                future.result(timeout=10.0)
        # Oldest group drains first; "b" runs in its own batch.
        assert gate.batches[1] == ("a", [1, 3])
        assert gate.batches[2] == ("b", [2])

    def test_batch_failure_fails_only_that_batch(self):
        def run_batch(group_key, payloads):
            if group_key == "bad":
                raise RuntimeError("boom")
            return payloads

        with MicroBatcher(run_batch, window_s=0.0) as batcher:
            bad = batcher.submit("bad", 1)
            with pytest.raises(RuntimeError, match="boom"):
                bad.result(timeout=10.0)
            # The worker survives a failed batch.
            assert batcher.call("good", 7) == 7

    def test_wrong_result_length_fails_the_batch(self):
        with MicroBatcher(lambda g, p: [], window_s=0.0) as batcher:
            with pytest.raises(RuntimeError, match="0 results"):
                batcher.call("g", 1)

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(lambda g, p: p, window_s=0.0)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit("g", 1)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda g, p: p, window_s=-1.0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda g, p: p, max_batch=0)


# ----------------------------------------------------------------------
# WarmRegistry
# ----------------------------------------------------------------------


class _CountingBuilder:
    """Injectable builder: counts calls, optionally failing the first."""

    def __init__(self, delay_s: float = 0.02, fail_first: bool = False):
        self.calls = 0
        self.delay_s = delay_s
        self.fail_first = fail_first
        self._lock = threading.Lock()

    def __call__(self, spec, budget, cache_dir):
        with self._lock:
            self.calls += 1
            call = self.calls
        time.sleep(self.delay_s)
        if self.fail_first and call == 1:
            raise RuntimeError("injected build failure")

        class _Calc:
            evaluation_count = 0

        return {"reward_fast": _Calc(), "reward_solver": _Calc()}


@pytest.fixture(scope="module")
def synthetic1_spec():
    return get_benchmark("synthetic1")


class TestWarmRegistry:
    def test_single_flight_under_contention(self, synthetic1_spec):
        builder = _CountingBuilder()
        registry = WarmRegistry(builder=builder)
        budget = tiny_budget()
        n = 8
        barrier = threading.Barrier(n)
        bundles = [None] * n

        def worker(index):
            barrier.wait()
            bundles[index] = registry.bundle(synthetic1_spec, budget)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert builder.calls == 1
        assert all(bundle is bundles[0] for bundle in bundles)
        stats = registry.stats()
        assert stats == {"bundles": 1, "hits": n - 1, "misses": 1, "builds": 1}

    def test_failed_build_is_retried(self, synthetic1_spec):
        builder = _CountingBuilder(delay_s=0.0, fail_first=True)
        registry = WarmRegistry(builder=builder)
        budget = tiny_budget()
        with pytest.raises(RuntimeError, match="injected"):
            registry.bundle(synthetic1_spec, budget)
        # The poisoned slot was dropped; the next request rebuilds.
        bundle = registry.bundle(synthetic1_spec, budget)
        assert builder.calls == 2
        assert registry.stats()["builds"] == 1
        assert bundle.evaluator_calls() == 0

    def test_bundle_key_ignores_training_knobs(self, synthetic1_spec):
        base = tiny_budget()
        training_only = tiny_budget(
            rl_epochs=99, sa_iterations_hotspot=5000, seed=123
        )
        characterization = tiny_budget(position_samples=(3, 3))
        assert bundle_key(synthetic1_spec, base) == bundle_key(
            synthetic1_spec, training_only
        )
        assert bundle_key(synthetic1_spec, base) != bundle_key(
            synthetic1_spec, characterization
        )


class TestColdCharacterizationSingleFlight:
    def test_concurrent_threads_characterize_exactly_once(
        self, synthetic1_spec, tmp_path, monkeypatch
    ):
        """The PR satellite: N server threads hitting one uncharacterized
        system must run exactly one thermal characterization — the other
        N-1 block on the leader's build and count as registry hits."""
        import repro.experiments.runner as runner_module

        real = runner_module.load_or_characterize
        calls = []
        lock = threading.Lock()

        def counting(*args, **kwargs):
            with lock:
                calls.append(threading.get_ident())
            return real(*args, **kwargs)

        monkeypatch.setattr(runner_module, "load_or_characterize", counting)
        registry = WarmRegistry(cache_dir=tmp_path / "cold_cache")
        budget = tiny_budget()
        n = 6
        barrier = threading.Barrier(n)
        bundles = [None] * n

        def worker(index):
            barrier.wait()
            bundles[index] = registry.bundle(synthetic1_spec, budget)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(calls) == 1
        stats = registry.stats()
        assert stats["builds"] == 1
        assert stats["misses"] == 1
        assert stats["hits"] == n - 1
        assert all(bundle is bundles[0] for bundle in bundles)
        # The warm bundle is a real evaluator stack.
        assert "reward_fast" in bundles[0].evaluators
        assert "tables" in bundles[0].evaluators


# ----------------------------------------------------------------------
# ServeEngine + HTTP surface (one shared warm server)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def serve_budget():
    return tiny_budget()


@pytest.fixture(scope="module")
def serve_stack(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve_stack")
    server = FloorplanServer(
        "127.0.0.1",
        0,
        store_dir=root / "store",
        cache_dir=root / "cache",
        window_s=0.005,
        max_batch=8,
    ).start()
    client = ServeClient(server.url, timeout=600.0)
    yield server, client
    server.close()


@pytest.fixture(scope="module")
def cold_place(serve_stack, serve_budget):
    """The one cold arm this module runs; everything else rides it."""
    server, _ = serve_stack
    response = server.engine.place("synthetic1", METHOD, serve_budget)
    assert response["cache"] == "miss"
    return response


class TestServeEngine:
    def test_cold_place_computes(self, cold_place):
        assert cold_place["evaluator_calls"] > 0
        assert cold_place["placement"] is not None
        assert cold_place["result"]["method"] == METHOD
        # Single-method semantics: time matching was requested but no
        # RL arm feeds a limit, exactly like `repro.cli sa`.
        assert cold_place["result"]["extra"]["time_matched"] is False

    def test_repeat_is_a_store_hit_with_zero_compute(
        self, serve_stack, serve_budget, cold_place
    ):
        server, _ = serve_stack
        warm = server.engine.place("synthetic1", METHOD, serve_budget)
        assert warm["cache"] == "hit"
        assert warm["evaluator_calls"] == 0
        assert warm["store_key"] == cold_place["store_key"]
        for field in ("reward", "wirelength", "temperature_c"):
            assert bits(warm["result"][field]) == bits(
                cold_place["result"][field]
            )
        assert warm["placement"] == cold_place["placement"]

    def test_different_budget_is_a_different_key(
        self, serve_stack, serve_budget, cold_place
    ):
        server, _ = serve_stack
        from repro.serve.engine import place_store_key

        spec = get_benchmark("synthetic1")
        other = tiny_budget(seed=serve_budget.seed + 1)
        assert place_store_key(
            spec, METHOD, other, time_limited=False
        ) != cold_place["store_key"]

    def test_evaluate_matches_scalar_calculator_bitwise(
        self, serve_stack, serve_budget, cold_place
    ):
        server, _ = serve_stack
        engine = server.engine
        spec = get_benchmark("synthetic1")
        placement_dict = cold_place["placement"]
        served = engine.evaluate(
            "synthetic1", placement_dict, "fast", serve_budget
        )
        bundle = engine.registry.bundle(spec, serve_budget)
        with bundle.lock:
            direct = bundle.evaluators["reward_fast"].evaluate(
                Placement.from_dict(spec.system, placement_dict)
            )
        for field, expected in (
            ("reward", direct.reward),
            ("wirelength", direct.wirelength),
            ("max_temperature_c", direct.max_temperature_c),
            ("thermal_penalty", direct.thermal_penalty),
        ):
            assert bits(served[field]) == bits(expected), field
        # The arm's reported reward re-evaluates exactly through the
        # warm batched path.
        assert bits(served["reward"]) == bits(cold_place["result"]["reward"])

    def test_concurrent_evaluates_are_batch_invariant(
        self, serve_stack, serve_budget, cold_place
    ):
        from concurrent.futures import ThreadPoolExecutor

        server, _ = serve_stack
        placement_dict = cold_place["placement"]
        with ThreadPoolExecutor(max_workers=6) as pool:
            responses = list(
                pool.map(
                    lambda _: server.engine.evaluate(
                        "synthetic1", placement_dict, "fast", serve_budget
                    ),
                    range(6),
                )
            )
        reference = bits(cold_place["result"]["reward"])
        for response in responses:
            assert bits(response["reward"]) == reference

    def test_unknown_system_is_a_bad_request(self, serve_stack, serve_budget):
        server, _ = serve_stack
        with pytest.raises(BadRequest):
            server.engine.place("no-such-benchmark", METHOD, serve_budget)

    def test_invalid_placement_is_a_bad_request(
        self, serve_stack, serve_budget
    ):
        server, _ = serve_stack
        with pytest.raises(BadRequest):
            server.engine.evaluate(
                "synthetic1", {"bogus": 1}, "fast", serve_budget
            )


class TestHTTPSurface:
    def test_health_and_benchmarks(self, serve_stack):
        _, client = serve_stack
        assert client.health() == {"ok": True}
        assert "synthetic1" in client.benchmarks()

    def test_unknown_endpoint_is_404(self, serve_stack):
        _, client = serve_stack
        with pytest.raises(ServeError) as excinfo:
            client._request("GET", "/v1/nope")
        assert excinfo.value.status == 404

    def test_unknown_method_is_400(self, serve_stack):
        _, client = serve_stack
        with pytest.raises(ServeError) as excinfo:
            client.place("synthetic1", "NoSuchMethod")
        assert excinfo.value.status == 400

    def test_unknown_budget_field_is_400(self, serve_stack):
        _, client = serve_stack
        with pytest.raises(ServeError) as excinfo:
            client.place("synthetic1", METHOD, {"sa_itertions": 5})
        assert excinfo.value.status == 400
        assert "sa_itertions" in str(excinfo.value)

    def test_served_place_round_trips_bitwise(
        self, serve_stack, serve_budget, cold_place
    ):
        """The wire format preserves every double exactly: the HTTP
        response for the memoized request equals the in-process one."""
        _, client = serve_stack
        response = client.place(
            "synthetic1", METHOD, budget_to_dict(serve_budget)
        )
        assert response["cache"] == "hit"
        assert response["evaluator_calls"] == 0
        for field in ("reward", "wirelength", "temperature_c"):
            assert bits(response["result"][field]) == bits(
                cold_place["result"][field]
            )
        assert response["placement"] == cold_place["placement"]

    def test_stats_expose_every_layer(self, serve_stack, cold_place):
        _, client = serve_stack
        stats = client.stats()
        assert stats["requests"]["place"] >= 1
        assert stats["registry"]["builds"] >= 1
        assert set(stats["batchers"]) == {"evaluate", "rollout"}
        assert stats["store"]["hits"] >= 1


class TestPolicyServing:
    @pytest.fixture(scope="class")
    def registered_policy(self, serve_stack, serve_budget):
        server, client = serve_stack
        spec = get_benchmark("synthetic1")
        bundle = server.engine.registry.bundle(spec, serve_budget)
        env = FloorplanEnv(
            spec.system,
            bundle.evaluators["reward_fast"],
            EnvConfig(grid_size=serve_budget.grid_size),
        )
        channels = (4, 8, 8)
        network = ActorCritic(
            env.observation_shape,
            env.n_actions,
            channels=channels,
            rng=np.random.default_rng(42),
        )
        payload = dumps_payload(
            network.state_dict(), kind=POLICY_PAYLOAD_KIND
        )
        info = client.register_policy("unit-policy", payload, channels)
        assert info["policy"] == "unit-policy"
        assert info["parameters"] > 0
        return "unit-policy"

    def test_registered_policy_is_listed(self, serve_stack, registered_policy):
        _, client = serve_stack
        policies = client.policies()
        assert registered_policy in policies
        assert policies[registered_policy]["channels"] == [4, 8, 8]

    def test_corrupt_policy_payload_is_400(self, serve_stack):
        _, client = serve_stack
        with pytest.raises(ServeError) as excinfo:
            client.register_policy("bad", b"not a payload", (4, 8, 8))
        assert excinfo.value.status == 400

    def test_unknown_policy_rollout_is_400(self, serve_stack, serve_budget):
        _, client = serve_stack
        with pytest.raises(ServeError) as excinfo:
            client.rollout(
                "never-registered",
                "synthetic1",
                seed=0,
                budget=budget_to_dict(serve_budget),
            )
        assert excinfo.value.status == 400

    def test_rollout_is_deterministic_and_width_invariant(
        self, serve_stack, serve_budget, registered_policy
    ):
        """A request's trajectory depends only on its own seed stream:
        the same seed served alone (padded wave) and served inside a
        concurrent batch must answer identically, bit for bit."""
        from concurrent.futures import ThreadPoolExecutor

        _, client = serve_stack
        budget_dict = budget_to_dict(serve_budget)

        solo = client.rollout(
            registered_policy, "synthetic1", seed=5, budget=budget_dict
        )
        assert solo["seed"] == 5
        assert solo["steps"] >= 1

        with ThreadPoolExecutor(max_workers=3) as pool:
            batched = list(
                pool.map(
                    lambda seed: client.rollout(
                        registered_policy,
                        "synthetic1",
                        seed=seed,
                        budget=budget_dict,
                    ),
                    (5, 6, 7),
                )
            )
        by_seed = {response["seed"]: response for response in batched}
        repeat = dict(by_seed[5])
        reference = dict(solo)
        # Batch size is a transport detail (1-padded solo vs whatever
        # the burst coalesced into); everything semantic must agree.
        repeat.pop("batch_size")
        reference.pop("batch_size")
        assert repeat == reference
        if solo["reward"] is not None:
            assert bits(by_seed[5]["reward"]) == bits(solo["reward"])

    def test_greedy_rollout_is_reproducible(
        self, serve_stack, serve_budget, registered_policy
    ):
        _, client = serve_stack
        budget_dict = budget_to_dict(serve_budget)
        first = client.rollout(
            registered_policy,
            "synthetic1",
            seed=9,
            greedy=True,
            budget=budget_dict,
        )
        second = client.rollout(
            registered_policy,
            "synthetic1",
            seed=9,
            greedy=True,
            budget=budget_dict,
        )
        first.pop("batch_size")
        second.pop("batch_size")
        assert first == second


# ----------------------------------------------------------------------
# Schema
# ----------------------------------------------------------------------


class TestSchema:
    def test_budget_round_trips_through_the_wire_format(self):
        budget = tiny_budget()
        assert budget_from_dict(budget_to_dict(budget)) == budget

    def test_tuple_fields_survive_json_lists(self):
        decoded = budget_from_dict({"position_samples": [3, 4]})
        assert decoded.position_samples == (3, 4)
        assert isinstance(decoded.position_samples, tuple)

    def test_unknown_field_is_rejected(self):
        with pytest.raises(BadRequest, match="unknown budget fields"):
            budget_from_dict({"sa_itertions": 10})

    def test_non_object_budget_is_rejected(self):
        with pytest.raises(BadRequest):
            budget_from_dict([1, 2, 3])
