"""Length-prefixed, checksummed socket frames for remote collection.

The multi-machine episode collector ships the *existing* payload schema
(:func:`repro.nn.dumps_payload` bytes — policy broadcasts, slice
results) over plain TCP.  This module owns the wire format and nothing
else: one **frame** is::

    MAGIC(4) | version(1) | reserved(1) | meta_len(u32) | blob_len(u64)
    | crc32(u32) | meta_json(meta_len) | blob(blob_len)

where ``meta_json`` is a UTF-8 JSON object carrying the frame ``kind``
plus small control fields, ``blob`` is an opaque byte payload (weight
broadcasts and episode results — themselves sealed by the payload
schema's SHA-256 footer), and ``crc32`` covers meta+blob.  Everything
is big-endian and stdlib-only (``struct`` + ``zlib.crc32``).

**Failure classification** is the point of the framing: every way a
frame can go wrong maps onto the existing fault taxonomy
(:data:`repro.parallel.faults.TRANSIENT_EXCEPTIONS`):

* a short read mid-frame, a bad magic, an absurd length, or a CRC
  mismatch raises :class:`FrameIntegrityError` — the stream is
  unusable (there is no resynchronization), so the connection is
  fenced and, being an ``OSError``, the failure is *transient*: the
  peer reconnects and the pure slice re-dispatches bitwise;
* a clean EOF at a frame boundary raises :class:`ConnectionClosed`
  (also transient) — the peer went away between frames;
* an idle receive timeout returns ``None`` when the caller opted in
  (``idle_ok``), because "no frame yet" is a normal heartbeat-loop
  outcome, not a fault.

**Chaos.**  ``transport.send`` / ``transport.recv`` injection points
fire per frame with ``detail = "<role>:<kind>"`` (role names the
endpoint, e.g. ``worker:w0`` or ``coordinator``).  The *enacted* modes
(see :mod:`repro.parallel.chaos`) are implemented here: ``drop``
swallows a sent frame (or discards a received one), ``corrupt`` flips
a payload byte so the peer's (or our) CRC check trips, ``disconnect``
closes the socket mid-conversation.  ``transport.accept`` fires in the
coordinator's accept loop.
"""

from __future__ import annotations

import json
import socket
import struct
import zlib

from repro.parallel import chaos

__all__ = [
    "ConnectionClosed",
    "FrameIntegrityError",
    "TransportError",
    "recv_frame",
    "send_frame",
]

MAGIC = b"RLPT"
VERSION = 1

_HEADER = struct.Struct(">4sBxIQI")  # magic, version, pad, meta, blob, crc

#: Ceiling on a single frame (1 GiB).  A length beyond this is a
#: corrupted header, not a real payload — fail fast instead of trying
#: to allocate garbage.
MAX_FRAME_BYTES = 1 << 30


class TransportError(OSError):
    """Base class for socket-transport failures (always transient)."""


class FrameIntegrityError(TransportError):
    """A frame failed its checksum, magic, length, or arrived short.

    The byte stream has no resynchronization point, so the connection
    carrying it must be fenced and re-established.
    """


class ConnectionClosed(TransportError):
    """The peer closed the connection (cleanly or by chaos)."""


def _corrupt(data: bytes) -> bytes:
    """Flip one bit of ``data`` (chaos ``corrupt`` enactment)."""
    if not data:
        return data
    middle = len(data) // 2
    return data[:middle] + bytes([data[middle] ^ 0x01]) + data[middle + 1 :]


def _chaos_disconnect(sock: socket.socket, point: str, detail: str):
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    sock.close()
    raise ConnectionClosed(f"chaos-injected disconnect at {point} ({detail})")


def send_frame(
    sock: socket.socket,
    kind: str,
    meta: dict | None = None,
    blob: bytes = b"",
    *,
    lock=None,
    detail: str = "",
) -> None:
    """Send one frame; ``lock`` serializes writers sharing the socket.

    The worker's heartbeat thread and its task-result sends share one
    socket, so both pass the connection's send lock — a heartbeat
    interleaved into the middle of a result frame would destroy the
    stream.
    """
    payload = dict(meta or {})
    payload["kind"] = kind
    meta_bytes = json.dumps(payload, sort_keys=True).encode("utf-8")
    action = chaos.maybe_fail("transport.send", f"{detail}:{kind}")
    if action == "drop":
        return  # the frame vanishes on the wire; the peer never sees it
    crc = zlib.crc32(meta_bytes)
    crc = zlib.crc32(blob, crc)
    if action == "corrupt":
        # Flip a payload bit *after* computing the CRC: the peer's
        # check is then guaranteed to trip (CRC32 detects any 1-bit
        # error), modeling corruption on the wire.
        if blob:
            blob = _corrupt(blob)
        else:
            meta_bytes = _corrupt(meta_bytes)
    header = _HEADER.pack(MAGIC, VERSION, len(meta_bytes), len(blob), crc)
    data = header + meta_bytes + blob
    try:
        if lock is not None:
            with lock:
                sock.sendall(data)
        else:
            sock.sendall(data)
    except OSError as error:
        if isinstance(error, TransportError):
            raise
        raise ConnectionClosed(
            f"send failed ({detail}:{kind}): {error!r}"
        ) from error
    if action == "disconnect":
        _chaos_disconnect(sock, "transport.send", f"{detail}:{kind}")


def _recv_exact(sock: socket.socket, n: int, *, what: str, any_read: bool):
    """Read exactly ``n`` bytes or raise; None on clean EOF at start.

    ``any_read`` marks whether earlier bytes of the same frame were
    already consumed: EOF then is a *short read* (integrity failure),
    not a clean close.
    """
    chunks = []
    got = 0
    while got < n:
        try:
            chunk = sock.recv(min(n - got, 1 << 20))
        except (TimeoutError, socket.timeout):
            if got or any_read:
                raise FrameIntegrityError(
                    f"timed out mid-frame reading {what} "
                    f"({got}/{n} bytes)"
                ) from None
            raise
        except OSError as error:
            raise ConnectionClosed(
                f"recv failed reading {what}: {error!r}"
            ) from error
        if not chunk:
            if got or any_read:
                raise FrameIntegrityError(
                    f"short read: connection closed mid-frame reading "
                    f"{what} ({got}/{n} bytes)"
                )
            return None
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock: socket.socket, *, idle_ok: bool = False, detail: str = ""
):
    """Receive one frame; returns ``(kind, meta, blob)``.

    Returns ``None`` on an idle receive timeout when ``idle_ok`` is set
    (the caller's poll loop continues); a timeout *mid-frame* is always
    a :class:`FrameIntegrityError`.  Raises :class:`ConnectionClosed`
    on clean EOF between frames.
    """
    action = chaos.maybe_fail("transport.recv", detail)
    if action == "disconnect":
        _chaos_disconnect(sock, "transport.recv", detail)
    try:
        header = _recv_exact(
            sock, _HEADER.size, what="header", any_read=False
        )
    except (TimeoutError, socket.timeout):
        if idle_ok:
            return None
        raise FrameIntegrityError(
            f"timed out waiting for a frame ({detail})"
        ) from None
    if header is None:
        raise ConnectionClosed(f"peer closed the connection ({detail})")
    magic, version, meta_len, blob_len, crc = _HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameIntegrityError(
            f"bad frame magic {magic!r} ({detail}) — desynchronized or "
            "corrupted stream"
        )
    if version != VERSION:
        raise FrameIntegrityError(
            f"frame version {version} != supported {VERSION} ({detail})"
        )
    if meta_len + blob_len > MAX_FRAME_BYTES:
        raise FrameIntegrityError(
            f"frame length {meta_len + blob_len} exceeds "
            f"{MAX_FRAME_BYTES} ({detail}) — corrupted header"
        )
    meta_bytes = _recv_exact(sock, meta_len, what="meta", any_read=True)
    blob = _recv_exact(sock, blob_len, what="blob", any_read=True)
    if action == "corrupt":
        if blob:
            blob = _corrupt(blob)
        else:
            meta_bytes = _corrupt(meta_bytes)
    actual = zlib.crc32(meta_bytes)
    actual = zlib.crc32(blob, actual)
    if actual != crc:
        raise FrameIntegrityError(
            f"frame checksum mismatch ({detail}): got {actual:#010x}, "
            f"header says {crc:#010x}"
        )
    if action == "drop":
        # The frame is discarded after full receipt: to the caller it
        # simply never arrived (read the next one / time out).
        return recv_frame(sock, idle_ok=idle_ok, detail=detail)
    try:
        meta = json.loads(meta_bytes.decode("utf-8"))
        kind = meta.pop("kind")
    except (ValueError, KeyError) as error:
        raise FrameIntegrityError(
            f"frame meta is not valid JSON with a kind ({detail}): "
            f"{error!r}"
        ) from error
    return kind, meta, blob
