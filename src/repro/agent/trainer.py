"""RLPlanner's training loop: PPO (+ optional RND) over the environment.

One "epoch" collects a batch of complete episodes, adds RND intrinsic
bonuses if enabled, runs the PPO update, and tracks the best placement
seen so far — the floorplanner's actual product.  Training stops after
``epochs`` epochs or ``time_limit`` seconds, whichever comes first (the
paper compares methods under matched wall-clock budgets).

Episode collection has two engines selected by ``TrainerConfig.batch_size``:

* ``batch_size=1`` — the original sequential path: one environment, one
  single-observation forward pass per step.  Kept intact so golden
  regression tests can pin training trajectories across refactors.
* ``batch_size>1`` — the batched rollout engine: episodes step in
  lockstep through a :class:`~repro.env.BatchedFloorplanEnv` with one
  batched actor-critic forward per step.  Each episode samples from its
  own derived RNG stream, so trajectories are invariant to the batch
  width (any ``batch_size >= 2`` yields identical results).

On top of the batched engine, ``TrainerConfig.collect_jobs`` shards an
epoch's collection across a persistent worker pool
(:class:`~repro.parallel.collector.EpisodeCollector`): weights are
broadcast once per epoch, each worker collects a contiguous slice of
episode indices on the exact same ``episode.{index}`` streams, and the
slices merge back in index order — so ``collect_jobs=N`` training is
bitwise identical to ``collect_jobs=1`` (regression-pinned), the knob
trades only wall-clock.

``TrainerConfig.async_collect`` pipelines the two phases (opt-in):
while the learner runs the PPO update for epoch k, the collector pool
is already collecting epoch k+1 — with the **pre-update epoch-k
policy**, dispatched as a prefetch before the update ran.  The
staleness schedule is fixed, not timing-dependent: epoch 0 collects
synchronously with the initial weights and every epoch ``e >= 1``
collects with the weights as of *before* update ``e-1`` ran — an
off-by-one (IMPALA-style) actor/learner split.  Because the schedule
is part of the algorithm rather than an artifact of overlap, an async
run is reproducible at a fixed seed regardless of ``collect_jobs``,
worker timing, or injected faults, and checkpoints capture the
in-flight prefetch (its weight bytes + index block) so kill+resume is
bitwise too.  The default stays lockstep — async runs produce
*different* (equally valid) trajectories, so the mode is semantic and
never silently enabled.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.agent.networks import ActorCritic
from repro.env import BatchedFloorplanEnv, FloorplanEnv
from repro.nn import Adam, dumps_payload, load_payload, loads_payload, save_payload
from repro.parallel.collector import (
    POLICY_PAYLOAD_KIND,
    EpisodeCollector,
    collect_slice,
)
from repro.rl import (
    Episode,
    PPOConfig,
    PPOUpdater,
    RNDConfig,
    RandomNetworkDistillation,
    RolloutBuffer,
    linear_schedule,
)
from repro.utils import SeedSequence, get_logger

__all__ = ["TrainerConfig", "TrainingResult", "RLPlannerTrainer"]

_logger = get_logger("agent.trainer")

#: ``kind`` tag of trainer checkpoints in the versioned payload schema.
TRAINER_CHECKPOINT_KIND = "rlplanner-trainer"


@dataclass(frozen=True)
class TrainerConfig:
    """Training hyperparameters.

    The paper trains for 600 epochs; benches scale this down and the
    time_limit gives the wall-clock-matched comparisons of Table I.
    """

    epochs: int = 600
    episodes_per_epoch: int = 16
    # Rollout batch width.  1 = the original sequential collection path
    # (one forward pass per step per episode, one shared action stream)
    # kept bit-for-bit intact for regression pinning.  >1 = lockstep
    # batched collection: up to ``batch_size`` episodes step together
    # through a BatchedFloorplanEnv with one batched forward per step,
    # each episode on its own derived RNG stream — so trajectories are
    # identical for ANY batch_size >= 2 (8 and 16 give the same result,
    # just at different speed).
    batch_size: int = 1
    # Worker processes for episode collection.  1 = collect in-process.
    # >1 = shard each epoch's episodes over a persistent process pool:
    # weights broadcast once per epoch, contiguous index slices per
    # worker, merged in index order — bitwise identical to in-process
    # collection at any worker count.  Requires the batched engine;
    # with ``batch_size=1`` the trainer warns and collects in-process
    # (the sequential engine's shared action stream cannot be sharded).
    collect_jobs: int = 1
    # Pipelined (async) collection: overlap epoch k's PPO update with
    # the collection of epoch k+1, which is dispatched *before* the
    # update with the pre-update epoch-k weights (off-by-one
    # staleness).  The schedule is fixed, so async runs are
    # reproducible at a fixed seed — but they differ from lockstep runs
    # (the data for epoch e >= 1 comes from a one-update-older policy),
    # which is why the mode is opt-in and participates in experiment
    # store keys.  Requires the batched engine (batch_size >= 2);
    # wall-clock overlap additionally needs collect_jobs >= 2 (with
    # in-process collection the same schedule runs, just without the
    # speedup).
    async_collect: bool = False
    # Remote (multi-machine) episode collection.  0 = off.  >= 1 opens
    # a lease-based TCP coordinator (bound at ``collect_bind``) and
    # cuts each epoch into ``collect_workers`` wave-aligned slices
    # served by whatever remote workers (scripts/collect_worker.py)
    # lease in — the count sets partition granularity, not a connection
    # requirement.  Like collect_jobs, the knob is non-semantic: slices
    # are pure in (weight bytes, per-episode seed streams), so results
    # are bitwise identical to in-process collection at any worker
    # count, under worker kills, disconnects and lease expiries — only
    # wall clock changes.  With no remote workers reachable the
    # trainer degrades to the local pool (collect_jobs >= 2), then to
    # in-process.  Requires the batched engine (batch_size >= 2).
    collect_workers: int = 0
    # host:port the coordinator binds ("127.0.0.1:0" = loopback,
    # ephemeral port; use "0.0.0.0:<port>" to accept workers from other
    # machines).  Non-semantic, like collect_workers.
    collect_bind: str = "127.0.0.1:0"
    gamma: float = 0.99
    gae_lambda: float = 0.95
    learning_rate: float = 3e-4
    seed: int = 0
    use_rnd: bool = False
    rnd: RNDConfig = field(default_factory=RNDConfig)
    ppo: PPOConfig = field(default_factory=PPOConfig)
    encoder_channels: tuple = (16, 32, 32)
    time_limit: float | None = None
    log_every: int = 10
    # Entropy annealing: the coefficient interpolates linearly from
    # ppo.entropy_coef to this value over the epoch budget (None = off).
    entropy_coef_final: float | None = 0.001
    # Full-state checkpoint cadence in epochs (0 = never).  ``train``
    # hands the complete resumable state (network + Adam moments + RNG
    # generator states + running stats + progress) to its
    # ``checkpoint_fn`` after every ``checkpoint_every``-th epoch; a
    # run resumed from such a state is bitwise identical to one that
    # was never interrupted.
    checkpoint_every: int = 0
    # zlib-compress the per-epoch weight broadcast to collection
    # workers.  Non-semantic: it is a transport encoding only — the
    # decoded state dict (and therefore every collected episode) is
    # bitwise identical either way.
    compress_broadcast: bool = False

    def __post_init__(self) -> None:
        if self.epochs < 1 or self.episodes_per_epoch < 1:
            raise ValueError("epochs and episodes_per_epoch must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.collect_jobs < 1:
            raise ValueError("collect_jobs must be >= 1")
        if self.collect_workers < 0:
            raise ValueError("collect_workers must be >= 0 (0 = off)")
        if self.collect_workers:
            host, _, port = self.collect_bind.rpartition(":")
            if not host or not port.isdigit():
                raise ValueError(
                    "collect_bind must be 'host:port' (port 0 = "
                    f"ephemeral), got {self.collect_bind!r}"
                )
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if self.async_collect and self.batch_size < 2:
            # Refusing (rather than falling back) keeps the mode
            # honest: async_collect is semantic — results keyed as
            # async must actually be async — and the sequential
            # engine's golden-pinned shared action stream has no
            # stale-weights variant to offer.
            raise ValueError(
                "async_collect requires the batched engine "
                "(batch_size >= 2); the sequential engine cannot "
                "collect with stale weights"
            )


@dataclass
class TrainingResult:
    """What training produced."""

    best_reward: float
    best_breakdown: object
    best_placement: object
    history: list
    epochs_run: int
    elapsed: float
    deadlock_count: int = 0

    @property
    def final_mean_reward(self) -> float:
        return self.history[-1]["mean_reward"] if self.history else float("nan")


def _improves_best(
    reward: float, episode: int, best_reward: float, best_episode: int
) -> bool:
    """Whether (reward, episode) beats the incumbent best placement.

    Selection is explicitly (reward desc, episode index asc)-keyed:
    a strictly better reward always wins, and an *equal* reward wins
    only from an earlier global episode index.  Arrival order drops out
    entirely, so sharded collection can never flip the reported best
    placement — and under the in-order merge this reduces exactly to
    the historical ``reward > best`` first-wins rule, keeping the
    goldens bitwise.
    """
    if reward > best_reward:
        return True
    return reward == best_reward and episode < best_episode


class RLPlannerTrainer:
    """Train an :class:`ActorCritic` on a :class:`FloorplanEnv`.

    Parameters
    ----------
    env:
        Environment for one chiplet system.
    config:
        Hyperparameters; ``use_rnd=True`` gives the paper's
        RLPlanner(RND) variant.
    """

    def __init__(self, env: FloorplanEnv, config: TrainerConfig | None = None):
        self.env = env
        self.config = config or TrainerConfig()
        seeds = SeedSequence(self.config.seed)
        self.network = ActorCritic(
            env.observation_shape,
            env.n_actions,
            channels=self.config.encoder_channels,
            rng=seeds.rng("network"),
        )
        self.optimizer = Adam(
            self.network.parameters(), lr=self.config.learning_rate
        )
        self.ppo = PPOUpdater(self.network, self.optimizer, self.config.ppo)
        self.rnd = None
        if self.config.use_rnd:
            obs_dim = int(np.prod(env.observation_shape))
            self.rnd = RandomNetworkDistillation(
                obs_dim, self.config.rnd, rng=seeds.rng("rnd")
            )
        self._act_rng = seeds.rng("actions")
        self._ppo_rng = seeds.rng("ppo")
        self._seeds = seeds
        # Global episode counter: episode k of the run always draws from
        # the stream "episode.k", regardless of batch width, which is
        # what makes batched collection width-invariant.
        self._episode_index = 0
        self.batched_env: BatchedFloorplanEnv | None = None
        if self.config.batch_size > 1:
            self.batched_env = BatchedFloorplanEnv(
                env.system, env.reward_calculator, env.config
            )
        collect_jobs = self.config.collect_jobs
        collect_workers = self.config.collect_workers
        if (collect_jobs > 1 or collect_workers) and self.batched_env is None:
            _logger.warning(
                "collect_jobs=%d/collect_workers=%d requested but "
                "batch_size=1 selects the sequential engine, whose episodes "
                "share one action stream and cannot be sharded bitwise; "
                "collecting in-process instead (set batch_size >= 2 to "
                "distribute collection)",
                collect_jobs,
                collect_workers,
            )
            collect_jobs = 1
            collect_workers = 0
        self.collect_jobs = collect_jobs
        self.collect_workers = collect_workers
        self._collector = None  # EpisodeCollector | RemoteEpisodeCollector
        if collect_workers:
            # Deferred import: the remote module pulls in the socket
            # transport, which pure in-process training never needs.
            from repro.parallel.remote import RemoteEpisodeCollector

            host, _, port = self.config.collect_bind.rpartition(":")
            self._collector = RemoteEpisodeCollector(
                env.system,
                env.reward_calculator,
                env.config,
                workers=collect_workers,
                batch_size=self.config.batch_size,
                seed=self.config.seed,
                encoder_channels=self.config.encoder_channels,
                host=host,
                port=int(port),
                local_jobs=collect_jobs,
                compress_broadcast=self.config.compress_broadcast,
            )
        elif collect_jobs > 1:
            self._collector = EpisodeCollector(
                env.system,
                env.reward_calculator,
                env.config,
                jobs=collect_jobs,
                batch_size=self.config.batch_size,
                seed=self.config.seed,
                encoder_channels=self.config.encoder_channels,
                compress_broadcast=self.config.compress_broadcast,
            )
        self.async_collect = bool(self.config.async_collect)
        if self.async_collect and self._collector is None:
            _logger.warning(
                "async_collect without collect_jobs >= 2: the pipelined "
                "staleness schedule still runs (results match a pooled "
                "async run bitwise) but collection happens in-process, "
                "so the update/collection overlap — the speedup — is "
                "lost"
            )
        # Async (pipelined) collection state.  _pending is the epoch
        # block whose collection was dispatched but not yet consumed:
        # (start_index, count), with _stale_weights holding the exact
        # serialized policy it must be collected with.  _stale_network
        # is the lazily built replica those bytes load into when
        # collection runs in-process.
        self._pending: tuple | None = None
        self._stale_weights: bytes | None = None
        self._stale_network: ActorCritic | None = None
        self._progress = self._fresh_progress()

    @staticmethod
    def _fresh_progress() -> dict:
        return {
            "epochs_run": 0,
            "best_reward": -np.inf,
            # Global index of the episode that produced the best
            # placement (-1 = none yet): the selection tie-breaker that
            # keeps "best" independent of episode arrival order.
            "best_episode": -1,
            "best_breakdown": None,
            "best_placement": None,
            "deadlocks": 0,
            "history": [],
            "elapsed": 0.0,
        }

    # ------------------------------------------------------------------

    def collect_episode(self, greedy: bool = False) -> tuple:
        """Roll out one episode; returns (Episode, terminal info dict).

        This is the original sequential path (single shared action
        stream); it backs ``batch_size=1`` and the golden regression
        that pins it to the pre-batching trainer.
        """
        observation, mask = self.env.reset()
        episode = Episode()
        info = {}
        while True:
            action, log_prob, value = self.network.act(
                observation, mask, self._act_rng, greedy=greedy
            )
            episode.add_step(observation, mask, action, log_prob, value)
            result = self.env.step(action)
            if result.done:
                episode.set_terminal_reward(result.reward)
                info = result.info
                break
            observation, mask = result.observation, result.mask
        return episode, info

    def collect_episodes(self, n: int, greedy: bool = False) -> list:
        """Collect ``n`` episodes; returns ``[(Episode, info), ...]``.

        Dispatches to the sequential path for ``batch_size=1``, to the
        in-process lockstep loop (:func:`~repro.parallel.collector.
        collect_slice`) for ``collect_jobs=1``, and to the worker pool
        otherwise.  All three advance the global episode counter, so
        episode ``k`` of a run is the same episode everywhere.
        """
        start_index = self._episode_index
        self._episode_index += n
        if self.batched_env is None:
            return [self.collect_episode(greedy=greedy) for _ in range(n)]
        if self._collector is not None:
            return self._collector.collect(
                self.network, start_index, n, greedy=greedy
            )
        return collect_slice(
            self.network,
            self.batched_env,
            self._seeds,
            start_index,
            n,
            self.config.batch_size,
            greedy=greedy,
        )

    # ------------------------------------------------------------------
    # pipelined (async) collection
    # ------------------------------------------------------------------

    def _policy_payload(self) -> bytes:
        """The current policy, serialized as a broadcast payload."""
        return dumps_payload(
            self.network.state_dict(),
            kind=POLICY_PAYLOAD_KIND,
            compress=self.config.compress_broadcast,
        )

    def _collect_stale(self, weights: bytes, start: int, count: int) -> list:
        """Collect a block with an explicit (possibly stale) policy.

        Routes to the pool when one exists; otherwise loads the payload
        into a local replica — never the live network, which may
        already hold post-update weights — and collects in-process.
        Both paths run the same :func:`collect_slice` loop on the same
        bytes, so they agree bitwise.
        """
        if self._collector is not None:
            return self._collector.collect_with_weights(
                weights, start, count
            )
        if self._stale_network is None:
            self._stale_network = ActorCritic(
                self.env.observation_shape,
                self.env.n_actions,
                channels=self.config.encoder_channels,
                rng=np.random.default_rng(0),
            )
        self._stale_network.load_state_dict(
            loads_payload(weights, kind=POLICY_PAYLOAD_KIND)
        )
        return collect_slice(
            self._stale_network,
            self.batched_env,
            self._seeds,
            start,
            count,
            self.config.batch_size,
        )

    def _collect_epoch_async(self, epoch: int) -> tuple:
        """One epoch's collection under the pipelined schedule.

        Returns ``(epoch_base, collected)``.  Consumes the pending
        prefetch (dispatched last epoch with the then-current weights,
        or restored from a checkpoint), then — before the caller runs
        this epoch's PPO update — dispatches the next epoch's block
        with the *current* (pre-update) weights.  The first epoch of a
        fresh run has no older policy and collects synchronously with
        the initial weights, so the staleness schedule is exactly:
        epoch 0 uses theta_0, epoch e >= 1 uses theta_{e-1}.
        """
        cfg = self.config
        n = cfg.episodes_per_epoch
        if self._pending is not None:
            start, count = self._pending
            self._pending = None
            if self._collector is not None and self._collector.prefetching:
                collected = self._collector.collect_prefetched()
            else:
                # No futures in flight (in-process mode, a resumed
                # checkpoint, or a degraded/failed dispatch): collect
                # now from the stored stale bytes — same policy, same
                # episodes, no overlap.
                collected = self._collect_stale(
                    self._stale_weights, start, count
                )
        else:
            start, count = self._episode_index, n
            self._episode_index += n
            collected = self._collect_stale(self._policy_payload(), start, n)
        if epoch + 1 < cfg.epochs:
            weights = self._policy_payload()  # pre-update theta_epoch
            self._stale_weights = weights
            next_start = self._episode_index
            self._episode_index += n
            self._pending = (next_start, n)
            if self._collector is not None:
                self._collector.prefetch(weights, next_start, n)
        else:
            self._stale_weights = None
        return start, collected

    @property
    def collector_address(self) -> tuple | None:
        """The remote coordinator's ``(host, port)``, or None.

        Remote workers (``scripts/collect_worker.py``) connect here;
        with ``collect_bind`` port 0 this is how the actual ephemeral
        port is discovered.
        """
        if self._collector is None or not hasattr(self._collector, "address"):
            return None
        return self._collector.address

    def close_collector(self) -> None:
        """Release collection workers (no-op when in-process).

        Idempotent; the local pool respawns — and the remote
        coordinator rebinds its remembered port — lazily if collection
        continues.
        """
        if self._collector is not None:
            self._collector.close()

    def train(self, checkpoint_fn=None) -> TrainingResult:
        """Run the full training loop; returns the best floorplan found.

        Starts from scratch, or — after :meth:`load_state_dict` — from
        the checkpointed epoch, continuing the interrupted run bitwise.
        ``checkpoint_fn(state)`` receives the full resumable state after
        every ``config.checkpoint_every``-th epoch.
        """
        cfg = self.config
        progress = self._progress
        best_reward = progress["best_reward"]
        best_episode = progress.get("best_episode", -1)
        best_breakdown = progress["best_breakdown"]
        best_placement = progress["best_placement"]
        deadlocks = progress["deadlocks"]
        history = progress["history"]
        epochs_run = progress["epochs_run"]
        start_epoch = epochs_run
        # A resumed run's clock keeps ticking from the interrupted run's
        # accumulated training time, so ``time_limit`` budgets span the
        # whole run, not just the final leg.
        start = time.perf_counter() - progress["elapsed"]

        try:
            return self._train_loop(
                checkpoint_fn,
                start_epoch,
                start,
                best_reward,
                best_episode,
                best_breakdown,
                best_placement,
                deadlocks,
                history,
                epochs_run,
            )
        finally:
            # Never strand collection workers behind a finished — or
            # interrupted — trainer; the pool respawns lazily if train()
            # is called again.
            self.close_collector()

    def _train_loop(
        self,
        checkpoint_fn,
        start_epoch,
        start,
        best_reward,
        best_episode,
        best_breakdown,
        best_placement,
        deadlocks,
        history,
        epochs_run,
    ) -> TrainingResult:
        cfg = self.config
        progress = self._progress
        for epoch in range(start_epoch, cfg.epochs):
            if (
                cfg.time_limit is not None
                and time.perf_counter() - start > cfg.time_limit
            ):
                break
            if cfg.entropy_coef_final is not None and cfg.epochs > 1:
                fraction = epoch / (cfg.epochs - 1)
                self.ppo.config = replace(
                    cfg.ppo,
                    entropy_coef=linear_schedule(
                        cfg.ppo.entropy_coef, cfg.entropy_coef_final, fraction
                    ),
                )
            buffer = RolloutBuffer(cfg.gamma, cfg.gae_lambda)
            rewards = []
            epoch_obs = []
            # Global index of the epoch's first episode — captured
            # before collection advances the counter, so position k in
            # the merged list IS global episode epoch_base + k.
            if self.async_collect:
                epoch_base, collected = self._collect_epoch_async(epoch)
            else:
                epoch_base = self._episode_index
                collected = self.collect_episodes(cfg.episodes_per_epoch)
            for position, (episode, info) in enumerate(collected):
                rewards.append(episode.total_reward)
                if info.get("deadlock"):
                    deadlocks += 1
                breakdown = info.get("breakdown")
                episode_number = epoch_base + position
                if breakdown is not None and _improves_best(
                    breakdown.reward, episode_number, best_reward, best_episode
                ):
                    best_reward = breakdown.reward
                    best_episode = episode_number
                    best_breakdown = breakdown
                    best_placement = info["placement"]
                intrinsic = None
                if self.rnd is not None:
                    obs_array = np.stack(episode.observations)
                    intrinsic = self.rnd.intrinsic_reward(obs_array)
                    epoch_obs.append(obs_array)
                buffer.add_episode(episode, intrinsic_rewards=intrinsic)
            batch = buffer.compute()
            stats = self.ppo.update(batch, self._ppo_rng)
            if self.rnd is not None and epoch_obs:
                stats["rnd_loss"] = self.rnd.update(np.concatenate(epoch_obs))
            entry = {
                "epoch": epoch,
                "mean_reward": float(np.mean(rewards)),
                "max_reward": float(np.max(rewards)),
                "best_reward": float(best_reward),
                "elapsed": time.perf_counter() - start,
                **stats,
            }
            history.append(entry)
            epochs_run = epoch + 1
            progress.update(
                epochs_run=epochs_run,
                best_reward=best_reward,
                best_episode=best_episode,
                best_breakdown=best_breakdown,
                best_placement=best_placement,
                deadlocks=deadlocks,
                elapsed=time.perf_counter() - start,
            )
            if cfg.log_every and epoch % cfg.log_every == 0:
                _logger.info(
                    "epoch %d mean_reward %.4f best %.4f entropy %.3f",
                    epoch,
                    entry["mean_reward"],
                    best_reward,
                    stats.get("entropy", float("nan")),
                )
            if (
                checkpoint_fn is not None
                and cfg.checkpoint_every
                and epochs_run % cfg.checkpoint_every == 0
                and epochs_run < cfg.epochs
            ):
                checkpoint_fn(self.state_dict())

        progress["elapsed"] = time.perf_counter() - start
        return TrainingResult(
            best_reward=float(best_reward),
            best_breakdown=best_breakdown,
            best_placement=best_placement,
            history=history,
            epochs_run=epochs_run,
            elapsed=progress["elapsed"],
            deadlock_count=deadlocks,
        )

    # ------------------------------------------------------------------

    def greedy_rollout(self) -> tuple:
        """Deterministic rollout with the current policy."""
        return self.collect_episode(greedy=True)

    # ------------------------------------------------------------------
    # full-state checkpointing
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Everything needed to resume training bitwise.

        Network weights, Adam first/second moments and step counter,
        the action/PPO RNG generator states (``bit_generator.state``),
        the RND predictor + its optimizer and running observation/bonus
        statistics (the frozen target re-derives from the seed), the
        global episode counter (the only collection state sharded
        workers depend on — their per-episode streams re-derive from
        (seed, index)), and the training progress (best layout so far
        with its episode index, history, deadlock count, elapsed
        budget).

        Under ``async_collect`` the in-flight prefetch is captured too
        (``async_prefetch``: the pending block's index range and the
        exact stale weight bytes it must be collected with).  The
        prefetched *episodes* are deliberately not persisted — they are
        a pure function of those bytes and indices, so a resumed run
        discards-and-recollects them bitwise.
        """
        # The history list must be snapshotted, not aliased: train()
        # keeps appending to the live list, which would retroactively
        # grow an in-memory checkpoint taken at epoch k.  (Entries are
        # never mutated after append, so a shallow list copy suffices;
        # network/optimizer state dicts already copy their arrays.)
        progress = dict(self._progress)
        progress["history"] = list(progress["history"])
        state = {
            "seed": self.config.seed,
            "batch_size": self.config.batch_size,
            # Recorded for provenance only: per-episode streams are
            # derived statelessly from (seed, episode_index), so a run
            # may legally resume under a *different* collect_jobs or
            # collect_workers and stay bitwise.
            "collect_jobs": self.config.collect_jobs,
            "collect_workers": self.config.collect_workers,
            # Semantic, unlike collect_jobs: an async run's data comes
            # from a one-update-older policy, so resuming under the
            # other mode cannot reproduce the original run.
            "async_collect": bool(self.config.async_collect),
            "async_prefetch": (
                None
                if self._pending is None
                else {
                    "weights": self._stale_weights,
                    "start_index": int(self._pending[0]),
                    "count": int(self._pending[1]),
                }
            ),
            "episode_index": self._episode_index,
            "network": self.network.state_dict(),
            "optimizer": self.optimizer.state_dict(),
            "act_rng": self._act_rng.bit_generator.state,
            "ppo_rng": self._ppo_rng.bit_generator.state,
            "progress": progress,
            "rnd": None,
        }
        if self.rnd is not None:
            state["rnd"] = {
                "predictor": self.rnd.predictor.state_dict(),
                "optimizer": self.rnd.optimizer.state_dict(),
                "obs_stats": _stats_state(self.rnd.obs_stats),
                "bonus_stats": _stats_state(self.rnd.bonus_stats),
            }
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict`; the next :meth:`train` resumes.

        Loading into a trainer with a different seed or collection
        engine is allowed (weight transfer is legitimate) but warned
        about: a *resumed* run is only bitwise-faithful when both
        match.
        """
        if state.get("seed") != self.config.seed:
            _logger.warning(
                "checkpoint seed %s != trainer seed %s; resuming will not "
                "reproduce the original run",
                state.get("seed"),
                self.config.seed,
            )
        if bool(state.get("batch_size", 1) > 1) != bool(
            self.config.batch_size > 1
        ):
            _logger.warning(
                "checkpoint batch_size %s and trainer batch_size %s select "
                "different collection engines; resuming will not reproduce "
                "the original run",
                state.get("batch_size"),
                self.config.batch_size,
            )
        if bool(state.get("async_collect", False)) != bool(
            self.config.async_collect
        ):
            _logger.warning(
                "checkpoint async_collect=%s but trainer async_collect=%s; "
                "the two modes collect each epoch with different-aged "
                "policies, so resuming will not reproduce the original run",
                bool(state.get("async_collect", False)),
                self.config.async_collect,
            )
        self._episode_index = int(state["episode_index"])
        self._pending = None
        self._stale_weights = None
        prefetch = state.get("async_prefetch")
        if prefetch is not None:
            if self.config.async_collect:
                # The interrupted run had already dispatched (and
                # discarded) this block; re-collect it from the same
                # stale bytes on resume — bitwise, by purity.
                self._stale_weights = bytes(prefetch["weights"])
                self._pending = (
                    int(prefetch["start_index"]),
                    int(prefetch["count"]),
                )
            else:
                # Lockstep resume of an async checkpoint: the block was
                # never consumed, so rewind the counter to keep episode
                # indices contiguous (the mode-mismatch warning above
                # already flagged non-reproducibility).
                self._episode_index -= int(prefetch["count"])
        self.network.load_state_dict(state["network"])
        self.optimizer.load_state_dict(state["optimizer"])
        self._act_rng.bit_generator.state = state["act_rng"]
        self._ppo_rng.bit_generator.state = state["ppo_rng"]
        self._progress = dict(state["progress"])
        self._progress["history"] = list(self._progress["history"])
        rnd_state = state.get("rnd")
        if (rnd_state is None) != (self.rnd is None):
            raise ValueError(
                "checkpoint and trainer disagree on use_rnd; cannot resume"
            )
        if rnd_state is not None:
            self.rnd.predictor.load_state_dict(rnd_state["predictor"])
            self.rnd.optimizer.load_state_dict(rnd_state["optimizer"])
            _load_stats_state(self.rnd.obs_stats, rnd_state["obs_stats"])
            _load_stats_state(self.rnd.bonus_stats, rnd_state["bonus_stats"])

    def save_checkpoint(self, path) -> None:
        """Write a full resumable checkpoint (versioned payload schema)."""
        save_payload(self.state_dict(), path, kind=TRAINER_CHECKPOINT_KIND)

    def load_checkpoint(self, path) -> None:
        """Load a checkpoint written by :meth:`save_checkpoint`.

        Legacy weight-only archives raise
        :class:`~repro.nn.LegacyCheckpointError` — they have no
        optimizer, RNG or progress state, so "loading" one would
        silently resume with reset Adam moments and a fresh RNG.
        """
        self.load_state_dict(load_payload(path, kind=TRAINER_CHECKPOINT_KIND))


def _stats_state(stats) -> dict:
    return {
        "mean": np.asarray(stats.mean).copy(),
        "var": np.asarray(stats.var).copy(),
        "count": float(stats.count),
    }


def _load_stats_state(stats, state: dict) -> None:
    stats.mean = np.array(state["mean"], dtype=np.float64, copy=True)
    stats.var = np.array(state["var"], dtype=np.float64, copy=True)
    stats.count = float(state["count"])
