"""Training-curve artifacts: reward vs epoch as CSV and ASCII plot.

The paper shows no learning curves, but they are the natural diagnostic
for the RL-vs-SA comparison: this module renders a trainer's history (or
an SA run's) so EXPERIMENTS.md can show *how* the budgets were spent.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["history_to_csv", "ascii_curve"]


def history_to_csv(history: list, path, fields: tuple = None) -> None:
    """Write a trainer history (list of dicts) to CSV."""
    if not history:
        raise ValueError("history is empty")
    if fields is None:
        fields = tuple(
            k for k in history[0] if isinstance(history[0][k], (int, float))
        )
    lines = [",".join(fields)]
    for entry in history:
        lines.append(",".join(str(entry.get(f, "")) for f in fields))
    Path(path).write_text("\n".join(lines) + "\n")


def ascii_curve(
    values,
    width: int = 70,
    height: int = 14,
    label: str = "",
) -> str:
    """Plot a numeric series as ASCII (epochs on x, value on y)."""
    values = [float(v) for v in values]
    if len(values) < 2:
        raise ValueError("need at least two points")
    lo, hi = min(values), max(values)
    span = max(hi - lo, 1e-12)
    # Downsample/upsample to the plot width.
    xs = [
        values[min(int(i * len(values) / width), len(values) - 1)]
        for i in range(width)
    ]
    canvas = [[" "] * width for _ in range(height)]
    for col, value in enumerate(xs):
        row = int((value - lo) / span * (height - 1))
        canvas[height - 1 - row][col] = "*"
    lines = []
    if label:
        lines.append(label)
    lines.append(f"{hi:>10.3f} +" + "-" * width + "+")
    for row in canvas:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(f"{lo:>10.3f} +" + "-" * width + "+")
    lines.append(" " * 12 + f"epoch 0 .. {len(values) - 1}")
    return "\n".join(lines)
