"""Generic simulated-annealing engine.

State representation, move proposal and cost evaluation are supplied by
the caller; the engine owns the Metropolis acceptance rule, the
geometric cooling schedule, automatic initial-temperature calibration,
and budget accounting (iterations and/or wall clock).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

__all__ = ["SAConfig", "SAResult", "SimulatedAnnealing"]


@dataclass(frozen=True)
class SAConfig:
    """Annealing schedule and budget.

    Attributes
    ----------
    n_iterations:
        Total proposal count (one evaluation per accepted proposal).
    initial_temperature:
        ``None`` auto-calibrates so early uphill moves are accepted with
        ~50 % probability (standard practice; TAP-2.5D does the same).
    final_temperature:
        End of the geometric schedule.
    time_limit:
        Optional wall-clock cap in seconds (for time-matched comparisons).
    seed:
        RNG seed for proposals and acceptance.
    """

    n_iterations: int = 2000
    initial_temperature: float | None = None
    final_temperature: float = 1e-3
    time_limit: float | None = None
    seed: int = 0
    calibration_samples: int = 20

    def __post_init__(self) -> None:
        if self.n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        if self.final_temperature <= 0:
            raise ValueError("final_temperature must be positive")


@dataclass
class SAResult:
    """Outcome of one annealing run."""

    best_state: object
    best_cost: float
    n_evaluations: int
    n_accepted: int
    elapsed: float
    history: list = field(default_factory=list)

    @property
    def acceptance_rate(self) -> float:
        return self.n_accepted / max(self.n_evaluations, 1)


class SimulatedAnnealing:
    """Metropolis annealer over caller-defined states.

    Parameters
    ----------
    propose:
        ``propose(state, rng, progress) -> new_state | None``; ``None``
        means the move was infeasible and is skipped (not evaluated).
    evaluate:
        ``evaluate(state) -> cost`` (lower is better).
    config:
        Schedule and budget.
    """

    def __init__(self, propose, evaluate, config: SAConfig | None = None):
        self.propose = propose
        self.evaluate = evaluate
        self.config = config or SAConfig()

    def run(self, initial_state) -> SAResult:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        start = time.perf_counter()

        current = initial_state
        current_cost = self.evaluate(current)
        best, best_cost = current, current_cost
        n_evaluations = 1
        n_accepted = 0
        history = []

        t0 = cfg.initial_temperature
        if t0 is None:
            t0, calibration_evals = self._calibrate(current, current_cost, rng)
            n_evaluations += calibration_evals
        cooling = (cfg.final_temperature / t0) ** (1.0 / max(cfg.n_iterations, 1))

        temperature = t0
        for iteration in range(cfg.n_iterations):
            if (
                cfg.time_limit is not None
                and time.perf_counter() - start > cfg.time_limit
            ):
                break
            progress = iteration / cfg.n_iterations
            candidate = self.propose(current, rng, progress)
            temperature *= cooling
            if candidate is None:
                continue
            candidate_cost = self.evaluate(candidate)
            n_evaluations += 1
            delta = candidate_cost - current_cost
            if delta <= 0 or rng.random() < math.exp(
                -delta / max(temperature, 1e-12)
            ):
                current, current_cost = candidate, candidate_cost
                n_accepted += 1
                if current_cost < best_cost:
                    best, best_cost = current, current_cost
            history.append(
                {
                    "iteration": iteration,
                    "temperature": temperature,
                    "current_cost": current_cost,
                    "best_cost": best_cost,
                }
            )

        return SAResult(
            best_state=best,
            best_cost=best_cost,
            n_evaluations=n_evaluations,
            n_accepted=n_accepted,
            elapsed=time.perf_counter() - start,
            history=history,
        )

    def _calibrate(self, state, cost, rng: np.random.Generator) -> tuple:
        """Initial temperature from the uphill-move cost spread.

        Returns (temperature, evaluations spent).
        """
        deltas = []
        evaluations = 0
        for _ in range(self.config.calibration_samples):
            candidate = self.propose(state, rng, 0.0)
            if candidate is None:
                continue
            delta = self.evaluate(candidate) - cost
            evaluations += 1
            if delta > 0:
                deltas.append(delta)
        if not deltas:
            return 1.0, evaluations
        # Accept an average uphill move with probability ~0.5 initially.
        return float(np.mean(deltas) / math.log(2.0)), evaluations
