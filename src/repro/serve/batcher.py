"""Micro-batching queue: coalesce concurrent requests into one batch.

Request threads :meth:`submit` work items tagged with a *group key*
(items in one group may ride the same batched call); a single worker
thread drains the queue.  When the first item of a group arrives the
worker waits a bounded window (``window_s``, a few ms) for companions,
then runs the whole group through one ``run_batch`` call — so a lone
request pays at most the window in added latency while a concurrent
burst amortizes into one GEMM-shaped evaluation, exactly the traffic
shape ``evaluate_batch``/``act_batch`` were built for.

Correctness does not depend on batch composition: the batched
evaluation paths this feeds are bitwise row-invariant (a placement's
reward, and an episode's trajectory at wave width >= 2, are independent
of what else shares the batch), so coalescing is purely a throughput
decision.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

from repro.utils import get_logger

__all__ = ["MicroBatcher"]

_logger = get_logger("serve.batcher")


class MicroBatcher:
    """One worker thread coalescing same-group submissions.

    Parameters
    ----------
    run_batch:
        ``run_batch(group_key, payloads) -> results`` (same length and
        order as ``payloads``).  Runs on the worker thread; an exception
        fails every item of that batch (independent batches are
        unaffected).
    window_s:
        How long the worker holds a batch open after its first item
        arrives.  ``0`` still coalesces whatever is already queued.
    max_batch:
        Hard cap per batch; excess same-group items form the next batch.
    """

    def __init__(
        self, run_batch, *, window_s: float = 0.002, max_batch: int = 16,
        name: str = "batcher",
    ):
        if window_s < 0:
            raise ValueError("window_s must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._run_batch = run_batch
        self.window_s = float(window_s)
        self.max_batch = int(max_batch)
        self.name = name
        self._cond = threading.Condition()
        self._queue: list = []  # [(group_key, payload, Future, arrival)]
        self._closed = False
        self.n_batches = 0
        self.n_items = 0
        self.largest_batch = 0
        self._worker = threading.Thread(
            target=self._run, name=f"repro-serve-{name}", daemon=True
        )
        self._worker.start()

    # -- client side ---------------------------------------------------

    def submit(self, group_key, payload) -> Future:
        """Enqueue one item; the Future resolves with its result."""
        future: Future = Future()
        with self._cond:
            if self._closed:
                raise RuntimeError(f"{self.name} is closed")
            self._queue.append((group_key, payload, future, time.monotonic()))
            self._cond.notify()
        return future

    def call(self, group_key, payload):
        """Blocking :meth:`submit` — the request-handler convenience."""
        return self.submit(group_key, payload).result()

    def close(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify()
        self._worker.join(timeout=5.0)
        # Fail anything still queued so no client blocks forever.
        with self._cond:
            leftovers, self._queue = self._queue, []
        for _, _, future, _ in leftovers:
            future.set_exception(RuntimeError(f"{self.name} closed"))

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- worker side ---------------------------------------------------

    def _take_batch(self) -> list | None:
        """Block until a full window has passed for the oldest group.

        Returns the batch (oldest group's items, submission order,
        capped at ``max_batch``) or ``None`` at shutdown.
        """
        with self._cond:
            while True:
                if not self._queue:
                    if self._closed:
                        return None
                    self._cond.wait()
                    continue
                group_key = self._queue[0][0]
                deadline = self._queue[0][3] + self.window_s
                remaining = deadline - time.monotonic()
                matching = sum(
                    1 for item in self._queue if item[0] == group_key
                )
                if (
                    remaining <= 0
                    or matching >= self.max_batch
                    or self._closed
                ):
                    batch = [
                        item for item in self._queue if item[0] == group_key
                    ][: self.max_batch]
                    taken = set(id(item) for item in batch)
                    self._queue = [
                        item for item in self._queue if id(item) not in taken
                    ]
                    return batch
                self._cond.wait(timeout=remaining)

    def _run(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            group_key = batch[0][0]
            payloads = [item[1] for item in batch]
            try:
                results = self._run_batch(group_key, payloads)
                if len(results) != len(payloads):
                    raise RuntimeError(
                        f"{self.name}: run_batch returned {len(results)} "
                        f"results for {len(payloads)} payloads"
                    )
            except BaseException as error:  # noqa: BLE001 — fail the batch
                for _, _, future, _ in batch:
                    if not future.cancelled():
                        future.set_exception(error)
                continue
            with self._cond:
                self.n_batches += 1
                self.n_items += len(batch)
                self.largest_batch = max(self.largest_batch, len(batch))
            for (_, _, future, _), result in zip(batch, results):
                if not future.cancelled():
                    future.set_result(result)

    def stats(self) -> dict:
        with self._cond:
            return {
                "batches": self.n_batches,
                "items": self.n_items,
                "largest_batch": self.largest_batch,
                "queued": len(self._queue),
            }
