"""Tests for running statistics, episodes, GAE and the rollout buffer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.rl import Episode, RolloutBuffer, RunningMeanStd
from repro.rl.schedule import linear_schedule


class TestRunningMeanStd:
    def test_matches_numpy_on_stream(self):
        rng = np.random.default_rng(0)
        data = rng.normal(3.0, 2.0, size=(1000, 4))
        stats = RunningMeanStd(shape=(4,))
        for chunk in np.array_split(data, 10):
            stats.update(chunk)
        np.testing.assert_allclose(stats.mean, data.mean(axis=0), atol=1e-2)
        np.testing.assert_allclose(stats.std, data.std(axis=0), atol=1e-2)

    def test_scalar_shape(self):
        stats = RunningMeanStd(shape=())
        stats.update(np.array([1.0, 2.0, 3.0]))
        assert stats.mean == pytest.approx(2.0, abs=0.01)

    def test_normalize(self):
        stats = RunningMeanStd(shape=(2,))
        stats.update(np.array([[0.0, 10.0]] * 100 + [[2.0, 20.0]] * 100))
        normalized = stats.normalize(np.array([[1.0, 15.0]]))
        np.testing.assert_allclose(normalized, 0.0, atol=0.05)

    def test_normalize_without_center(self):
        stats = RunningMeanStd(shape=())
        stats.update(np.full(100, 4.0) + np.random.default_rng(0).normal(0, 1, 100))
        scaled = stats.normalize(np.array([2.0]), center=False)
        assert scaled[0] == pytest.approx(2.0 / stats.std, rel=1e-6)

    @settings(max_examples=20)
    @given(st.lists(st.floats(-100, 100), min_size=2, max_size=50))
    def test_variance_nonnegative(self, values):
        stats = RunningMeanStd(shape=())
        stats.update(np.array(values))
        assert stats.var >= 0.0


class TestEpisode:
    def _step_args(self):
        return (np.zeros((2, 3, 3)), np.ones(9, bool), 4, -2.0, 0.5)

    def test_add_and_terminal(self):
        ep = Episode()
        ep.add_step(*self._step_args())
        ep.add_step(*self._step_args())
        ep.set_terminal_reward(-7.5)
        assert ep.length == 2
        assert ep.rewards == [0.0, -7.5]
        assert ep.total_reward == -7.5

    def test_terminal_on_empty_raises(self):
        with pytest.raises(RuntimeError):
            Episode().set_terminal_reward(1.0)


class TestGAE:
    def test_single_step(self):
        buffer = RolloutBuffer(gamma=0.9, gae_lambda=0.8)
        adv = buffer._gae(np.array([10.0]), np.array([4.0]))
        np.testing.assert_allclose(adv, [6.0])

    def test_two_step_hand_computed(self):
        buffer = RolloutBuffer(gamma=1.0, gae_lambda=1.0)
        rewards = np.array([0.0, 10.0])
        values = np.array([3.0, 5.0])
        # With gamma=lambda=1: advantage_t = sum(rewards[t:]) - values[t]
        adv = buffer._gae(rewards, values)
        np.testing.assert_allclose(adv, [7.0, 5.0])

    def test_gamma_zero_is_td0(self):
        buffer = RolloutBuffer(gamma=0.0, gae_lambda=0.95)
        rewards = np.array([1.0, 2.0, 3.0])
        values = np.array([0.5, 0.5, 0.5])
        adv = buffer._gae(rewards, values)
        np.testing.assert_allclose(adv, rewards - values)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RolloutBuffer(gamma=1.5)
        with pytest.raises(ValueError):
            RolloutBuffer(gae_lambda=-0.1)


class TestRolloutBuffer:
    def _episode(self, rewards, n_actions=6):
        ep = Episode()
        for r in rewards:
            ep.add_step(
                np.random.default_rng(0).normal(size=(1, 2, 2)),
                np.ones(n_actions, bool),
                1,
                -1.7,
                0.3,
                reward=r,
            )
        return ep

    def test_requires_episodes(self):
        with pytest.raises(RuntimeError):
            RolloutBuffer().compute()

    def test_empty_episode_rejected(self):
        with pytest.raises(ValueError):
            RolloutBuffer().add_episode(Episode())

    def test_flattening_shapes(self):
        buffer = RolloutBuffer()
        buffer.add_episode(self._episode([0.0, 0.0, -5.0]))
        buffer.add_episode(self._episode([0.0, -3.0]))
        batch = buffer.compute()
        assert batch.size == 5
        assert batch.observations.shape == (5, 1, 2, 2)
        assert batch.masks.shape == (5, 6)
        assert buffer.n_steps == 5

    def test_advantage_normalization(self):
        buffer = RolloutBuffer(normalize_advantages=True)
        buffer.add_episode(self._episode([0.0, -5.0]))
        buffer.add_episode(self._episode([0.0, -1.0]))
        batch = buffer.compute()
        assert abs(batch.advantages.mean()) < 1e-8
        assert batch.advantages.std() == pytest.approx(1.0, abs=1e-6)

    def test_intrinsic_rewards_added(self):
        buffer = RolloutBuffer(gamma=1.0, gae_lambda=1.0, normalize_advantages=False)
        episode = self._episode([0.0, -4.0])
        buffer.add_episode(episode, intrinsic_rewards=np.array([1.0, 1.0]))
        batch = buffer.compute()
        # Return at t=0 with gamma=1: sum of combined rewards = -2.0
        assert batch.returns[0] == pytest.approx(-2.0)

    def test_intrinsic_shape_mismatch(self):
        buffer = RolloutBuffer()
        with pytest.raises(ValueError):
            buffer.add_episode(
                self._episode([0.0, -1.0]), intrinsic_rewards=np.array([1.0])
            )

    def test_minibatches_cover_everything(self):
        buffer = RolloutBuffer()
        buffer.add_episode(self._episode([0.0] * 7))
        batch = buffer.compute()
        rng = np.random.default_rng(0)
        seen = 0
        for mini in batch.minibatches(3, rng):
            seen += mini.size
            assert mini.size <= 3
        assert seen == 7

    def test_clear(self):
        buffer = RolloutBuffer()
        buffer.add_episode(self._episode([0.0]))
        buffer.clear()
        assert buffer.n_steps == 0


class TestSchedule:
    def test_endpoints(self):
        assert linear_schedule(1.0, 0.0, 0.0) == 1.0
        assert linear_schedule(1.0, 0.0, 1.0) == 0.0

    def test_midpoint(self):
        assert linear_schedule(2.0, 4.0, 0.5) == pytest.approx(3.0)

    def test_clamping(self):
        assert linear_schedule(1.0, 0.0, -1.0) == 1.0
        assert linear_schedule(1.0, 0.0, 2.0) == 0.0
