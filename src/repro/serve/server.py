"""Stdlib-HTTP front end for the floorplanning service.

``ThreadingHTTPServer`` gives each request its own thread; the handler
is a thin JSON codec around one shared :class:`ServeEngine`, which is
where warmth, batching, and memoization live.  Endpoints:

========  =====================  ========================================
method    path                   body / result
========  =====================  ========================================
GET       /v1/health             liveness probe
GET       /v1/stats              engine counters (store, registry, batch)
GET       /v1/benchmarks         registered benchmark names
GET       /v1/policies           registered policy names
POST      /v1/place              {system, method, budget} -> placement
POST      /v1/evaluate           {system, placement, evaluator, budget}
POST      /v1/rollout            {policy, system, seed, greedy, budget}
POST      /v1/policies           raw ``nn/serialization`` payload bytes;
                                 ``?name=<id>&channels=16,32,32``
========  =====================  ========================================

Client errors surface as HTTP 400 with ``{"error": ...}``; unexpected
failures as 500.  NaN-bearing results (deadlocked arms) are emitted as
JSON ``NaN`` tokens, matching Python's default parser.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serve.engine import ServeEngine
from repro.serve.schema import (
    BadRequest,
    parse_evaluate_request,
    parse_place_request,
    parse_rollout_request,
)
from repro.utils import get_logger

__all__ = ["FloorplanServer", "serve_forever"]

_logger = get_logger("serve.server")

#: Refuse request bodies beyond this (a policy payload for the bundled
#: benchmarks is well under 1 MiB; this is a safety bound, not a quota).
MAX_BODY_BYTES = 64 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    # Set by FloorplanServer:
    engine: ServeEngine

    # -- plumbing -------------------------------------------------------

    def log_message(self, fmt, *args):  # route through repo logging
        _logger.debug("%s %s", self.address_string(), fmt % args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length < 0 or length > MAX_BODY_BYTES:
            raise BadRequest(f"request body too large ({length} bytes)")
        return self.rfile.read(length)

    def _read_json(self) -> dict:
        raw = self._read_body()
        try:
            return json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise BadRequest(f"request body is not valid JSON: {error}")

    def _dispatch(self, handler) -> None:
        try:
            self._send_json(200, handler())
        except BadRequest as error:
            self._send_json(400, {"error": str(error)})
        except BrokenPipeError:
            pass  # client went away; nothing to answer
        except Exception as error:  # noqa: BLE001 — boundary
            _logger.exception("request failed")
            self._send_json(
                500, {"error": f"{type(error).__name__}: {error}"}
            )

    # -- routes ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/v1/health":
            self._dispatch(lambda: {"ok": True})
        elif path == "/v1/stats":
            self._dispatch(self.engine.stats)
        elif path == "/v1/benchmarks":
            from repro.systems import benchmark_names

            self._dispatch(lambda: {"benchmarks": benchmark_names()})
        elif path == "/v1/policies":
            self._dispatch(lambda: {"policies": self.engine.policies()})
        else:
            self._send_json(404, {"error": f"no such endpoint {path!r}"})

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        path, _, query = self.path.partition("?")
        path = path.rstrip("/")
        if path == "/v1/place":
            self._dispatch(self._handle_place)
        elif path == "/v1/evaluate":
            self._dispatch(self._handle_evaluate)
        elif path == "/v1/rollout":
            self._dispatch(self._handle_rollout)
        elif path == "/v1/policies":
            self._dispatch(lambda: self._handle_register_policy(query))
        else:
            self._send_json(404, {"error": f"no such endpoint {path!r}"})

    def _handle_place(self) -> dict:
        request = parse_place_request(self._read_json())
        return self.engine.place(
            request["system"], request["method"], request["budget"]
        )

    def _handle_evaluate(self) -> dict:
        request = parse_evaluate_request(self._read_json())
        return self.engine.evaluate(
            request["system"],
            request["placement"],
            request["evaluator"],
            request["budget"],
        )

    def _handle_rollout(self) -> dict:
        request = parse_rollout_request(self._read_json())
        return self.engine.rollout(
            request["policy"],
            request["system"],
            request["seed"],
            request["greedy"],
            request["budget"],
        )

    def _handle_register_policy(self, query: str) -> dict:
        from urllib.parse import parse_qs

        params = parse_qs(query)
        name = (params.get("name") or [""])[0]
        channels_raw = (params.get("channels") or ["16,32,32"])[0]
        try:
            channels = tuple(
                int(c) for c in channels_raw.split(",") if c.strip()
            )
        except ValueError:
            raise BadRequest(f"bad channels spec {channels_raw!r}")
        return self.engine.register_policy(name, self._read_body(), channels)


class FloorplanServer:
    """Owns the listening socket, the engine, and the serving thread."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        engine: ServeEngine | None = None,
        store_dir=None,
        cache_dir=None,
        window_s: float = 0.002,
        max_batch: int = 16,
    ):
        self.engine = engine or ServeEngine(
            store_dir=store_dir,
            cache_dir=cache_dir,
            window_s=window_s,
            max_batch=max_batch,
        )
        handler = type("BoundHandler", (_Handler,), {"engine": self.engine})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple:
        """The bound ``(host, port)`` — port resolved when 0 was asked."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "FloorplanServer":
        """Serve on a daemon thread (tests/embedded use)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI entrypoint)."""
        _logger.info("serving on %s", self.url)
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:
            _logger.info("interrupted; shutting down")

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.engine.close()

    def __enter__(self) -> "FloorplanServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve_forever(
    host: str = "127.0.0.1",
    port: int = 8337,
    *,
    store_dir=None,
    cache_dir=None,
    window_s: float = 0.002,
    max_batch: int = 16,
) -> None:
    """Blocking entrypoint used by ``repro.cli serve``/``scripts/serve.py``."""
    server = FloorplanServer(
        host,
        port,
        store_dir=store_dir,
        cache_dir=cache_dir,
        window_s=window_s,
        max_batch=max_batch,
    )
    print(f"floorplan service listening on {server.url}")
    try:
        server.serve_forever()
    finally:
        server.close()
