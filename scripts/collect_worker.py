"""Remote episode-collection worker: serve slices to a coordinator.

Run one of these per core on any machine that can reach a training
run's collection coordinator (``TrainerConfig.collect_workers >= 1``
binds it at ``collect_bind``; the trainer logs — and
``RLPlannerTrainer.collector_address`` exposes — the actual address)::

    PYTHONPATH=src python scripts/collect_worker.py \
        --connect 192.168.1.10:7777 --worker-id rack2-core0

The worker registers under a time-bounded lease, heartbeats, builds its
environment+network replica from the coordinator's init payload, and
serves wave-aligned episode slices.  Every transport failure —
connection refused, reset, checksum mismatch, a fenced lease after a
network partition — triggers a reconnect with seeded exponential
backoff; the slices it was serving are re-dispatched by the coordinator
and, being pure functions of (weight bytes, per-episode seed streams),
reproduce bitwise wherever they land.

``--persist`` keeps the worker alive across coordinator shutdowns (a
fleet worker serving many successive training runs); without it a
clean coordinator shutdown exits 0.

Exit codes: 0 = clean shutdown / signal; 1 = reconnect budget
(``--max-reconnects``) exhausted.
"""

import argparse
import signal
import sys
import threading

from repro.parallel.faults import RetryPolicy
from repro.parallel.remote import run_worker
from repro.utils import get_logger

_logger = get_logger("scripts.collect_worker")


def parse_args(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address (TrainerConfig.collect_bind's "
        "resolved host:port)",
    )
    parser.add_argument(
        "--worker-id",
        default=None,
        help="stable name for logs and backoff seeding "
        "(default: <hostname>-<pid>)",
    )
    parser.add_argument(
        "--max-reconnects",
        type=int,
        default=None,
        metavar="N",
        help="give up after N consecutive failed connection attempts "
        "(default: retry forever — a fleet worker outlives trainer "
        "restarts)",
    )
    parser.add_argument(
        "--persist",
        action="store_true",
        help="reconnect even after a clean coordinator shutdown "
        "(serve successive training runs)",
    )
    parser.add_argument(
        "--backoff-base",
        type=float,
        default=0.25,
        help="initial reconnect backoff in seconds",
    )
    parser.add_argument(
        "--backoff-max",
        type=float,
        default=30.0,
        help="reconnect backoff ceiling in seconds",
    )
    parser.add_argument(
        "--backoff-seed",
        type=int,
        default=0,
        help="seed for the deterministic backoff jitter",
    )
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        print(
            f"--connect must be HOST:PORT, got {args.connect!r}",
            file=sys.stderr,
        )
        return 2
    policy = RetryPolicy(
        backoff_base=args.backoff_base,
        backoff_max=args.backoff_max,
        seed=args.backoff_seed,
    )
    stop = threading.Event()

    def handle_signal(signum, frame):
        _logger.info("signal %d: shutting down", signum)
        stop.set()

    signal.signal(signal.SIGINT, handle_signal)
    signal.signal(signal.SIGTERM, handle_signal)
    try:
        return run_worker(
            host,
            int(port),
            worker_id=args.worker_id,
            policy=policy,
            max_reconnects=args.max_reconnects,
            persist=args.persist,
            stop_event=stop,
        )
    except OSError as error:
        _logger.error("worker gave up: %r", error)
        return 1


if __name__ == "__main__":
    sys.exit(main())
