"""Wall-clock timing helpers used by the experiment harness.

The paper reports runtimes for every method in Table I; these helpers give
a uniform way to measure and accumulate those times.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Timer", "timed"]


@dataclass
class Timer:
    """Accumulating stopwatch.

    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    laps: list = field(default_factory=list)
    _start: float | None = None

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError("Timer already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer not running")
        lap = time.perf_counter() - self._start
        self._start = None
        self.elapsed += lap
        self.laps.append(lap)
        return lap

    def reset(self) -> None:
        self.elapsed = 0.0
        self.laps.clear()
        self._start = None

    @property
    def mean_lap(self) -> float:
        """Average duration of completed laps (0.0 when none)."""
        return self.elapsed / len(self.laps) if self.laps else 0.0

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


@contextmanager
def timed(sink: dict, key: str):
    """Context manager that adds the elapsed seconds to ``sink[key]``.

    >>> stats = {}
    >>> with timed(stats, "solve"):
    ...     pass
    >>> stats["solve"] >= 0.0
    True
    """
    start = time.perf_counter()
    try:
        yield
    finally:
        sink[key] = sink.get(key, 0.0) + (time.perf_counter() - start)
