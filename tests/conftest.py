"""Shared fixtures: a small, fast thermal setup reused across test modules.

The production defaults (64x64 grid, 7x7 characterization) are exercised
by the benchmarks; tests run a coarser configuration so the whole suite
stays fast while covering identical code paths.
"""

import pytest

from repro.chiplet import Chiplet, ChipletSystem, Interposer, Net
from repro.thermal import (
    FastThermalModel,
    GridThermalSolver,
    ThermalConfig,
    characterize_tables,
)


@pytest.fixture(scope="session")
def small_interposer():
    return Interposer(30.0, 30.0)


@pytest.fixture(scope="session")
def small_config():
    return ThermalConfig(rows=32, cols=32, package_margin=8.0)


@pytest.fixture(scope="session")
def small_solver(small_interposer, small_config):
    return GridThermalSolver(
        small_interposer, small_config, reuse_factorization=True
    )


@pytest.fixture(scope="session")
def small_system(small_interposer):
    return ChipletSystem(
        "small",
        small_interposer,
        (
            Chiplet("hot", 8.0, 8.0, 60.0, kind="gpu"),
            Chiplet("warm", 6.0, 6.0, 15.0, kind="cpu"),
            Chiplet("cold", 4.0, 6.0, 3.0, kind="io"),
        ),
        (
            Net("hot", "warm", wires=512, name="hw"),
            Net("warm", "cold", wires=128, name="wc"),
        ),
    )


@pytest.fixture(scope="session")
def small_tables(small_interposer, small_config, small_solver, small_system):
    sizes = []
    for chiplet in small_system.chiplets:
        sizes.append((chiplet.width, chiplet.height))
        if chiplet.rotatable:
            sizes.append((chiplet.height, chiplet.width))
    return characterize_tables(
        small_interposer,
        sizes,
        small_config,
        position_samples=(5, 5),
        solver=small_solver,
    )


@pytest.fixture(scope="session")
def small_fast_model(small_tables, small_config):
    return FastThermalModel(small_tables, small_config)
