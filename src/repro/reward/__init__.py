"""Thermal-aware floorplanning reward (the paper's Section II-C)."""

from repro.reward.reward import RewardConfig, RewardCalculator, RewardBreakdown

__all__ = ["RewardConfig", "RewardCalculator", "RewardBreakdown"]
