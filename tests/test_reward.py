"""Tests for the joint wirelength/temperature reward."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.chiplet import Placement
from repro.reward import RewardCalculator, RewardConfig


class TestRewardConfig:
    def test_penalty_zero_below_limit(self):
        config = RewardConfig(t_limit=85.0)
        assert config.thermal_penalty(60.0) == 0.0
        assert config.thermal_penalty(85.0) == 0.0

    def test_penalty_positive_above_limit(self):
        config = RewardConfig(t_limit=85.0, alpha=1.0)
        assert config.thermal_penalty(90.0) > 0.0

    def test_penalty_formula(self):
        config = RewardConfig(t_limit=85.0, alpha=1.0, mu=1.0)
        t = 91.15
        expected = (t - 85.0) / (1.0 + math.exp(-(t - 85.0)))
        assert config.thermal_penalty(t) == pytest.approx(expected)

    def test_alpha_shapes_growth(self):
        soft = RewardConfig(t_limit=85.0, alpha=0.5)
        hard = RewardConfig(t_limit=85.0, alpha=2.0)
        assert hard.thermal_penalty(95.0) > soft.thermal_penalty(95.0)

    def test_combine_weights(self):
        config = RewardConfig(lambda_wl=1e-3, mu=2.0, t_limit=85.0, alpha=1.0)
        r = config.combine(10_000.0, 80.0)
        assert r == pytest.approx(-10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RewardConfig(lambda_wl=-1.0)
        with pytest.raises(ValueError):
            RewardConfig(alpha=0.0)

    @given(t=st.floats(0.0, 200.0, allow_nan=False))
    def test_penalty_nonnegative_and_monotone(self, t):
        config = RewardConfig(t_limit=85.0, alpha=1.0)
        p1 = config.thermal_penalty(t)
        p2 = config.thermal_penalty(t + 1.0)
        assert p1 >= 0.0
        assert p2 >= p1

    @given(
        w=st.floats(0.0, 1e6, allow_nan=False),
        t=st.floats(0.0, 150.0, allow_nan=False),
    )
    def test_reward_never_positive(self, w, t):
        config = RewardConfig()
        assert config.combine(w, t) <= 0.0

    def test_penalty_continuous_at_limit(self):
        config = RewardConfig(t_limit=85.0, alpha=1.0)
        eps = 1e-6
        assert config.thermal_penalty(85.0 + eps) == pytest.approx(0.0, abs=1e-5)


class TestRewardCalculator:
    def _legal_placement(self, system):
        p = Placement(system)
        p.place("hot", 1, 1)
        p.place("warm", 1, 20)
        p.place("cold", 20, 1)
        return p

    def test_breakdown_fields(self, small_system, small_fast_model):
        calc = RewardCalculator(small_fast_model)
        breakdown = calc.evaluate(self._legal_placement(small_system))
        assert breakdown.reward <= 0.0
        assert breakdown.wirelength > 0.0
        assert breakdown.max_temperature_c > 45.0
        assert breakdown.elapsed >= 0.0
        assert calc.evaluation_count == 1

    def test_estimator_mode_faster_same_sign(self, small_system, small_fast_model):
        placement = self._legal_placement(small_system)
        assigned = RewardCalculator(
            small_fast_model, RewardConfig(use_bump_assignment=True)
        ).evaluate(placement)
        estimated = RewardCalculator(
            small_fast_model, RewardConfig(use_bump_assignment=False)
        ).evaluate(placement)
        assert estimated.reward <= 0.0
        # Same temperature either way; wirelength differs by bounded factor.
        assert estimated.max_temperature_c == pytest.approx(
            assigned.max_temperature_c
        )
        assert 0.3 < estimated.wirelength / assigned.wirelength < 3.0

    def test_solver_and_fast_model_agree(
        self, small_system, small_solver, small_fast_model
    ):
        placement = self._legal_placement(small_system)
        r_ref = RewardCalculator(small_solver).evaluate(placement)
        r_fast = RewardCalculator(small_fast_model).evaluate(placement)
        assert r_fast.max_temperature_c == pytest.approx(
            r_ref.max_temperature_c, abs=1.5
        )
        assert r_fast.wirelength == pytest.approx(r_ref.wirelength)

    def test_spread_placement_cooler_than_clustered(
        self, small_system, small_fast_model
    ):
        """Moving neighbours away from the hot die must cool it down."""
        calc = RewardCalculator(small_fast_model)
        clustered = Placement(small_system)
        clustered.place("hot", 11, 11)
        clustered.place("warm", 19.2, 11)
        clustered.place("cold", 11, 19.2)
        spread = Placement(small_system)
        spread.place("hot", 11, 11)
        spread.place("warm", 24, 0)
        spread.place("cold", 0, 24)
        t_clustered = calc.evaluate(clustered).max_temperature_c
        t_spread = calc.evaluate(spread).max_temperature_c
        assert t_clustered > t_spread
