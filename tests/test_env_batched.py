"""Tests for the lockstep batched environment and its vectorized layers.

The load-bearing property throughout: everything the batched path
produces (masks, observations, placements) is *identical* to running the
episodes one at a time through the sequential environment — batching is
an execution strategy, not a behavior change.  Terminal rewards go
through the vectorized thermal evaluator and are compared with a tight
numerical tolerance instead of bitwise.
"""

import numpy as np
import pytest

from repro.agent import ActorCritic
from repro.chiplet import Chiplet, ChipletSystem, Interposer
from repro.env import (
    BatchedFloorplanEnv,
    EnvConfig,
    FloorplanEnv,
    ObservationBuilder,
    feasible_cells,
    feasible_cells_batch,
)
from repro.geometry import PlacementGrid, Rect
from repro.reward import RewardCalculator, RewardConfig
from repro.systems import synthetic_system


@pytest.fixture
def calc(small_fast_model):
    return RewardCalculator(
        small_fast_model, RewardConfig(lambda_wl=1e-4, use_bump_assignment=False)
    )


@pytest.fixture
def benv(small_system, calc):
    return BatchedFloorplanEnv(small_system, calc, EnvConfig(grid_size=15))


def _random_rects(rng, n_rects, extent=30.0):
    rects = []
    for _ in range(n_rects):
        w = float(rng.uniform(2.0, 12.0))
        h = float(rng.uniform(2.0, 12.0))
        x = float(rng.uniform(-2.0, extent - 2.0))
        y = float(rng.uniform(-2.0, extent - 2.0))
        rects.append(Rect(x, y, w, h))
    return rects


class TestFeasibleCellsBatch:
    def test_matches_sequential_on_random_inputs(self):
        """Property: batched output == per-episode output, cell for cell."""
        rng = np.random.default_rng(0)
        for _ in range(25):
            rows = int(rng.integers(4, 20))
            cols = int(rng.integers(4, 20))
            grid = PlacementGrid(30.0, 30.0, rows, cols)
            die_w = float(rng.uniform(1.0, 20.0))
            die_h = float(rng.uniform(1.0, 20.0))
            spacing = float(rng.uniform(0.0, 1.0))
            placed_lists = [
                _random_rects(rng, int(rng.integers(0, 5)))
                for _ in range(int(rng.integers(1, 7)))
            ]
            batched = feasible_cells_batch(
                grid, die_w, die_h, placed_lists, spacing
            )
            for i, placed in enumerate(placed_lists):
                expected = feasible_cells(grid, die_w, die_h, placed, spacing)
                assert np.array_equal(batched[i], expected)

    def test_matches_sequential_on_random_systems(self):
        """Same property driven by real synthetic-system footprints."""
        for seed in range(5):
            system = synthetic_system(seed=seed)
            grid = PlacementGrid(
                system.interposer.width, system.interposer.height, 16, 16
            )
            rng = np.random.default_rng(seed)
            spacing = system.interposer.min_spacing
            placed_lists = []
            for _ in range(4):
                chosen = [
                    c
                    for c in system.chiplets
                    if rng.random() < 0.6
                ]
                placed_lists.append(
                    [
                        c.footprint(
                            float(rng.uniform(0, grid.width - c.width)),
                            float(rng.uniform(0, grid.height - c.height)),
                        )
                        for c in chosen
                    ]
                )
            die = system.chiplets[0]
            batched = feasible_cells_batch(
                grid, die.width, die.height, placed_lists, spacing
            )
            for i, placed in enumerate(placed_lists):
                expected = feasible_cells(
                    grid, die.width, die.height, placed, spacing
                )
                assert np.array_equal(batched[i], expected)

    def test_empty_batch(self):
        grid = PlacementGrid(30.0, 30.0, 8, 8)
        assert feasible_cells_batch(grid, 5.0, 5.0, []).shape == (0, 8, 8)

    def test_oversized_die_all_infeasible(self):
        grid = PlacementGrid(30.0, 30.0, 8, 8)
        masks = feasible_cells_batch(grid, 31.0, 5.0, [[], []])
        assert masks.shape == (2, 8, 8)
        assert not masks.any()


class TestBatchedEnvEquivalence:
    def _rollout_pair(self, system, calc, config, n_episodes, seed):
        """Step a batched env and n sequential envs with the same actions."""
        rng = np.random.default_rng(seed)
        batched = BatchedFloorplanEnv(system, calc, config)
        sequential = [
            FloorplanEnv(system, calc, config) for _ in range(n_episodes)
        ]
        obs_b, masks_b = batched.reset(n_episodes)
        seq_state = [env.reset() for env in sequential]
        seq_done = [False] * n_episodes
        seq_rewards = [None] * n_episodes
        batch_rewards = [None] * n_episodes

        while True:
            live = batched.live_indices
            if len(live) == 0:
                break
            actions = []
            for row, index in enumerate(live):
                # Same observation and mask as the sequential twin.
                obs_s, mask_s = seq_state[index]
                assert np.array_equal(obs_b[row], obs_s)
                assert np.array_equal(masks_b[row], mask_s)
                actions.append(int(rng.choice(np.flatnonzero(masks_b[row]))))
            result = batched.step(np.array(actions))
            for row, index in enumerate(live):
                step = sequential[index].step(actions[row])
                if step.done:
                    seq_done[index] = True
                    seq_rewards[index] = (step.reward, step.info)
                else:
                    seq_state[index] = (step.observation, step.mask)
            for index, reward, info in result.finished:
                batch_rewards[index] = (reward, info)
            obs_b, masks_b = result.observations, result.masks

        assert all(seq_done)
        for index in range(n_episodes):
            b_reward, b_info = batch_rewards[index]
            s_reward, s_info = seq_rewards[index]
            # Terminal rewards: vectorized vs scalar thermal evaluation.
            assert b_reward == pytest.approx(s_reward, rel=1e-9, abs=1e-9)
            assert b_info.get("deadlock") == s_info.get("deadlock")
            assert (
                b_info["placement"].positions == s_info["placement"].positions
            )

    def test_lockstep_matches_sequential(self, small_system, calc):
        self._rollout_pair(
            small_system, calc, EnvConfig(grid_size=15), n_episodes=5, seed=3
        )

    def test_lockstep_matches_sequential_with_rotation(
        self, small_system, calc
    ):
        self._rollout_pair(
            small_system,
            calc,
            EnvConfig(grid_size=12, allow_rotation=True),
            n_episodes=4,
            seed=11,
        )

    def test_observations_match_stateless_builder(self, small_system, calc):
        """The incremental channels equal a from-scratch build_batch."""
        env = BatchedFloorplanEnv(small_system, calc, EnvConfig(grid_size=15))
        rng = np.random.default_rng(7)
        obs, masks = env.reset(4)
        while True:
            live = env.live_indices
            if len(live) == 0:
                break
            reference = env.observation_builder.build_batch(
                [env._placements[i] for i in live], env.current_chiplet_name
            )
            assert np.array_equal(obs, reference)
            for row, i in enumerate(live):
                single = env.observation_builder.build(
                    env._placements[i], env.current_chiplet_name
                )
                assert np.array_equal(obs[row], single)
            actions = [
                int(rng.choice(np.flatnonzero(masks[row])))
                for row in range(len(live))
            ]
            result = env.step(np.array(actions))
            obs, masks = result.observations, result.masks


class TestMaskedSampling:
    def test_masked_action_never_sampled(self, small_system, calc):
        """100 random batched steps never emit a masked action."""
        env = BatchedFloorplanEnv(small_system, calc, EnvConfig(grid_size=12))
        net = ActorCritic(
            env.observation_shape,
            env.n_actions,
            channels=(4, 4, 4),
            rng=np.random.default_rng(0),
        )
        rngs = [np.random.default_rng(100 + i) for i in range(6)]
        static = env.observation_builder.STATIC_CHANNELS
        steps = 0
        obs, masks = env.reset(6)
        while steps < 100:
            live = env.live_indices
            if len(live) == 0:
                obs, masks = env.reset(6)
                live = env.live_indices
            actions, log_probs, values = net.act_batch(
                obs,
                masks,
                [rngs[i] for i in live],
                static_channels=static,
            )
            for row in range(len(live)):
                assert masks[row, actions[row]], "sampled a masked action"
                assert log_probs[row] <= 0.0
                assert np.isfinite(values[row])
            result = env.step(actions)
            obs, masks = result.observations, result.masks
            steps += 1


class TestBatchedEnvEdgeCases:
    def test_step_before_reset(self, small_system, calc):
        env = BatchedFloorplanEnv(small_system, calc, EnvConfig(grid_size=10))
        with pytest.raises(RuntimeError):
            env.step(np.array([0]))

    def test_reset_validates_count(self, benv):
        with pytest.raises(ValueError):
            benv.reset(0)

    def test_wrong_action_count(self, benv):
        benv.reset(3)
        with pytest.raises(ValueError, match="actions"):
            benv.step(np.array([0, 0]))

    def test_out_of_range_action(self, benv):
        benv.reset(2)
        with pytest.raises(ValueError, match="range"):
            benv.step(np.array([0, benv.n_actions]))

    def test_masked_action_rejected(self, benv):
        _, masks = benv.reset(2)
        infeasible = np.flatnonzero(~masks[1])
        if len(infeasible):
            feasible = int(np.flatnonzero(masks[0])[0])
            with pytest.raises(ValueError, match="masked"):
                benv.step(np.array([feasible, int(infeasible[0])]))

    def test_partial_deadlock_keeps_batch_running(self, small_interposer):
        """One episode deadlocks; the others keep stepping."""
        system = ChipletSystem(
            "dead",
            small_interposer,
            (
                Chiplet("big", 28.0, 14.0, 1.0),
                Chiplet("wide", 28.0, 14.0, 1.0),
            ),
        )
        env = BatchedFloorplanEnv(
            system, _StubCalculator(), EnvConfig(grid_size=10)
        )
        obs, masks = env.reset(3)
        grid = env.grid
        # Episode 0 places mid-height (starves the second die); episodes
        # 1 and 2 place at the bottom edge (leaves room above).
        deadlocking = grid.flat_index(3, 0)
        safe = grid.flat_index(0, 0)
        assert masks[0, deadlocking] and masks[1, safe]
        result = env.step(np.array([deadlocking, safe, safe]))
        assert len(result.finished) == 1
        index, reward, info = result.finished[0]
        assert index == 0
        assert info["deadlock"]
        assert info["unplaceable"] == "wide"
        assert reward == env.config.deadlock_penalty
        assert list(result.live_indices) == [1, 2]
        # Survivors finish with real terminal evaluations.
        final = env.step(
            np.array(
                [
                    int(np.flatnonzero(result.masks[row])[0])
                    for row in range(2)
                ]
            )
        )
        assert final.all_done
        assert len(final.finished) == 2
        assert all("breakdown" in info for _, _, info in final.finished)


class _StubCalculator:
    """Terminal evaluator that never touches thermal tables."""

    def evaluate(self, placement):
        from repro.reward import RewardBreakdown

        return RewardBreakdown(
            reward=-1.0,
            wirelength=0.0,
            max_temperature_c=0.0,
            thermal_penalty=0.0,
        )

    def evaluate_batch(self, placements):
        return [self.evaluate(p) for p in placements]


class TestObservationBuilderBatch:
    def test_build_batch_matches_build(self, small_system):
        grid = PlacementGrid(30, 30, 15, 15)
        builder = ObservationBuilder(small_system, grid)
        rng = np.random.default_rng(5)
        from repro.chiplet import Placement

        placements = []
        for _ in range(4):
            p = Placement(small_system)
            for name in ("hot", "warm"):
                if rng.random() < 0.8:
                    c = small_system.chiplet(name)
                    p.place(
                        name,
                        float(rng.uniform(0, 30 - c.width)),
                        float(rng.uniform(0, 30 - c.height)),
                    )
            placements.append(p)
        stacked = builder.build_batch(placements, "cold")
        for i, p in enumerate(placements):
            assert np.array_equal(stacked[i], builder.build(p, "cold"))

    def test_static_channels_are_batch_constant(self, small_system, calc):
        env = BatchedFloorplanEnv(small_system, calc, EnvConfig(grid_size=12))
        obs, masks = env.reset(4)
        rng = np.random.default_rng(2)
        while True:
            live = env.live_indices
            if len(live) == 0:
                break
            for channel in ObservationBuilder.STATIC_CHANNELS:
                for row in range(1, len(live)):
                    assert np.array_equal(obs[row, channel], obs[0, channel])
            actions = [
                int(rng.choice(np.flatnonzero(masks[row])))
                for row in range(len(live))
            ]
            result = env.step(np.array(actions))
            obs, masks = result.observations, result.masks
