"""Observation encoding: the state image fed to the CNN agent.

Channels (all on the placement grid, values in [0, 1]):

0. occupancy  — cell coverage of the placed dies
1. power      — power density of placed dies, normalized by the system max
2. connect    — coverage of placed dies that share a net with the die
                being placed, weighted by relative wire count
3. width      — constant: current die width / interposer width
4. height     — constant: current die height / interposer height
5. density    — constant: current die power density / system max
6. progress   — constant: fraction of dies already placed
"""

from __future__ import annotations

import numpy as np

from repro.chiplet import ChipletSystem, Placement
from repro.geometry import PlacementGrid

__all__ = ["ObservationBuilder"]


class ObservationBuilder:
    """Builds (C, rows, cols) observation tensors for one system."""

    N_CHANNELS = 7

    def __init__(self, system: ChipletSystem, grid: PlacementGrid):
        self.system = system
        self.grid = grid
        self._max_density = max(c.power_density for c in system.chiplets)
        self._max_wires = max((n.wires for n in system.nets), default=1)

    @property
    def shape(self) -> tuple:
        return (self.N_CHANNELS, self.grid.rows, self.grid.cols)

    def build(self, placement: Placement, current_name: str) -> np.ndarray:
        """Observation for choosing where to put ``current_name``."""
        grid = self.grid
        obs = np.zeros(self.shape, dtype=np.float64)
        current = self.system.chiplet(current_name)

        # Wire counts between the current die and every placed die.
        wires_to_current = {}
        for net in self.system.nets_of(current_name):
            other = net.other(current_name)
            wires_to_current[other] = wires_to_current.get(other, 0) + net.wires

        for name in placement.placed_names:
            rect = placement.footprint(name)
            cover = grid.coverage(rect)
            obs[0] = np.maximum(obs[0], cover)
            chiplet = self.system.chiplet(name)
            obs[1] = np.maximum(
                obs[1], cover * (chiplet.power_density / self._max_density)
            )
            wires = wires_to_current.get(name, 0)
            if wires:
                obs[2] = np.maximum(obs[2], cover * (wires / self._max_wires))

        obs[3] = current.width / grid.width
        obs[4] = current.height / grid.height
        obs[5] = current.power_density / self._max_density
        obs[6] = len(placement.placed_names) / self.system.n_chiplets
        return obs
