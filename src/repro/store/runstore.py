"""Content-addressed run store: results + checkpoints for resumable runs.

The store gives every long-running unit of work (a (benchmark x method)
experiment arm, an ablation variant, a Table II dataset shard) a stable
**content-addressed key** — the SHA-256 of a canonical encoding of
``(job kind, payload, STORE_SCHEMA_VERSION)`` — and two slots per key:

* a **result** slot, published exactly once when the unit completes
  (the scheduler consults it before dispatching, so finished work is
  never re-executed on a ``--resume``);
* a **checkpoint** slot, overwritten periodically while the unit runs
  (an interrupted unit restarts from its latest checkpoint with
  bitwise-identical final output, and the slot is cleared on
  completion).

Both slots use the :mod:`repro.parallel.cache` discipline — a sidecar
:class:`~repro.parallel.cache.FileLock` around writes and
write-temp-then-``os.replace`` publication — so any number of worker
processes can share one store directory: readers see a complete
artifact or none, never a torn one.

Cache invalidation is by key construction: a changed budget, seed,
benchmark definition or ``STORE_SCHEMA_VERSION`` produces a different
key, so stale artifacts are simply never addressed again (and can be
garbage-collected by deleting the store directory).

Layout on disk::

    <root>/results/<key[:2]>/<key>.pkl
    <root>/checkpoints/<key[:2]>/<key>.ckpt.pkl
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pickle
import threading
from pathlib import Path

from repro.parallel import chaos
from repro.parallel.cache import FileLock, atomic_replace
from repro.utils import get_logger

_logger = get_logger("store.runstore")

__all__ = ["DEFAULT_STORE_DIR", "RunStore", "STORE_SCHEMA_VERSION", "store_key"]

#: Bump on any change that silently alters what a stored result means
#: (reward semantics, budget interpretation, checkpoint payloads...).
#: Every key mixes it in, so a bump orphans — rather than corrupts —
#: existing artifacts.
STORE_SCHEMA_VERSION = 1

DEFAULT_STORE_DIR = Path(".cache/runstore")

_MISS = object()


def _canonical(value):
    """Reduce ``value`` to a JSON-stable structure for hashing.

    Dicts sort by key, tuples become lists, floats become their exact
    hex spellings (``repr`` round-trips too, but hex is unambiguous
    across formatting changes), dataclasses become field dicts.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _canonical(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return float(value).hex()
    if isinstance(value, Path):
        return str(value)
    raise TypeError(
        f"store key payloads must be JSON-like, got {type(value).__name__}"
    )


def store_key(kind: str, payload: dict) -> str:
    """Stable content-addressed key for ``(kind, payload)``.

    Equal payloads (up to tuple/list and dict ordering) hash equally on
    every platform and process; any semantic difference — including a
    ``STORE_SCHEMA_VERSION`` bump — yields a fresh key.
    """
    document = {
        "schema": STORE_SCHEMA_VERSION,
        "kind": str(kind),
        "payload": _canonical(payload),
    }
    encoded = json.dumps(
        document, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()


class RunStore:
    """Content-addressed artifact cache rooted at one directory.

    Safe for concurrent use from multiple processes (each builds its own
    instance over the shared root) and from multiple threads of one
    process (the serve layer shares one instance across request
    threads).  ``hits``/``misses`` count this instance's result
    lookups — the accounting the resume tests assert on ("a completed
    sweep re-executes zero arms") — behind a lock, since ``+= 1`` on a
    plain attribute is not atomic across threads.
    """

    def __init__(self, root=DEFAULT_STORE_DIR):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self._counter_lock = threading.Lock()

    # -- paths ----------------------------------------------------------

    def result_path(self, key: str) -> Path:
        return self.root / "results" / key[:2] / f"{key}.pkl"

    def checkpoint_path(self, key: str) -> Path:
        return self.root / "checkpoints" / key[:2] / f"{key}.ckpt.pkl"

    # -- results --------------------------------------------------------

    def contains(self, key: str) -> bool:
        return self.result_path(key).exists()

    def fetch(self, key: str) -> tuple:
        """``(hit, value)`` — distinguishes a stored ``None`` from a miss."""
        value = self._read(self.result_path(key))
        if value is _MISS:
            with self._counter_lock:
                self.misses += 1
            return False, None
        with self._counter_lock:
            self.hits += 1
        return True, value

    def get(self, key: str, default=None):
        hit, value = self.fetch(key)
        return value if hit else default

    def counters(self) -> tuple:
        """Consistent ``(hits, misses)`` snapshot across threads."""
        with self._counter_lock:
            return self.hits, self.misses

    def put(self, key: str, value) -> None:
        """Publish a completed result (atomic; last writer wins)."""
        self._write(self.result_path(key), value)

    # -- checkpoints ----------------------------------------------------

    def save_checkpoint(self, key: str, payload) -> None:
        """Overwrite the key's in-flight checkpoint (atomic)."""
        self._write(self.checkpoint_path(key), payload)

    def load_checkpoint(self, key: str, default=None):
        value = self._read(self.checkpoint_path(key))
        return default if value is _MISS else value

    def clear_checkpoint(self, key: str) -> None:
        """Drop the in-flight checkpoint (the unit completed)."""
        path = self.checkpoint_path(key)
        if not path.exists():
            return  # nothing to clear; don't litter lock files
        with FileLock(path.with_name(path.name + ".lock")):
            path.unlink(missing_ok=True)

    # -- plumbing -------------------------------------------------------

    @staticmethod
    def _read(path: Path):
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return _MISS
        try:
            return pickle.loads(blob)
        except Exception:
            # Truncated/corrupt artifact (torn disk, killed writer on a
            # filesystem without atomic replace...).  Quarantine it —
            # rename to ``*.corrupt`` so it stops being addressed and
            # stays around for a post-mortem — and report a miss: the
            # unit simply re-runs, which is always safe (results are
            # pure functions of their key).
            RunStore._quarantine(path)
            return _MISS

    @staticmethod
    def _quarantine(path: Path) -> None:
        target = path.with_name(path.name + ".corrupt")
        with FileLock(path.with_name(path.name + ".lock")):
            try:
                path.replace(target)
            except FileNotFoundError:
                return  # another reader quarantined it first
        _logger.warning(
            "quarantined corrupt store artifact %s -> %s; treating as a "
            "miss (the unit will re-run)",
            path,
            target.name,
        )

    @staticmethod
    def _write(path: Path, value) -> None:
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        chaos.maybe_fail("store.write", path.name)
        with FileLock(path.with_name(path.name + ".lock")):
            with atomic_replace(path) as tmp:
                tmp.write_bytes(blob)
