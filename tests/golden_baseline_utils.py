"""Fixed scenario shared by the golden-baselines test and its generator.

The golden regression (``tests/data/golden_baselines.json``) pins the
single-chain search baselines — the generic SA engine, TAP-2.5D (on the
fast thermal model *and* on the ground-truth grid solver), the B*-tree
annealer and random search — to the exact results the pre-refactor
(sequential, one-evaluation-per-proposal) engines produced.  The
multi-chain/batched engines added in PR 2 must leave the ``n_chains=1``
path bit-for-bit intact; this golden is what enforces that.  The
``tap25d_hotspot`` record was generated *before* the multi-RHS solver
refactor (PR 3), so it additionally proves the unified ``splu``
codepath reproduces the legacy ``spsolve`` solves bit-for-bit through a
whole annealing run.

Floats are stored via ``float.hex()`` so the comparison is bitwise, not
approximate.  Both the checked-in generator
(``scripts/gen_golden_baselines.py``) and the regression test import
this module so the scenario can never drift between them.
"""

from __future__ import annotations

from repro.baselines import (
    BStarConfig,
    BStarFloorplanner,
    SAConfig,
    SimulatedAnnealing,
    TAP25DConfig,
    TAP25DPlacer,
    random_search,
)
from repro.reward import RewardCalculator, RewardConfig
from repro.thermal import (
    FastThermalModel,
    GridThermalSolver,
    ThermalConfig,
    characterize_tables,
)

from golden_utils import build_golden_system

GOLDEN_BASELINES_PATH = "tests/data/golden_baselines.json"


def build_golden_calculator() -> RewardCalculator:
    """Fast-model reward calculator over the golden three-die system."""
    system = build_golden_system()
    config = ThermalConfig(rows=32, cols=32, package_margin=8.0)
    sizes = []
    for chiplet in system.chiplets:
        sizes.append((chiplet.width, chiplet.height))
        if chiplet.rotatable:
            sizes.append((chiplet.height, chiplet.width))
    tables = characterize_tables(
        system.interposer, sizes, config, position_samples=(5, 5)
    )
    calc = RewardCalculator(
        FastThermalModel(tables, config),
        RewardConfig(lambda_wl=1e-4, use_bump_assignment=False),
    )
    calc.system = system
    return calc


def build_golden_hotspot_calculator() -> RewardCalculator:
    """Grid-solver reward calculator over the golden three-die system.

    The HotSpot-arm twin of :func:`build_golden_calculator`: same system
    and reward weights, but the thermal evaluator is the ground-truth
    :class:`GridThermalSolver` with per-call factorization — exactly how
    the experiment harness builds the ``TAP-2.5D(HotSpot)`` arm.  The
    grid is kept coarse so the golden run stays cheap; the solver code
    path is identical at any resolution.
    """
    system = build_golden_system()
    config = ThermalConfig(rows=16, cols=16, package_margin=8.0)
    calc = RewardCalculator(
        GridThermalSolver(system.interposer, config),
        RewardConfig(lambda_wl=1e-4, use_bump_assignment=False),
    )
    calc.system = system
    return calc


def _toy_propose(state, rng, progress):
    return state + rng.normal(0.0, 1.0 * (1.0 - 0.9 * progress))


def _toy_evaluate(state):
    return (state - 3.0) ** 2


def run_golden_baselines(calculator: RewardCalculator | None = None) -> dict:
    """Run every single-chain baseline; distill bitwise-comparable records."""
    calc = calculator or build_golden_calculator()
    system = calc.system

    sa = SimulatedAnnealing(
        _toy_propose, _toy_evaluate, SAConfig(n_iterations=400, seed=7)
    )
    sa_result = sa.run(initial_state=-8.0)

    tap = TAP25DPlacer(
        system, calc, TAP25DConfig(n_iterations=150, seed=3)
    ).run()
    hotspot_calc = build_golden_hotspot_calculator()
    tap_hotspot = TAP25DPlacer(
        hotspot_calc.system, hotspot_calc, TAP25DConfig(n_iterations=40, seed=3)
    ).run()
    bstar = BStarFloorplanner(
        system, calc, BStarConfig(n_iterations=100, seed=3)
    ).run()
    rand = random_search(system, calc, n_samples=12, seed=3)

    def placer_record(result) -> dict:
        return {
            "reward": float(result.reward).hex(),
            "wirelength": float(result.breakdown.wirelength).hex(),
            "temperature_c": float(result.breakdown.max_temperature_c).hex(),
            "n_evaluations": result.n_evaluations,
            "placement": result.placement.as_dict(),
            "history_len": len(result.history or []),
            "final_best_cost": (
                float(result.history[-1]["best_cost"]).hex()
                if len(result.history or [])
                else None
            ),
        }

    return {
        "sa_toy": {
            "best_state": float(sa_result.best_state).hex(),
            "best_cost": float(sa_result.best_cost).hex(),
            "n_evaluations": sa_result.n_evaluations,
            "n_accepted": sa_result.n_accepted,
            "history_len": len(sa_result.history),
        },
        "tap25d": placer_record(tap),
        "tap25d_hotspot": placer_record(tap_hotspot),
        "bstar": placer_record(bstar),
        "random_search": {
            "reward": float(rand.reward).hex(),
            "n_evaluations": rand.n_evaluations,
            "placement": rand.placement.as_dict(),
        },
    }
