"""Tests for the fast thermal model and its characterization."""

import numpy as np
import pytest

from repro.chiplet import Chiplet, ChipletSystem, Interposer, Placement
from repro.thermal import (
    FastThermalModel,
    GridThermalSolver,
    ResistanceTables,
    ThermalConfig,
    characterize_tables,
    error_metrics,
)
from repro.thermal.characterize import (
    characterize_for_system,
    load_or_characterize,
    tables_fingerprint,
)
from repro.thermal.fast_model import size_key


class TestTables:
    def test_sizes_present(self, small_tables):
        assert small_tables.has_size(8, 8)
        assert small_tables.has_size(6, 6)
        assert small_tables.has_size(4, 6)
        assert small_tables.has_size(6, 4)  # rotation of the io die

    def test_missing_size_raises(self, small_tables):
        with pytest.raises(KeyError, match="characterization"):
            small_tables.for_size(11.0, 13.0)

    def test_size_key_quantization(self):
        assert size_key(5.0, 5.0) == size_key(5.0000004, 5.0)
        assert size_key(5.0, 5.0) != size_key(5.01, 5.0)

    def test_r_self_positive_and_edge_heavier(self, small_tables):
        st = small_tables.for_size(8, 8)
        assert np.all(st.r_self > 0)
        center = st.r_self_at(15.0, 15.0)
        corner = st.r_self_at(4.0, 4.0)
        assert corner > center

    def test_mutual_profile_decreasing_overall(self, small_tables):
        st = small_tables.for_size(8, 8)
        profile = st.mutual_profile(15.0, 15.0)
        # Near field should dominate far field.
        assert profile[1] > profile[-1] > 0

    def test_profile_normalized(self, small_tables):
        st = small_tables.for_size(8, 8)
        assert st.profile.max() == pytest.approx(1.0)
        assert np.all(st.profile > 0)

    def test_sample_offsets_inside_die(self, small_tables):
        st = small_tables.for_size(8, 8)
        pts = st.sample_offsets()
        assert np.all(pts[:, 0] > 0) and np.all(pts[:, 0] < st.width)
        assert np.all(pts[:, 1] > 0) and np.all(pts[:, 1] < st.height)

    def test_save_load_roundtrip(self, small_tables, tmp_path):
        path = tmp_path / "tables.npz"
        small_tables.save(path)
        loaded = ResistanceTables.load(path)
        assert loaded.n_sizes == small_tables.n_sizes
        st_orig = small_tables.for_size(8, 8)
        st_load = loaded.for_size(8, 8)
        assert np.allclose(st_orig.r_self, st_load.r_self)
        assert np.allclose(st_orig.r_mutual, st_load.r_mutual)
        assert np.allclose(st_orig.mut_delta, st_load.mut_delta)
        # Interpolators must behave identically after reload.
        assert st_load.r_self_at(12.3, 9.7) == pytest.approx(
            st_orig.r_self_at(12.3, 9.7)
        )


class TestCharacterization:
    def test_fingerprint_stability(self, small_interposer, small_config):
        fp1 = tables_fingerprint(small_interposer, [(8, 8)], small_config, (5, 5))
        fp2 = tables_fingerprint(small_interposer, [(8, 8)], small_config, (5, 5))
        assert fp1 == fp2

    def test_fingerprint_sensitivity(self, small_interposer, small_config):
        base = tables_fingerprint(small_interposer, [(8, 8)], small_config, (5, 5))
        assert base != tables_fingerprint(
            small_interposer, [(8, 9)], small_config, (5, 5)
        )
        assert base != tables_fingerprint(
            small_interposer, [(8, 8)], small_config, (3, 3)
        )

    def test_oversized_die_rejected(self, small_interposer, small_config):
        with pytest.raises(ValueError, match="fit"):
            characterize_tables(
                small_interposer, [(40, 40)], small_config, position_samples=(2, 2)
            )

    def test_characterize_for_system_includes_rotations(
        self, small_system, small_config, small_tables
    ):
        # The session fixture already covers this path; check size set.
        assert small_tables.n_sizes == 4  # 8x8, 6x6, 4x6, 6x4

    def test_cache_roundtrip(self, small_interposer, small_config, tmp_path):
        tables1 = load_or_characterize(
            small_interposer,
            [(6, 6)],
            small_config,
            position_samples=(3, 3),
            cache_dir=tmp_path,
        )
        cached = list(tmp_path.glob("thermal_tables_*.npz"))
        assert len(cached) == 1
        tables2 = load_or_characterize(
            small_interposer,
            [(6, 6)],
            small_config,
            position_samples=(3, 3),
            cache_dir=tmp_path,
        )
        st1, st2 = tables1.for_size(6, 6), tables2.for_size(6, 6)
        assert np.allclose(st1.r_self, st2.r_self)


class TestFastModelAccuracy:
    def test_ambient_mismatch_rejected(self, small_tables):
        other = ThermalConfig(rows=32, cols=32, ambient=300.0)
        with pytest.raises(ValueError, match="ambient"):
            FastThermalModel(small_tables, other)

    def test_empty_placement(self, small_system, small_fast_model, small_config):
        result = small_fast_model.evaluate(Placement(small_system))
        assert result.max_temperature == small_config.ambient

    def test_single_die_accuracy(
        self, small_interposer, small_solver, small_fast_model, small_config
    ):
        system = ChipletSystem(
            "one", small_interposer, (Chiplet("hot", 8, 8, 60.0),)
        )
        rng = np.random.default_rng(0)
        errors = []
        for _ in range(10):
            p = Placement(system)
            p.place("hot", rng.uniform(0, 22), rng.uniform(0, 22))
            ref = small_solver.evaluate(p).max_temperature
            fast = small_fast_model.evaluate(p).max_temperature
            errors.append(fast - ref)
        assert np.mean(np.abs(errors)) < 0.5

    def test_multi_die_accuracy(
        self, small_system, small_solver, small_fast_model
    ):
        rng = np.random.default_rng(1)
        errors = []
        for _ in range(10):
            p = _random_legal_placement(small_system, rng)
            ref = small_solver.evaluate(p)
            fast = small_fast_model.evaluate(p)
            errors.append(fast.max_temperature - ref.max_temperature)
        assert np.mean(np.abs(errors)) < 0.8

    def test_linearity(self, small_interposer, small_tables, small_config):
        """The surrogate is exactly linear in power by construction."""
        model = FastThermalModel(small_tables, small_config)
        rises = []
        for power in (30.0, 60.0):
            system = ChipletSystem(
                "one", small_interposer, (Chiplet("hot", 8, 8, power),)
            )
            p = Placement(system)
            p.place("hot", 10, 10)
            result = model.evaluate(p)
            rises.append(result.max_temperature - small_config.ambient)
        assert rises[1] == pytest.approx(2 * rises[0], rel=1e-9)

    def test_much_faster_than_solver(
        self, small_system, small_solver, small_fast_model
    ):
        p = _random_legal_placement(small_system, np.random.default_rng(2))
        # Best of three per evaluator: single-sample wall-clock
        # comparisons are flaky under CPU-frequency noise.
        ref = min(small_solver.evaluate(p).elapsed for _ in range(3))
        fast = min(small_fast_model.evaluate(p).elapsed for _ in range(3))
        assert fast < ref

    def test_rotation_uses_rotated_tables(self, small_system, small_fast_model):
        p = Placement(small_system)
        p.place("hot", 2, 2)
        p.place("warm", 2, 20)
        p.place("cold", 20, 2, rotated=True)  # 6x4 footprint
        result = small_fast_model.evaluate(p)
        assert "cold" in result.chiplet_temperatures


class TestGoldenErrorEnvelope:
    """The paper's accuracy envelope, locked in as a regression gate.

    Characterize once on a small grid, then assert the surrogate's
    peak-temperature predictions stay within the named constants of
    :mod:`repro.thermal.fast_model` against the ground-truth solver.  A
    solver or characterization change that drifts outside the envelope
    fails here instead of silently skewing reproduced tables.
    """

    def test_peak_predictions_within_envelope(
        self, small_system, small_solver, small_fast_model
    ):
        from repro.thermal.fast_model import (
            PEAK_TEMP_MAX_ERROR_C,
            PEAK_TEMP_MEAN_ERROR_C,
        )

        rng = np.random.default_rng(42)
        errors = []
        for _ in range(15):
            p = _random_legal_placement(small_system, rng)
            ref = small_solver.evaluate(p).max_temperature
            fast = small_fast_model.evaluate(p).max_temperature
            errors.append(abs(fast - ref))
        errors = np.array(errors)
        assert errors.max() < PEAK_TEMP_MAX_ERROR_C
        assert errors.mean() < PEAK_TEMP_MEAN_ERROR_C


class TestEvaluateBatch:
    def test_matches_scalar_evaluation(self, small_system, small_fast_model):
        rng = np.random.default_rng(9)
        placements = [
            _random_legal_placement(small_system, rng) for _ in range(6)
        ]
        batch = small_fast_model.evaluate_batch(placements)
        assert len(batch) == 6
        for result, placement in zip(batch, placements):
            scalar = small_fast_model.evaluate(placement)
            assert result.max_temperature == pytest.approx(
                scalar.max_temperature, rel=1e-9
            )
            for name, temp in scalar.chiplet_temperatures.items():
                assert result.chiplet_temperatures[name] == pytest.approx(
                    temp, rel=1e-9
                )

    def test_mixed_rotation_batch(self, small_system, small_fast_model):
        """Rotated and upright episodes share one batch correctly."""
        p_upright = Placement(small_system)
        p_upright.place("hot", 2, 2)
        p_upright.place("warm", 2, 20)
        p_upright.place("cold", 20, 2)
        p_rotated = Placement(small_system)
        p_rotated.place("hot", 2, 2)
        p_rotated.place("warm", 2, 20)
        p_rotated.place("cold", 20, 2, rotated=True)
        batch = small_fast_model.evaluate_batch([p_upright, p_rotated])
        for result, placement in zip(batch, (p_upright, p_rotated)):
            scalar = small_fast_model.evaluate(placement)
            assert result.max_temperature == pytest.approx(
                scalar.max_temperature, rel=1e-9
            )

    def test_heterogeneous_batch_falls_back(
        self, small_system, small_fast_model
    ):
        """Different placed sets cannot vectorize; scalar fallback."""
        p_full = Placement(small_system)
        p_full.place("hot", 2, 2)
        p_full.place("warm", 2, 20)
        p_full.place("cold", 20, 2)
        p_partial = Placement(small_system)
        p_partial.place("hot", 10, 10)
        batch = small_fast_model.evaluate_batch([p_full, p_partial])
        assert batch[0].max_temperature == pytest.approx(
            small_fast_model.evaluate(p_full).max_temperature, rel=1e-12
        )
        assert batch[1].max_temperature == pytest.approx(
            small_fast_model.evaluate(p_partial).max_temperature, rel=1e-12
        )

    def test_empty_batch(self, small_fast_model):
        assert small_fast_model.evaluate_batch([]) == []

    def test_reward_calculator_batch(self, small_system, small_fast_model):
        from repro.reward import RewardCalculator, RewardConfig

        calc = RewardCalculator(
            small_fast_model,
            RewardConfig(lambda_wl=1e-4, use_bump_assignment=False),
        )
        rng = np.random.default_rng(3)
        placements = [
            _random_legal_placement(small_system, rng) for _ in range(4)
        ]
        batch = calc.evaluate_batch(placements)
        for breakdown, placement in zip(batch, placements):
            scalar = calc.evaluate(placement)
            assert breakdown.reward == pytest.approx(scalar.reward, rel=1e-9)
            assert breakdown.wirelength == pytest.approx(
                scalar.wirelength, rel=1e-12
            )


class TestMetrics:
    def test_known_values(self):
        metrics = error_metrics([1.0, 2.0, 3.0], [1.0, 2.0, 2.0])
        assert metrics["mse"] == pytest.approx(1.0 / 3.0)
        assert metrics["rmse"] == pytest.approx(np.sqrt(1.0 / 3.0))
        assert metrics["mae"] == pytest.approx(1.0 / 3.0)
        assert metrics["n"] == 3

    def test_perfect_prediction(self):
        metrics = error_metrics([5.0, 6.0], [5.0, 6.0])
        assert metrics["mse"] == 0.0
        assert metrics["mape"] == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            error_metrics([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            error_metrics([], [])

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            error_metrics([1.0], [0.0])


def _random_legal_placement(system, rng, spacing=0.2):
    """Rejection-sample a legal placement for small systems."""
    from repro.geometry import Rect

    interposer = system.interposer
    while True:
        rects = {}
        ok = True
        for chiplet in system.chiplets:
            x = rng.uniform(0, interposer.width - chiplet.width)
            y = rng.uniform(0, interposer.height - chiplet.height)
            rect = Rect(x, y, chiplet.width, chiplet.height)
            if any(
                rect.inflated(spacing).overlaps(other) for other in rects.values()
            ):
                ok = False
                break
            rects[chiplet.name] = rect
        if ok:
            placement = Placement(system)
            for name, rect in rects.items():
                placement.place(name, rect.x, rect.y)
            return placement
