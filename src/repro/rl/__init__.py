"""Reinforcement-learning core: PPO, RND, rollout buffer, GAE."""

from repro.rl.running_stats import RunningMeanStd
from repro.rl.buffer import Episode, RolloutBatch, RolloutBuffer
from repro.rl.ppo import PPOConfig, PPOUpdater
from repro.rl.rnd import RNDConfig, RandomNetworkDistillation
from repro.rl.schedule import linear_schedule

__all__ = [
    "RunningMeanStd",
    "Episode",
    "RolloutBatch",
    "RolloutBuffer",
    "PPOConfig",
    "PPOUpdater",
    "RNDConfig",
    "RandomNetworkDistillation",
    "linear_schedule",
]
