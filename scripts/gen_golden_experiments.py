"""Regenerate the golden sequential experiment-runner results.

Run from the repo root:

    PYTHONPATH=src python scripts/gen_golden_experiments.py

Only rerun this when an *intentional* behavior change invalidates the
golden values — the whole point of ``tests/data/golden_experiments.json``
is that the ``jobs=1`` experiment path stays bitwise-faithful to the
pre-scheduler sequential runner (floats are compared via
``float.hex()``).
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tests"))

from golden_experiments_utils import (
    GOLDEN_EXPERIMENTS_PATH,
    run_golden_experiments,
)


def main() -> int:
    with tempfile.TemporaryDirectory() as cache_dir:
        record = run_golden_experiments(cache_dir)
    out_path = REPO_ROOT / GOLDEN_EXPERIMENTS_PATH
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {out_path}")
    for method, data in record.items():
        print(f"{method}: reward = {float.fromhex(data['reward']):.6f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
