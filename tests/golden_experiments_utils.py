"""Fixed scenario shared by the golden-experiments test and its generator.

The golden regression (``tests/data/golden_experiments.json``) pins the
*sequential* experiment runner — ``run_all_methods`` with ``jobs=1``,
all four method arms on a tiny three-die benchmark — to the exact
results the pre-scheduler (PR 3) runner produced.  The process-pool
experiment scheduler added in PR 4 must leave the ``jobs=1`` in-process
path bit-for-bit intact; this golden is what enforces that, the same
way ``golden_baselines.json`` pins the ``n_chains=1`` annealers and
``golden_sequential_trainer.json`` pins the ``batch_size=1`` trainer.

The scenario disables wall-clock time matching (``sa_time_matched=
False``) because a time-limited arm's iteration count depends on
machine speed; every other knob keeps the batched defaults
(``rollout_batch_size=16``, ``sa_chains=16``) so the golden covers the
engines the experiment harness actually runs.

Floats are stored via ``float.hex()`` so the comparison is bitwise, not
approximate.  Both the checked-in generator
(``scripts/gen_golden_experiments.py``) and the regression test import
this module so the scenario can never drift between them.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentBudget, run_all_methods
from repro.reward import RewardConfig
from repro.systems.spec import BenchmarkSpec
from repro.thermal import ThermalConfig

from golden_utils import build_golden_system

GOLDEN_EXPERIMENTS_PATH = "tests/data/golden_experiments.json"

GOLDEN_METHODS = (
    "RLPlanner",
    "RLPlanner(RND)",
    "TAP-2.5D(HotSpot)",
    "TAP-2.5D*(FastThermal)",
)


def build_golden_spec() -> BenchmarkSpec:
    """Tiny benchmark: golden three-die system on a coarse thermal grid."""
    return BenchmarkSpec(
        name="golden_exp",
        system=build_golden_system(),
        thermal_config=ThermalConfig(rows=16, cols=16, package_margin=8.0),
        reward_config=RewardConfig(lambda_wl=1e-4, use_bump_assignment=False),
        description="golden experiment-runner scenario",
    )


def build_golden_budget() -> ExperimentBudget:
    """Minutes-not-hours budget; time matching off for determinism."""
    return ExperimentBudget(
        rl_epochs=2,
        episodes_per_epoch=4,
        grid_size=12,
        sa_iterations_hotspot=32,
        sa_time_matched=False,
        position_samples=(3, 3),
        seed=123,
    )


def run_golden_experiments(cache_dir, **runner_kwargs) -> dict:
    """Run all four arms sequentially; distill bitwise-comparable records.

    ``cache_dir`` must be a throwaway directory: the thermal-table cache
    round-trips through ``.npz`` (bit-exact) and the golden covers that
    round-trip too.
    """
    results = run_all_methods(
        build_golden_spec(),
        build_golden_budget(),
        cache_dir=cache_dir,
        methods=GOLDEN_METHODS,
        **runner_kwargs,
    )
    record = {}
    for res in results:
        record[res.method] = {
            "reward": float(res.reward).hex(),
            "wirelength": float(res.wirelength).hex(),
            "temperature_c": float(res.temperature_c).hex(),
        }
    return record
