"""Warm-cache registry: build each benchmark's evaluators exactly once.

The expensive part of answering any request is the evaluator stack —
thermal characterization (``load_or_characterize``: an NxN grid of
FEM solves per die size), the ``FastThermalModel`` table interpolators,
and the ``GridThermalSolver`` whose ``splu`` factorization
``hotspot_reuse_factorization`` keeps alive.  The registry builds that
stack once per (benchmark, characterization knobs) key and hands every
subsequent request the warm bundle.

Concurrency contract (the serve layer runs one thread per HTTP
request):

* **Single-flight builds.**  N threads requesting the same cold key
  trigger exactly one ``build_evaluators`` call; the other N-1 block on
  the leader's event and count as hits.  (The disk-level FileLock in
  ``load_or_characterize`` already protects cross-*process* races; this
  layer exists so N in-process threads don't each pay a redundant
  table *load* — or worse, N redundant characterizations on a cold
  cache dir.)
* **Exclusive compute.**  Each bundle carries an RLock that callers
  hold while running its evaluators.  The evaluator objects mutate
  internal state (``evaluation_count``, cached factorizations), so two
  requests never drive one bundle concurrently — they serialize here,
  which is exactly what the micro-batching layer wants anyway: queue
  while busy, then coalesce into one batched call.
"""

from __future__ import annotations

import threading

from repro.experiments.runner import build_evaluators, spec_fingerprint
from repro.store import store_key
from repro.utils import get_logger

__all__ = ["EvaluatorBundle", "WarmRegistry", "bundle_key"]

_logger = get_logger("serve.registry")


def bundle_key(spec, budget) -> str:
    """Content key of one warm evaluator bundle.

    Only the knobs that change what ``build_evaluators`` constructs
    participate: the benchmark's content fingerprint, the
    characterization density, and whether the grid solver caches its
    factorization.  Budgets differing only in training/annealing knobs
    share a bundle.
    """
    return store_key(
        "serve-evaluators",
        {
            "spec": spec_fingerprint(spec),
            "position_samples": tuple(budget.position_samples),
            "hotspot_reuse_factorization": bool(
                budget.hotspot_reuse_factorization
            ),
        },
    )


class EvaluatorBundle:
    """One benchmark's warm evaluator stack plus its compute lock."""

    __slots__ = ("key", "evaluators", "lock", "built_s")

    def __init__(self, key: str, evaluators: dict, built_s: float):
        self.key = key
        self.evaluators = evaluators
        self.lock = threading.RLock()
        self.built_s = built_s

    def evaluator_calls(self) -> int:
        """Total reward evaluations both calculators have ever run —
        the counter whose per-request delta the stats report (a
        memoized repeat must show a delta of zero)."""
        return (
            self.evaluators["reward_fast"].evaluation_count
            + self.evaluators["reward_solver"].evaluation_count
        )


class _Entry:
    __slots__ = ("event", "bundle", "error")

    def __init__(self):
        self.event = threading.Event()
        self.bundle: EvaluatorBundle | None = None
        self.error: BaseException | None = None


class WarmRegistry:
    """Single-flight cache of :class:`EvaluatorBundle` per content key."""

    def __init__(self, cache_dir=None, builder=None):
        # ``builder`` is injectable so tests can count/fail builds
        # without touching the real characterization path.
        self._builder = builder or build_evaluators
        self._cache_dir = cache_dir
        self._lock = threading.Lock()
        self._entries: dict = {}
        self.hits = 0
        self.misses = 0
        self.builds = 0

    def bundle(self, spec, budget) -> EvaluatorBundle:
        """The warm bundle for (spec, budget) — built at most once.

        The first thread in becomes the builder; concurrent requesters
        of the same key block until the build publishes (or re-raise
        the builder's error — a failed build is dropped so a later
        request can retry rather than caching the failure forever).
        """
        import time

        key = bundle_key(spec, budget)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = _Entry()
                self._entries[key] = entry
                self.misses += 1
                is_builder = True
            else:
                self.hits += 1
                is_builder = False
        if not is_builder:
            entry.event.wait()
            if entry.error is not None:
                raise entry.error
            return entry.bundle
        try:
            start = time.perf_counter()
            evaluators = self._builder(spec, budget, self._cache_dir)
            entry.bundle = EvaluatorBundle(
                key, evaluators, built_s=time.perf_counter() - start
            )
            with self._lock:
                self.builds += 1
            _logger.info(
                "warmed evaluators for %s in %.2fs (key %s)",
                spec.name,
                entry.bundle.built_s,
                key[:12],
            )
        except BaseException as error:
            entry.error = error
            with self._lock:
                # Drop the failed entry: the next request retries the
                # build instead of inheriting a poisoned cache slot.
                self._entries.pop(key, None)
            raise
        finally:
            entry.event.set()
        return entry.bundle

    def stats(self) -> dict:
        with self._lock:
            return {
                "bundles": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "builds": self.builds,
            }
