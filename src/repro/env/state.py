"""Observation encoding: the state image fed to the CNN agent.

Channels (all on the placement grid, values in [0, 1]):

0. occupancy  — cell coverage of the placed dies
1. power      — power density of placed dies, normalized by the system max
2. connect    — coverage of placed dies that share a net with the die
                being placed, weighted by relative wire count
3. width      — constant: current die width / interposer width
4. height     — constant: current die height / interposer height
5. density    — constant: current die power density / system max
6. progress   — constant: fraction of dies already placed
"""

from __future__ import annotations

import numpy as np

from repro.chiplet import ChipletSystem, Placement
from repro.geometry import PlacementGrid

__all__ = ["ObservationBuilder"]


class ObservationBuilder:
    """Builds (C, rows, cols) observation tensors for one system."""

    N_CHANNELS = 7
    # Channels that are spatially constant AND identical for every
    # episode of a lockstep batch (they depend only on the die being
    # placed and the step number, which lockstep episodes share).  The
    # batched rollout engine exploits this to run the first conv layer's
    # contribution from these channels once per step instead of once per
    # episode.
    STATIC_CHANNELS = (3, 4, 5, 6)

    def __init__(self, system: ChipletSystem, grid: PlacementGrid):
        self.system = system
        self.grid = grid
        self._max_density = max(c.power_density for c in system.chiplets)
        self._max_wires = max((n.wires for n in system.nets), default=1)

    @property
    def shape(self) -> tuple:
        return (self.N_CHANNELS, self.grid.rows, self.grid.cols)

    def _wires_to(self, current_name: str) -> dict:
        """Wire counts between the current die and every other die."""
        wires_to_current: dict = {}
        for net in self.system.nets_of(current_name):
            other = net.other(current_name)
            wires_to_current[other] = wires_to_current.get(other, 0) + net.wires
        return wires_to_current

    def build(self, placement: Placement, current_name: str) -> np.ndarray:
        """Observation for choosing where to put ``current_name``."""
        grid = self.grid
        obs = np.zeros(self.shape, dtype=np.float64)
        current = self.system.chiplet(current_name)
        wires_to_current = self._wires_to(current_name)

        for name in placement.placed_names:
            rect = placement.footprint(name)
            cover = grid.coverage(rect)
            obs[0] = np.maximum(obs[0], cover)
            chiplet = self.system.chiplet(name)
            obs[1] = np.maximum(
                obs[1], cover * (chiplet.power_density / self._max_density)
            )
            wires = wires_to_current.get(name, 0)
            if wires:
                obs[2] = np.maximum(obs[2], cover * (wires / self._max_wires))

        obs[3] = current.width / grid.width
        obs[4] = current.height / grid.height
        obs[5] = current.power_density / self._max_density
        obs[6] = len(placement.placed_names) / self.system.n_chiplets
        return obs

    def build_batch(self, placements: list, current_name: str) -> np.ndarray:
        """Stacked (n, C, rows, cols) observations for lockstep episodes.

        All episodes are choosing where to put the *same* chiplet
        (lockstep rollouts share the placement order), so the wire
        lookup and the constant channels are computed once for the whole
        batch.  Stateless from-scratch construction: the batched
        environment itself assembles observations incrementally via
        :meth:`build_stacked`; this method is the reference the
        equivalence tests pin that path against.
        """
        n = len(placements)
        obs = np.zeros((n,) + self.shape, dtype=np.float64)
        current = self.system.chiplet(current_name)
        wires_to_current = self._wires_to(current_name)
        coverage = self.grid.coverage
        density = {
            c.name: c.power_density / self._max_density
            for c in self.system.chiplets
        }

        for i, placement in enumerate(placements):
            for name in placement.placed_names:
                cover = coverage(placement.footprint(name))
                np.maximum(obs[i, 0], cover, out=obs[i, 0])
                np.maximum(obs[i, 1], cover * density[name], out=obs[i, 1])
                wires = wires_to_current.get(name, 0)
                if wires:
                    np.maximum(
                        obs[i, 2],
                        cover * (wires / self._max_wires),
                        out=obs[i, 2],
                    )
            obs[i, 6] = len(placement.placed_names) / self.system.n_chiplets

        obs[:, 3] = current.width / self.grid.width
        obs[:, 4] = current.height / self.grid.height
        obs[:, 5] = current.power_density / self._max_density
        return obs

    @property
    def max_density(self) -> float:
        """System-wide max power density (the power-channel normalizer)."""
        return self._max_density

    @property
    def max_wires(self) -> int:
        """System-wide max per-net wire count (the connect normalizer)."""
        return self._max_wires

    def wires_to(self, current_name: str) -> dict:
        """Public alias of the per-die wire-count lookup."""
        return self._wires_to(current_name)

    def build_stacked(
        self,
        occupancy: np.ndarray,
        power: np.ndarray,
        connect: np.ndarray,
        current_name: str,
        n_placed: int,
    ) -> np.ndarray:
        """Assemble (n, C, rows, cols) observations from dynamic channels.

        The batched environment maintains occupancy/power as running
        maxima (running ``max`` is exact, so the channels are bitwise
        identical to rebuilding them from scratch) and the connect
        channel per step; this stitches them together with the constant
        channels, vectorized across the batch.
        """
        n = len(occupancy)
        obs = np.empty((n,) + self.shape, dtype=np.float64)
        obs[:, 0] = occupancy
        obs[:, 1] = power
        obs[:, 2] = connect
        current = self.system.chiplet(current_name)
        obs[:, 3] = current.width / self.grid.width
        obs[:, 4] = current.height / self.grid.height
        obs[:, 5] = current.power_density / self._max_density
        obs[:, 6] = n_placed / self.system.n_chiplets
        return obs
