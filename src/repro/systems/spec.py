"""Benchmark bundle: system + calibrated evaluation parameters."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chiplet import ChipletSystem
from repro.reward import RewardConfig
from repro.thermal import ThermalConfig

__all__ = ["BenchmarkSpec"]


@dataclass
class BenchmarkSpec:
    """Everything needed to evaluate one benchmark.

    Attributes
    ----------
    system:
        The chiplet design.
    thermal_config:
        Package/stack parameters calibrated for this system (convection
        resistance scales with the plausible heat-sink size).
    reward_config:
        Per-system reward weights (the paper's per-system reward
        magnitudes imply per-system wirelength weights).
    paper_reference:
        The paper's Table I/III numbers for this system, for side-by-side
        reporting.  Empty for systems the paper does not tabulate.
    """

    name: str
    system: ChipletSystem
    thermal_config: ThermalConfig
    reward_config: RewardConfig
    description: str = ""
    paper_reference: dict = field(default_factory=dict)
