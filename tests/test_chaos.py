"""Deterministic fault injection: the chaos harness and every failure
path it makes CI-testable.

Covers the PR-7 chaos guarantees:

* spec parsing/validation and the env-var + override plumbing;
* fire accounting — ``times`` caps per process, and with ``dir`` the
  cap holds across every process via sentinel files;
* ``store.write`` injection (the store satellite's test hook);
* a scheduler worker SIGKILL'd once mid-sweep: the sweep completes via
  retry with results identical to an undisturbed run;
* ``keep_going`` + a deterministically failing job: quarantined while
  siblings complete;
* collector chaos: a crashed slice worker, a hung slice (straggler),
  and repeated pool loss all end in a **bitwise identical** training
  run (retry / rebuild / in-process degradation respectively), and a
  failing worker initializer surfaces promptly as ``WorkerInitError``
  with the real traceback.
"""

import functools
import json
import logging
import time
import uuid

import pytest

from repro.env import EnvConfig, FloorplanEnv
from repro.experiments.report import MethodResult
from repro.experiments.runner import _inject_rl_runtime
from repro.parallel import JobSpec, RetryPolicy, SweepReport, run_jobs
from repro.parallel import chaos as chaos_module
from repro.parallel.chaos import (
    CHAOS_ENV,
    ChaosInjector,
    ChaosSpec,
    DeterministicChaosError,
    TransientChaosError,
    chaos_from_env,
    maybe_fail,
    set_chaos,
)
from repro.parallel.faults import WorkerInitError
from repro.reward import RewardCalculator, RewardConfig
from repro.store import RunStore
from test_collector import _distill, _make_trainer


@pytest.fixture(autouse=True)
def _clean_chaos(monkeypatch):
    """No chaos leaks into (or out of) any test."""
    monkeypatch.delenv(CHAOS_ENV, raising=False)
    set_chaos(None)
    yield
    set_chaos(None)


def _chaos_env(monkeypatch, *specs) -> None:
    document = [dict(spec) for spec in specs]
    monkeypatch.setenv(
        CHAOS_ENV,
        json.dumps(document[0] if len(document) == 1 else document),
    )


def _fast_policy(**overrides) -> RetryPolicy:
    defaults = dict(max_attempts=3, backoff_base=0.0, jitter=0.0)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


# top-level (picklable) job functions
def _square(x):
    return x * x


def _stub_rl_arm(marker_dir, sleep_s=0.25):
    """Stand-in RL arm: self-measures its runtime like the real one.

    Leaves one marker file per *invocation* and fires a mid-body chaos
    point, so a test can crash attempt 1 partway through and verify the
    runtime fed downstream covers only the successful attempt.
    """
    from pathlib import Path

    start = time.perf_counter()
    Path(marker_dir, f"attempt-{uuid.uuid4().hex}").write_text("")
    time.sleep(sleep_s)
    chaos_module.maybe_fail("scheduler.job", "stub-rl-body")
    return MethodResult(
        system="stub",
        method="RLPlanner",
        reward=0.0,
        wirelength=0.0,
        temperature_c=0.0,
        runtime_s=time.perf_counter() - start,
    )


def _stub_sa_arm(time_limit=None, time_matched=None):
    """Stand-in fast-SA arm: reports the budget it was handed."""
    return {"time_limit": time_limit, "time_matched": time_matched}


# ----------------------------------------------------------------------
# harness mechanics
# ----------------------------------------------------------------------


class TestChaosSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="mode"):
            ChaosSpec(point="scheduler.job", mode="explode")
        with pytest.raises(ValueError, match="point"):
            ChaosSpec(point="nonsense.site")
        with pytest.raises(ValueError, match="error"):
            ChaosSpec(point="scheduler.job", error="sometimes")
        with pytest.raises(ValueError, match="times"):
            ChaosSpec(point="scheduler.job", times=-1)

    def test_env_parsing_dict_and_list(self, monkeypatch):
        monkeypatch.setenv(
            CHAOS_ENV, '{"point": "scheduler.job", "mode": "raise"}'
        )
        injector = chaos_from_env()
        assert [spec.point for spec in injector.specs] == ["scheduler.job"]
        monkeypatch.setenv(
            CHAOS_ENV,
            '[{"point": "scheduler.job"}, {"point": "store.write"}]',
        )
        injector = chaos_from_env()
        assert [spec.point for spec in injector.specs] == [
            "scheduler.job",
            "store.write",
        ]

    def test_no_config_is_a_noop(self):
        assert chaos_from_env() is None
        maybe_fail("scheduler.job", "anything")  # must not raise

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, '{"point": "store.write"}')
        override = ChaosInjector([ChaosSpec(point="scheduler.job")])
        set_chaos(override)
        assert chaos_from_env() is override


class TestFireAccounting:
    def test_times_caps_fires_per_process(self):
        injector = ChaosInjector(
            [ChaosSpec(point="scheduler.job", mode="raise", times=2)]
        )
        set_chaos(injector)
        for _ in range(2):
            with pytest.raises(TransientChaosError):
                maybe_fail("scheduler.job", "arm")
        maybe_fail("scheduler.job", "arm")  # exhausted: no fire

    def test_times_zero_is_unlimited(self):
        set_chaos(
            ChaosInjector(
                [ChaosSpec(point="scheduler.job", mode="raise", times=0)]
            )
        )
        for _ in range(5):
            with pytest.raises(TransientChaosError):
                maybe_fail("scheduler.job")

    def test_dir_accounting_is_cross_process(self, tmp_path):
        # Two injectors over the same dir stand in for two worker
        # processes: the fire budget is shared, not per-injector.
        spec = ChaosSpec(
            point="scheduler.job", mode="raise", times=1, dir=str(tmp_path)
        )
        first, second = ChaosInjector([spec]), ChaosInjector([spec])
        with pytest.raises(TransientChaosError):
            first.maybe_fail("scheduler.job")
        second.maybe_fail("scheduler.job")  # budget already spent
        sentinels = list(tmp_path.iterdir())
        assert len(sentinels) == 1

    def test_match_filters_on_detail(self):
        set_chaos(
            ChaosInjector(
                [
                    ChaosSpec(
                        point="scheduler.job",
                        mode="raise",
                        match="rl",
                        times=0,
                    )
                ]
            )
        )
        maybe_fail("scheduler.job", "sa/arm")  # no match, no fire
        with pytest.raises(TransientChaosError):
            maybe_fail("scheduler.job", "rl/arm")

    def test_error_family_selection(self):
        set_chaos(
            ChaosInjector(
                [
                    ChaosSpec(
                        point="store.write",
                        mode="raise",
                        error="deterministic",
                    )
                ]
            )
        )
        with pytest.raises(DeterministicChaosError):
            maybe_fail("store.write")
        assert not RetryPolicy.is_transient(DeterministicChaosError("x"))
        assert RetryPolicy.is_transient(TransientChaosError("x"))


class TestStoreWriteInjection:
    def test_put_fires_the_injection_point(self, tmp_path):
        store = RunStore(tmp_path / "store")
        set_chaos(
            ChaosInjector([ChaosSpec(point="store.write", mode="raise")])
        )
        with pytest.raises(TransientChaosError):
            store.put("ab" * 32, {"value": 1})
        # Budget spent: the retry goes through and the artifact lands.
        store.put("ab" * 32, {"value": 1})
        assert store.get("ab" * 32) == {"value": 1}


# ----------------------------------------------------------------------
# scheduler under chaos
# ----------------------------------------------------------------------


class TestSchedulerChaos:
    def test_crashed_worker_retries_to_identical_results(
        self, tmp_path, monkeypatch
    ):
        specs = [
            JobSpec(job_id=f"arm/{x}", fn=_square, kwargs=dict(x=x))
            for x in range(4)
        ]
        reference = run_jobs(list(specs), jobs=2, policy=_fast_policy())

        _chaos_env(
            monkeypatch,
            dict(
                point="scheduler.job",
                mode="crash",
                match="arm/1",
                times=1,
                dir=str(tmp_path / "chaos"),
            ),
        )
        report = SweepReport()
        disturbed = run_jobs(
            list(specs), jobs=2, policy=_fast_policy(), report=report
        )
        assert disturbed == reference
        assert report.retried == ["arm/1"]
        assert report.ok

    def test_transient_raise_retries_sequentially(self, monkeypatch):
        _chaos_env(
            monkeypatch,
            dict(point="scheduler.job", mode="raise", match="a", times=1),
        )
        report = SweepReport()
        outcome = run_jobs(
            [JobSpec("a", _square, dict(x=6))],
            jobs=1,
            policy=_fast_policy(),
            report=report,
        )
        assert outcome == {"a": 36}
        assert report.retried == ["a"]

    def test_deterministic_chaos_quarantines_under_keep_going(
        self, monkeypatch
    ):
        _chaos_env(
            monkeypatch,
            dict(
                point="scheduler.job",
                mode="raise",
                error="deterministic",
                match="arm/2",
                times=0,
            ),
        )
        report = SweepReport()
        outcome = run_jobs(
            [
                JobSpec(job_id=f"arm/{x}", fn=_square, kwargs=dict(x=x))
                for x in range(4)
            ],
            jobs=2,
            policy=_fast_policy(),
            keep_going=True,
            report=report,
        )
        assert outcome == {"arm/0": 0, "arm/1": 1, "arm/3": 9}
        assert report.quarantined == ["arm/2"]
        assert report.outcomes["arm/2"].error_type in (
            "DeterministicChaosError",
            "RemoteTraceback",
        )

    def test_retried_rl_arm_feeds_final_attempt_runtime_downstream(
        self, tmp_path, monkeypatch
    ):
        """A crash-then-retry RL arm must hand the time-matched SA arm
        the *successful attempt's* self-measured wall clock — never the
        sum across attempts (satellite: retry/time-matching attribution).
        """
        markers = tmp_path / "markers"
        markers.mkdir()
        sleep_s = 0.25
        rl_id = "bench/RLPlanner"
        specs = [
            JobSpec(
                rl_id,
                _stub_rl_arm,
                dict(marker_dir=str(markers), sleep_s=sleep_s),
            ),
            JobSpec(
                "bench/TAP-2.5D*(FastThermal)",
                _stub_sa_arm,
                dict(time_matched=True),
                needs=(rl_id,),
                inject=functools.partial(_inject_rl_runtime, rl_id),
            ),
        ]
        # SIGKILL the RL arm partway through its first attempt; the
        # second attempt runs to completion.
        _chaos_env(
            monkeypatch,
            dict(
                point="scheduler.job",
                mode="crash",
                match="stub-rl-body",
                times=1,
                dir=str(tmp_path / "chaos"),
            ),
        )
        report = SweepReport()
        outcome = run_jobs(
            specs, jobs=2, policy=_fast_policy(), report=report
        )
        assert report.outcomes[rl_id].status == "retried"
        assert report.outcomes[rl_id].attempts == 2
        # Attempt 1 really ran (and burned wall clock) before dying.
        assert len(list(markers.iterdir())) == 2
        injected = outcome["bench/TAP-2.5D*(FastThermal)"]["time_limit"]
        # Exactly the dependency's self-measured runtime, verbatim...
        assert injected == outcome[rl_id].runtime_s
        # ...and attempt-2-sized, not the ~2x sum across both attempts.
        assert sleep_s <= injected < 1.6 * sleep_s


# ----------------------------------------------------------------------
# collector under chaos (bitwise guarantees)
# ----------------------------------------------------------------------


@pytest.fixture
def trainer_env(small_system, small_fast_model):
    calc = RewardCalculator(
        small_fast_model, RewardConfig(lambda_wl=1e-4, use_bump_assignment=False)
    )
    return FloorplanEnv(small_system, calc, EnvConfig(grid_size=10))


class TestCollectorChaos:
    def test_crashed_slice_worker_redispatches_bitwise(
        self, trainer_env, tmp_path, monkeypatch
    ):
        reference = _distill(_make_trainer(trainer_env).train())
        _chaos_env(
            monkeypatch,
            dict(
                point="collector.slice",
                mode="crash",
                times=1,
                dir=str(tmp_path / "chaos"),
            ),
        )
        trainer = _make_trainer(trainer_env, collect_jobs=2)
        trainer._collector.policy = _fast_policy()
        disturbed = _distill(trainer.train())
        assert disturbed == reference
        assert not trainer._collector.degraded
        # The crash really happened (one sentinel claimed).
        assert len(list((tmp_path / "chaos").iterdir())) == 1

    def test_hung_slice_worker_is_rebuilt_bitwise(
        self, trainer_env, tmp_path, monkeypatch
    ):
        reference = _distill(_make_trainer(trainer_env).train())
        _chaos_env(
            monkeypatch,
            dict(
                point="collector.slice",
                mode="hang",
                hang_s=60.0,
                times=1,
                dir=str(tmp_path / "chaos"),
            ),
        )
        trainer = _make_trainer(trainer_env, collect_jobs=2)
        trainer._collector.slice_timeout = 2.0
        trainer._collector.policy = _fast_policy()
        disturbed = _distill(trainer.train())
        assert disturbed == reference

    def test_persistent_pool_loss_degrades_in_process_bitwise(
        self, trainer_env, tmp_path, monkeypatch
    ):
        reference = _distill(_make_trainer(trainer_env).train())
        # Every slice task crashes its worker, forever: the pool can
        # never finish a round, so the collector must fall back to
        # in-process collection — and still match bitwise.
        _chaos_env(
            monkeypatch,
            dict(point="collector.slice", mode="crash", times=0),
        )
        trainer = _make_trainer(trainer_env, collect_jobs=2)
        trainer._collector.policy = _fast_policy()
        trainer._collector.max_pool_failures = 1
        disturbed = _distill(trainer.train())
        assert disturbed == reference
        assert trainer._collector.degraded

    def test_pool_killed_in_epoch_2_is_rebuilt_by_epoch_4(
        self, trainer_env, tmp_path, monkeypatch, caplog
    ):
        """Degradation is no longer sticky: after ``reprobe_after``
        in-process epochs the collector re-probes the pool, so a kill in
        epoch 2 is healed by epoch 4 (satellite: bounded re-probe)."""
        reference = _distill(_make_trainer(trainer_env, epochs=4).train())
        # Epochs cover episodes [0,5), [5,10), [10,15), [15,20): killing
        # slice@5 hits epoch 2, and max_pool_failures=1 degrades at once.
        _chaos_env(
            monkeypatch,
            dict(
                point="collector.slice",
                mode="crash",
                match="slice@5",
                times=1,
                dir=str(tmp_path / "chaos"),
            ),
        )
        trainer = _make_trainer(trainer_env, epochs=4, collect_jobs=2)
        trainer._collector.policy = _fast_policy()
        trainer._collector.max_pool_failures = 1
        assert trainer._collector.reprobe_after == 2
        logger = logging.getLogger("repro")
        logger.addHandler(caplog.handler)
        try:
            disturbed = _distill(trainer.train())
        finally:
            logger.removeHandler(caplog.handler)
        assert disturbed == reference
        # Epoch 3 ran in-process; epoch 4's re-probe rebuilt the pool
        # (train() releases the workers on completion, so the evidence
        # is the re-probe itself plus a second pool start).
        assert not trainer._collector.degraded
        messages = [rec.getMessage() for rec in caplog.records]
        assert any("re-probing the collection pool" in m for m in messages)
        assert (
            sum("starting 2 collection workers" in m for m in messages) == 2
        )
        assert len(list((tmp_path / "chaos").iterdir())) == 1

    def test_reprobe_zero_keeps_legacy_sticky_degradation(
        self, trainer_env, tmp_path, monkeypatch
    ):
        reference = _distill(_make_trainer(trainer_env, epochs=4).train())
        _chaos_env(
            monkeypatch,
            dict(
                point="collector.slice",
                mode="crash",
                match="slice@5",
                times=1,
                dir=str(tmp_path / "chaos"),
            ),
        )
        trainer = _make_trainer(trainer_env, epochs=4, collect_jobs=2)
        trainer._collector.policy = _fast_policy()
        trainer._collector.max_pool_failures = 1
        trainer._collector.reprobe_after = 0
        disturbed = _distill(trainer.train())
        assert disturbed == reference
        assert trainer._collector.degraded  # never re-probed

    def test_crashed_prefetch_worker_recovers_bitwise(
        self, trainer_env, tmp_path, monkeypatch
    ):
        """SIGKILL a worker running an async-prefetched slice: the epoch
        is re-collected with the *stored* stale weights, so the run
        completes bitwise-equal to an undisturbed async run and the pool
        is not degraded (tentpole: async chaos coverage)."""
        reference_trainer = _make_trainer(
            trainer_env, epochs=3, collect_jobs=2, async_collect=True
        )
        reference = _distill(reference_trainer.train())
        reference_trainer.close_collector()

        _chaos_env(
            monkeypatch,
            dict(
                point="collector.prefetch",
                mode="crash",
                times=1,
                dir=str(tmp_path / "chaos"),
            ),
        )
        trainer = _make_trainer(
            trainer_env, epochs=3, collect_jobs=2, async_collect=True
        )
        trainer._collector.policy = _fast_policy()
        disturbed = _distill(trainer.train())
        trainer_degraded = trainer._collector.degraded
        trainer.close_collector()
        assert disturbed == reference
        assert not trainer_degraded
        assert len(list((tmp_path / "chaos").iterdir())) == 1

    def test_persistent_pool_loss_in_async_mode_degrades_bitwise(
        self, trainer_env, monkeypatch
    ):
        """Async + a pool that can never finish a round: collection
        degrades in-process but keeps the pipelined staleness schedule,
        so the result still matches an undisturbed async run bitwise."""
        reference_trainer = _make_trainer(
            trainer_env, epochs=3, collect_jobs=2, async_collect=True
        )
        reference = _distill(reference_trainer.train())
        reference_trainer.close_collector()

        _chaos_env(
            monkeypatch,
            dict(point="collector.prefetch", mode="crash", times=0),
            dict(point="collector.slice", mode="crash", times=0),
        )
        trainer = _make_trainer(
            trainer_env, epochs=3, collect_jobs=2, async_collect=True
        )
        trainer._collector.policy = _fast_policy()
        trainer._collector.max_pool_failures = 1
        trainer._collector.reprobe_after = 0
        disturbed = _distill(trainer.train())
        trainer_degraded = trainer._collector.degraded
        trainer.close_collector()
        assert disturbed == reference
        assert trainer_degraded

    def test_init_failure_surfaces_as_worker_init_error(
        self, trainer_env, monkeypatch
    ):
        _chaos_env(
            monkeypatch,
            dict(
                point="collector.init",
                mode="raise",
                error="deterministic",
                times=0,
            ),
        )
        trainer = _make_trainer(trainer_env, collect_jobs=2)
        with pytest.raises(WorkerInitError) as excinfo:
            trainer.collect_episodes(4)
        # The real traceback travelled with it.
        assert "DeterministicChaosError" in str(excinfo.value)
        assert not trainer._collector.active  # pool not stranded
