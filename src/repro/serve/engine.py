"""The serve engine: warm evaluators + micro-batching + memoization.

One :class:`ServeEngine` instance backs every request thread of the
HTTP front end.  It composes the three layers the tentpole names:

* the :class:`~repro.serve.registry.WarmRegistry` (characterization
  tables, ``FastThermalModel``, ``GridThermalSolver`` factorizations —
  built once, reused forever),
* two :class:`~repro.serve.batcher.MicroBatcher` queues that coalesce
  concurrent ``evaluate``/``rollout`` requests into the existing
  ``evaluate_batch``/``act_batch`` (via ``collect_wave``) paths, and
* whole-request memoization of ``place`` through :class:`RunStore`
  content addressing — an identical (system, method, budget) request
  returns the stored placement with zero evaluator calls, and
  concurrent identical misses single-flight behind one computation.

Bitwise parity: ``place`` executes the same
:func:`repro.experiments.runner.dispatch_method_arm` code path the CLI
harness runs (warm evaluators are bit-identical to freshly built ones —
the thermal tables round-trip exactly through the disk cache), with the
same single-method time-matching semantics, so a served result equals
the ``repro.cli`` result for the same request in every semantic field.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

import numpy as np

from repro.chiplet import Placement
from repro.experiments.runner import dispatch_method_arm
from repro.nn.serialization import loads_payload
from repro.parallel.collector import POLICY_PAYLOAD_KIND, collect_wave
from repro.serve.batcher import MicroBatcher
from repro.serve.registry import WarmRegistry
from repro.serve.schema import (
    BadRequest,
    breakdown_to_dict,
    method_result_to_dict,
)
from repro.store import RunStore, store_key
from repro.systems import benchmark_names, get_benchmark
from repro.utils import SeedSequence, get_logger

__all__ = ["ServeEngine", "SERVE_PLACE_KIND"]

_logger = get_logger("serve.engine")

#: Store kind for memoized place requests.  Distinct from the harness's
#: ``method_arm`` kind because the serve artifact carries the winning
#: placement alongside the MethodResult (the table-oriented harness
#: only stores the scalar summary).
SERVE_PLACE_KIND = "serve-place"


def place_store_key(spec, method, budget, time_limited: bool) -> str:
    """Content key of one memoized place request (mirrors
    ``arm_store_key`` structurally, under the serve kind)."""
    from repro.experiments.runner import budget_store_payload, spec_fingerprint

    return store_key(
        SERVE_PLACE_KIND,
        {
            "spec": spec_fingerprint(spec),
            "method": method,
            "budget": budget_store_payload(budget),
            "time_limited": bool(time_limited),
        },
    )


class ServeEngine:
    """Request execution behind the HTTP front end (thread-safe)."""

    def __init__(
        self,
        store_dir=None,
        cache_dir=None,
        *,
        window_s: float = 0.002,
        max_batch: int = 16,
        registry: WarmRegistry | None = None,
    ):
        self.registry = registry or WarmRegistry(cache_dir)
        self.store = RunStore(store_dir) if store_dir is not None else None
        self._eval_batcher = MicroBatcher(
            self._run_evaluate_batch,
            window_s=window_s,
            max_batch=max_batch,
            name="evaluate",
        )
        self._rollout_batcher = MicroBatcher(
            self._run_rollout_batch,
            window_s=window_s,
            max_batch=max_batch,
            name="rollout",
        )
        self._policies: dict = {}  # name -> {"state": dict, "channels": tuple}
        self._networks: dict = {}  # (policy, bundle_key, grid) -> ActorCritic
        self._envs: dict = {}  # (bundle_key, grid) -> (env, batched_env)
        self._specs: dict = {}  # benchmark name -> BenchmarkSpec
        self._inflight: dict = {}  # place key -> Future
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self.requests = {"place": 0, "evaluate": 0, "rollout": 0}

    # -- shared helpers -------------------------------------------------

    def _spec(self, name: str):
        """Benchmark specs are pure in their name; build each once."""
        with self._lock:
            spec = self._specs.get(name)
        if spec is not None:
            return spec
        try:
            spec = get_benchmark(name)
        except KeyError as error:
            raise BadRequest(str(error)) from error
        with self._lock:
            return self._specs.setdefault(name, spec)

    def _count(self, kind: str) -> None:
        with self._lock:
            self.requests[kind] += 1

    # -- place ----------------------------------------------------------

    def place(self, system: str, method: str, budget) -> dict:
        """Run (or recall) one full placement arm.

        Mirrors the CLI's single-method semantics exactly: no RL arm
        runs alongside, so a ``sa_time_matched`` fast-SA request runs
        without a time limit and is recorded ``time_matched: False`` —
        the same result ``repro.cli train/sa`` produces for the same
        (system, method, budget).

        Response ``cache`` field: ``"hit"`` (served from the store,
        zero compute), ``"inflight"`` (coalesced onto an identical
        concurrent request), ``"miss"`` (computed here).
        """
        self._count("place")
        spec = self._spec(system)
        # Single-method semantics (see method_arm_jobs): time matching
        # was *requested* but no RL arm feeds a limit.
        time_matched = (
            False
            if method == "TAP-2.5D*(FastThermal)" and budget.sa_time_matched
            else None
        )
        key = place_store_key(
            spec, method, budget, time_limited=bool(time_matched)
        )
        if self.store is not None:
            hit, cached = self.store.fetch(key)
            if hit:
                return self._place_response(
                    cached, key, cache="hit", evaluator_calls=0
                )
        leader = False
        with self._lock:
            future = self._inflight.get(key)
            if future is None:
                future = Future()
                self._inflight[key] = future
                leader = True
        if not leader:
            value = future.result()
            return self._place_response(
                value, key, cache="inflight", evaluator_calls=0
            )
        try:
            bundle = self.registry.bundle(spec, budget)
            with bundle.lock:
                calls_before = bundle.evaluator_calls()
                capture: dict = {}
                result = dispatch_method_arm(
                    spec,
                    method,
                    budget,
                    bundle.evaluators,
                    time_matched=time_matched,
                    capture=capture,
                )
                calls = bundle.evaluator_calls() - calls_before
            placement = capture.get("placement")
            value = {
                "result": result,
                "placement": (
                    placement.as_dict() if placement is not None else None
                ),
            }
            if self.store is not None:
                self.store.put(key, value)
            future.set_result(value)
        except BaseException as error:
            future.set_exception(error)
            raise
        finally:
            with self._lock:
                self._inflight.pop(key, None)
        return self._place_response(
            value, key, cache="miss", evaluator_calls=calls
        )

    @staticmethod
    def _place_response(value, key, cache, evaluator_calls) -> dict:
        return {
            "result": method_result_to_dict(value["result"]),
            "placement": value["placement"],
            "cache": cache,
            "store_key": key,
            "evaluator_calls": evaluator_calls,
        }

    # -- evaluate -------------------------------------------------------

    def evaluate(self, system: str, placement: dict, evaluator: str, budget) -> dict:
        """Reward/thermal evaluation of one placement (micro-batched).

        Concurrent requests sharing a (bundle, evaluator) group ride
        one ``RewardCalculator.evaluate_batch`` call — bitwise equal to
        the scalar path at any batch composition.
        """
        self._count("evaluate")
        spec = self._spec(system)
        bundle = self.registry.bundle(spec, budget)
        try:
            decoded = Placement.from_dict(spec.system, placement)
        except (KeyError, ValueError, TypeError) as error:
            raise BadRequest(f"invalid placement: {error}") from error
        response = self._eval_batcher.call((bundle, evaluator), decoded)
        return response

    def _run_evaluate_batch(self, group_key, placements) -> list:
        bundle, evaluator = group_key
        calculator = bundle.evaluators[
            "reward_fast" if evaluator == "fast" else "reward_solver"
        ]
        with bundle.lock:
            breakdowns = calculator.evaluate_batch(placements)
        n = len(placements)
        return [
            dict(breakdown_to_dict(b), evaluator=evaluator, batch_size=n)
            for b in breakdowns
        ]

    # -- policies & rollouts --------------------------------------------

    def register_policy(
        self, name: str, payload: bytes, channels=(16, 32, 32)
    ) -> dict:
        """Register a trained policy from its broadcast payload bytes.

        ``payload`` is the exact sealed format the collection workers
        receive (``nn/serialization``, kind ``collector-policy``);
        integrity and schema are verified on ingest.  Re-registering a
        name replaces it and invalidates cached network instances.
        """
        if not name:
            raise BadRequest("policy name must be non-empty")
        try:
            state = loads_payload(payload, kind=POLICY_PAYLOAD_KIND)
        except Exception as error:
            raise BadRequest(f"invalid policy payload: {error}") from error
        channels = tuple(int(c) for c in channels)
        with self._lock:
            self._policies[name] = {"state": state, "channels": channels}
            self._networks = {
                cache_key: network
                for cache_key, network in self._networks.items()
                if cache_key[0] != name
            }
        n_params = sum(np.asarray(v).size for v in state.values())
        return {"policy": name, "channels": list(channels), "parameters": int(n_params)}

    def policies(self) -> dict:
        with self._lock:
            return {
                name: {"channels": list(info["channels"])}
                for name, info in self._policies.items()
            }

    def _rollout_context(self, policy: str, spec, budget):
        """(network, batched_env, bundle) for one rollout group —
        networks and envs are built once per (policy, bundle, grid)."""
        from repro.agent.networks import ActorCritic
        from repro.env import BatchedFloorplanEnv, EnvConfig, FloorplanEnv

        with self._lock:
            info = self._policies.get(policy)
        if info is None:
            raise BadRequest(
                f"unknown policy {policy!r}; register it via POST /v1/policies"
            )
        bundle = self.registry.bundle(spec, budget)
        grid = budget.grid_size
        env_key = (bundle.key, spec.name, grid)
        net_key = (policy, bundle.key, spec.name, grid)
        with bundle.lock:
            envs = self._envs.get(env_key)
            if envs is None:
                env_args = (
                    spec.system,
                    bundle.evaluators["reward_fast"],
                    EnvConfig(grid_size=grid),
                )
                envs = (FloorplanEnv(*env_args), BatchedFloorplanEnv(*env_args))
                self._envs[env_key] = envs
            network = self._networks.get(net_key)
            if network is None:
                env = envs[0]
                network = ActorCritic(
                    env.observation_shape,
                    env.n_actions,
                    channels=info["channels"],
                    rng=np.random.default_rng(0),
                )
                network.load_state_dict(info["state"])
                self._networks[net_key] = network
        return network, envs[1], bundle

    def rollout(
        self, policy: str, system: str, seed: int, greedy: bool, budget
    ) -> dict:
        """One policy rollout (micro-batched through ``collect_wave``).

        Each request's episode samples exclusively from its own
        ``SeedSequence(seed).rng("serve.rollout")`` stream; per-row
        results are wave-width-invariant for widths >= 2 (shape-stable
        GEMMs), so the batch a request happens to ride never changes
        its trajectory.  A lone request is padded with a throwaway
        companion row rather than run at width 1 — the width-1 GEMV
        kernel can differ in the last ulp.
        """
        self._count("rollout")
        spec = self._spec(system)
        group = (policy, spec.name, budget.grid_size, bool(greedy))
        return self._rollout_batcher.call((group, budget), (seed, spec))

    def _run_rollout_batch(self, group_key, payloads) -> list:
        (policy, _spec_name, _grid, greedy), budget = group_key
        seeds = [seed for seed, _ in payloads]
        spec = payloads[0][1]
        network, batched_env, bundle = self._rollout_context(
            policy, spec, budget
        )
        rngs = [
            SeedSequence(seed).rng("serve.rollout") for seed in seeds
        ]
        padded = len(rngs) == 1
        if padded:
            # Fresh generator on the same stream: the pad row's draws
            # never touch row 0's generator, and its result is dropped.
            rngs.append(SeedSequence(seeds[0]).rng("serve.rollout"))
        with bundle.lock:
            pairs = collect_wave(network, batched_env, rngs, greedy=greedy)
        if padded:
            pairs = pairs[:1]
        responses = []
        for (episode, info), seed in zip(pairs, seeds):
            deadlock = bool(info.get("deadlock"))
            placement = info.get("placement")
            response = {
                "seed": seed,
                "greedy": bool(greedy),
                "reward": episode.rewards[-1] if episode.rewards else None,
                "steps": episode.length,
                "deadlock": deadlock,
                "placement": (
                    placement.as_dict() if placement is not None else None
                ),
                "batch_size": len(seeds),
            }
            breakdown = info.get("breakdown")
            if breakdown is not None:
                response["breakdown"] = breakdown_to_dict(breakdown)
            if deadlock:
                response["unplaceable"] = info.get("unplaceable")
            responses.append(response)
        return responses

    # -- observability --------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            requests = dict(self.requests)
            n_policies = len(self._policies)
            n_networks = len(self._networks)
            inflight = len(self._inflight)
        stats = {
            "uptime_s": time.monotonic() - self._started,
            "requests": requests,
            "registry": self.registry.stats(),
            "batchers": {
                "evaluate": self._eval_batcher.stats(),
                "rollout": self._rollout_batcher.stats(),
            },
            "policies": n_policies,
            "networks": n_networks,
            "inflight_places": inflight,
            "benchmarks": benchmark_names(),
        }
        if self.store is not None:
            hits, misses = self.store.counters()
            stats["store"] = {
                "root": str(self.store.root),
                "hits": hits,
                "misses": misses,
            }
        return stats

    def close(self) -> None:
        self._eval_batcher.close()
        self._rollout_batcher.close()
