"""Small cross-cutting utilities: seeding, timing, logging."""

from repro.utils.seeding import SeedSequence, new_rng
from repro.utils.timer import Timer, timed
from repro.utils.log import get_logger

__all__ = ["SeedSequence", "new_rng", "Timer", "timed", "get_logger"]
