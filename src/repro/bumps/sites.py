"""Candidate microbump sites on a chiplet's perimeter.

Die-to-die signals escape through microbumps near the die edge (the
interior is taken by power/ground).  Sites are generated as concentric
perimeter rings with a given pitch, innermost ring first, in interposer
coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import Rect

__all__ = ["BumpSite", "perimeter_sites"]


@dataclass(frozen=True)
class BumpSite:
    """One candidate bump location on a die.

    Attributes
    ----------
    x, y:
        Position in interposer coordinates (mm).
    edge:
        Which die edge the site belongs to: ``"n" | "e" | "s" | "w"``.
    ring:
        0 for the outermost ring, increasing inward.
    """

    x: float
    y: float
    edge: str
    ring: int


def perimeter_sites(
    rect: Rect,
    pitch: float = 0.4,
    rings: int = 2,
    edge_margin: float = 0.15,
) -> list:
    """Generate bump sites along the perimeter of ``rect``.

    Parameters
    ----------
    rect:
        Die footprint in interposer coordinates.
    pitch:
        Site spacing along an edge in mm (also the ring-to-ring spacing).
    rings:
        Number of concentric rings.
    edge_margin:
        Distance from the die edge to the outermost ring, in mm.

    Returns
    -------
    list of :class:`BumpSite`, outermost ring first, each ring ordered
    N, E, S, W and positions ascending along the edge.  Corner positions
    are excluded from the vertical edges to avoid duplicates.
    """
    if pitch <= 0:
        raise ValueError("pitch must be positive")
    if rings < 1:
        raise ValueError("need at least one ring")
    sites = []
    for ring in range(rings):
        inset = edge_margin + ring * pitch
        x1, x2 = rect.x + inset, rect.x2 - inset
        y1, y2 = rect.y + inset, rect.y2 - inset
        if x1 >= x2 or y1 >= y2:
            break  # die too small for this ring
        xs = _positions(x1, x2, pitch)
        ys = _positions(y1, y2, pitch)
        for x in xs:
            sites.append(BumpSite(x, y2, "n", ring))
            sites.append(BumpSite(x, y1, "s", ring))
        for y in ys[1:-1] if len(ys) > 2 else []:
            sites.append(BumpSite(x2, y, "e", ring))
            sites.append(BumpSite(x1, y, "w", ring))
    return sites


def _positions(lo: float, hi: float, pitch: float) -> np.ndarray:
    """Evenly pitched positions in [lo, hi], centered in the span."""
    span = hi - lo
    count = max(int(span / pitch) + 1, 1)
    used = (count - 1) * pitch
    start = lo + (span - used) / 2.0
    return start + np.arange(count) * pitch
