"""Thermal analysis substrate.

Two evaluators with one interface:

* :class:`GridThermalSolver` — a HotSpot-style compact thermal model
  (finite-volume RC network over a layered 2.5D stack, solved with
  scipy.sparse).  This is the reproduction's stand-in for the HotSpot
  binary and serves as ground truth.
* :class:`FastThermalModel` — the paper's contribution: an LTI
  superposition surrogate built from self-/mutual-thermal-resistance
  tables characterized once against the grid solver.

Both expose ``evaluate(placement) -> ThermalResult`` plus batched
entries (``evaluate_many`` / ``max_temperatures``): the fast model
vectorizes its table lookups across the batch, while the grid solver
back-substitutes all right-hand sides through one shared sparse
factorization (its homogeneous conductance matrix is
placement-independent) — bitwise identical to sequential solves, which
is what lets the HotSpot-backed SA arm run multi-chain.
"""

from repro.thermal.materials import Material, MATERIALS
from repro.thermal.stack import Layer, LayerStack, default_chiplet_stack
from repro.thermal.config import ThermalConfig
from repro.thermal.result import ThermalResult
from repro.thermal.grid_solver import GridThermalSolver
from repro.thermal.fast_model import FastThermalModel, ResistanceTables
from repro.thermal.characterize import characterize_tables
from repro.thermal.metrics import error_metrics
from repro.thermal.transient import TransientResult, TransientThermalSolver

__all__ = [
    "Material",
    "MATERIALS",
    "Layer",
    "LayerStack",
    "default_chiplet_stack",
    "ThermalConfig",
    "ThermalResult",
    "GridThermalSolver",
    "FastThermalModel",
    "ResistanceTables",
    "characterize_tables",
    "error_metrics",
    "TransientThermalSolver",
    "TransientResult",
]
