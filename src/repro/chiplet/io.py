"""JSON (de)serialization for chiplet systems.

The on-disk format is a plain dictionary so benchmark systems can be
shipped as data files and users can define their own designs without
touching Python.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.chiplet.chiplet import Chiplet
from repro.chiplet.netlist import Net
from repro.chiplet.system import ChipletSystem, Interposer

__all__ = ["system_to_dict", "system_from_dict", "save_system", "load_system"]

_FORMAT_VERSION = 1


def system_to_dict(system: ChipletSystem) -> dict:
    """Serialize a system to JSON-compatible primitives."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": system.name,
        "interposer": {
            "width": system.interposer.width,
            "height": system.interposer.height,
            "min_spacing": system.interposer.min_spacing,
        },
        "chiplets": [
            {
                "name": c.name,
                "width": c.width,
                "height": c.height,
                "power": c.power,
                "kind": c.kind,
                "rotatable": c.rotatable,
                "metadata": dict(c.metadata),
            }
            for c in system.chiplets
        ],
        "nets": [
            {"src": n.src, "dst": n.dst, "wires": n.wires, "name": n.name}
            for n in system.nets
        ],
        "metadata": dict(system.metadata),
    }


def system_from_dict(data: dict) -> ChipletSystem:
    """Inverse of :func:`system_to_dict` (tolerates missing optionals)."""
    version = data.get("format_version", _FORMAT_VERSION)
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported system format version {version}")
    interposer = Interposer(
        width=data["interposer"]["width"],
        height=data["interposer"]["height"],
        min_spacing=data["interposer"].get("min_spacing", 0.1),
    )
    chiplets = tuple(
        Chiplet(
            name=c["name"],
            width=c["width"],
            height=c["height"],
            power=c["power"],
            kind=c.get("kind", "generic"),
            rotatable=c.get("rotatable", True),
            metadata=c.get("metadata", {}),
        )
        for c in data["chiplets"]
    )
    nets = tuple(
        Net(
            src=n["src"],
            dst=n["dst"],
            wires=n.get("wires", 1),
            name=n.get("name", ""),
        )
        for n in data.get("nets", [])
    )
    return ChipletSystem(
        name=data["name"],
        interposer=interposer,
        chiplets=chiplets,
        nets=nets,
        metadata=data.get("metadata", {}),
    )


def save_system(system: ChipletSystem, path) -> None:
    """Write a system as pretty-printed JSON."""
    Path(path).write_text(json.dumps(system_to_dict(system), indent=2))


def load_system(path) -> ChipletSystem:
    """Read a system previously written by :func:`save_system`."""
    return system_from_dict(json.loads(Path(path).read_text()))
