"""Tests for the floorplanning environment: masks, observations, episodes."""

import numpy as np
import pytest

from repro.chiplet import Chiplet, ChipletSystem, Interposer, Net, Placement
from repro.chiplet.validate import validate_placement
from repro.env import EnvConfig, FloorplanEnv, ObservationBuilder, feasible_cells
from repro.geometry import PlacementGrid, Rect
from repro.reward import RewardCalculator, RewardConfig


@pytest.fixture
def env(small_system, small_fast_model):
    calc = RewardCalculator(
        small_fast_model, RewardConfig(lambda_wl=1e-4, use_bump_assignment=False)
    )
    return FloorplanEnv(small_system, calc, EnvConfig(grid_size=15))


class TestFeasibleCells:
    def test_empty_interposer_bounds_only(self):
        grid = PlacementGrid(30, 30, 15, 15)  # 2 mm cells
        mask = feasible_cells(grid, 10.0, 10.0, [])
        # Origins up to 20 mm -> cols 0..10 inclusive.
        assert mask[:11, :11].all()
        assert not mask[11:, :].any()
        assert not mask[:, 11:].any()

    def test_oversized_die_infeasible(self):
        grid = PlacementGrid(30, 30, 15, 15)
        assert not feasible_cells(grid, 31.0, 5.0, []).any()

    def test_placed_die_blocks_neighbourhood(self):
        grid = PlacementGrid(30, 30, 15, 15)
        placed = [Rect(10, 10, 10, 10)]
        mask = feasible_cells(grid, 6.0, 6.0, placed)
        # Origin (10,10) overlaps; origin (2,2) does not (2+6=8 < 10).
        assert not mask[5, 5]
        assert mask[1, 1]
        # Origin (16, 16) within placed rect -> blocked; (20, 20) touches
        # the placed die's corner exactly -> allowed (no overlap).
        assert not mask[8, 8]
        assert mask[10, 10]

    def test_spacing_shrinks_feasibility(self):
        grid = PlacementGrid(30, 30, 15, 15)
        placed = [Rect(10, 10, 10, 10)]
        no_gap = feasible_cells(grid, 6.0, 6.0, placed, min_spacing=0.0)
        gap = feasible_cells(grid, 6.0, 6.0, placed, min_spacing=1.0)
        assert gap.sum() < no_gap.sum()
        # (20, 20) is flush against the die: legal without spacing only.
        assert no_gap[10, 10] and not gap[10, 10]

    def test_every_masked_cell_is_actually_legal(self, small_system):
        grid = PlacementGrid(30, 30, 10, 10)
        placed = [Rect(3, 3, 9, 9), Rect(18, 15, 8, 8)]
        spacing = 0.5
        mask = feasible_cells(grid, 7.0, 5.0, placed, min_spacing=spacing)
        for row in range(10):
            for col in range(10):
                if not mask[row, col]:
                    continue
                x, y = grid.cell_origin(row, col)
                rect = Rect(x, y, 7.0, 5.0)
                assert rect.x2 <= 30 and rect.y2 <= 30
                for other in placed:
                    assert not rect.overlaps(other)
                    assert rect.gap(other) >= spacing - 1e-9


class TestObservationBuilder:
    def test_channel_semantics(self, small_system):
        grid = PlacementGrid(30, 30, 15, 15)
        builder = ObservationBuilder(small_system, grid)
        placement = Placement(small_system)
        placement.place("hot", 0, 0)
        obs = builder.build(placement, "warm")
        assert obs.shape == builder.shape
        # Occupancy marks the hot die's cells.
        assert obs[0, 0, 0] > 0.9
        assert obs[0, -1, -1] == 0.0
        # Power channel: hot die has the max density -> 1.0 at its cells.
        assert obs[1].max() == pytest.approx(1.0)
        # Connectivity: hot-warm share a net -> marked.
        assert obs[2].max() > 0.0
        # Constant channels.
        assert np.all(obs[3] == small_system.chiplet("warm").width / 30)
        assert np.all(obs[6] == 1.0 / 3.0)

    def test_no_connectivity_when_unrelated(self, small_system):
        grid = PlacementGrid(30, 30, 15, 15)
        builder = ObservationBuilder(small_system, grid)
        placement = Placement(small_system)
        placement.place("cold", 0, 0)
        # hot shares no net with cold in the fixture system.
        obs = builder.build(placement, "hot")
        assert obs[2].max() == 0.0

    def test_values_bounded(self, small_system):
        grid = PlacementGrid(30, 30, 15, 15)
        builder = ObservationBuilder(small_system, grid)
        placement = Placement(small_system)
        placement.place("hot", 10, 10)
        placement.place("warm", 0, 22)
        obs = builder.build(placement, "cold")
        assert obs.min() >= 0.0
        assert obs.max() <= 1.0 + 1e-9


class TestFloorplanEnv:
    def test_reset_shapes(self, env):
        obs, mask = env.reset()
        assert obs.shape == env.observation_shape
        assert mask.shape == (env.n_actions,)
        assert mask.any()

    def test_placement_order_largest_first(self, env):
        env.reset()
        assert env.current_chiplet_name == "hot"  # 8x8 is the largest

    def test_full_episode_legal_and_rewarded(self, env):
        obs, mask = env.reset()
        rng = np.random.default_rng(0)
        done = False
        steps = 0
        while not done:
            action = int(rng.choice(np.flatnonzero(mask)))
            result = env.step(action)
            done = result.done
            if not done:
                obs, mask = result.observation, result.mask
            steps += 1
        assert steps == env.episode_length
        assert result.reward < 0.0
        assert "breakdown" in result.info
        validate_placement(result.info["placement"])

    def test_masked_action_rejected(self, env):
        _, mask = env.reset()
        infeasible = int(np.flatnonzero(~mask)[0]) if (~mask).any() else None
        if infeasible is not None:
            with pytest.raises(ValueError, match="masked"):
                env.step(infeasible)

    def test_out_of_range_action_rejected(self, env):
        env.reset()
        with pytest.raises(ValueError, match="range"):
            env.step(env.n_actions)

    def test_step_before_reset_rejected(self, small_system, small_fast_model):
        calc = RewardCalculator(small_fast_model)
        env2 = FloorplanEnv(small_system, calc, EnvConfig(grid_size=10))
        with pytest.raises(RuntimeError):
            env2.step(0)

    def test_rotation_doubles_actions(self, small_system, small_fast_model):
        calc = RewardCalculator(small_fast_model)
        base = FloorplanEnv(small_system, calc, EnvConfig(grid_size=10))
        rotated = FloorplanEnv(
            small_system, calc, EnvConfig(grid_size=10, allow_rotation=True)
        )
        assert rotated.n_actions == 2 * base.n_actions

    def test_rotated_action_places_rotated(self, small_system, small_fast_model):
        calc = RewardCalculator(
            small_fast_model, RewardConfig(use_bump_assignment=False)
        )
        env2 = FloorplanEnv(
            small_system, calc, EnvConfig(grid_size=10, allow_rotation=True)
        )
        env2.reset()
        # Skip to the non-square "cold" die (4x6): place hot and warm first.
        while env2.current_chiplet_name != "cold":
            _, mask = env2._observe()
            action = int(np.flatnonzero(mask[: env2.grid.n_cells])[0])
            env2.step(action)
        _, mask = env2._observe()
        rotated_actions = np.flatnonzero(mask[env2.grid.n_cells :])
        assert len(rotated_actions) > 0
        result = env2.step(int(rotated_actions[0]) + env2.grid.n_cells)
        placement = result.info["placement"]
        rect = placement.footprint("cold")
        assert (rect.w, rect.h) == (6.0, 4.0)

    def test_deadlock_detection(self, small_fast_model, small_interposer):
        # Dies sized so a bad first move can starve the second.
        system = ChipletSystem(
            "dead",
            small_interposer,
            (
                Chiplet("big", 28.0, 14.0, 1.0),
                Chiplet("wide", 28.0, 14.0, 1.0),
            ),
        )
        calc = _StubCalculator()
        env2 = FloorplanEnv(system, calc, EnvConfig(grid_size=10))
        env2.reset()
        # Place "big" mid-height: leaves < 14 mm above and below.
        grid = env2.grid
        row = 3  # origin y = 9 -> occupies 9..23 on a 30 tall region
        action = grid.flat_index(row, 0)
        _, mask = env2._observe()
        assert mask[action]
        result = env2.step(action)
        assert result.done
        assert result.info.get("deadlock")
        assert result.reward == env2.config.deadlock_penalty


class _StubCalculator:
    """RewardCalculator stand-in that never touches thermal models."""

    def evaluate(self, placement):
        raise AssertionError("terminal evaluation should not run on deadlock")
