"""Tests for seeding, timers and logging utilities."""

import logging
import time

import pytest

from repro.utils import SeedSequence, Timer, get_logger, new_rng, timed
from repro.utils.seeding import derive_seed


class TestSeeding:
    def test_same_seed_same_stream(self):
        a = new_rng(42).random(5)
        b = new_rng(42).random(5)
        assert (a == b).all()

    def test_derive_seed_stable(self):
        assert derive_seed(1, "env") == derive_seed(1, "env")

    def test_derive_seed_differs_by_stream(self):
        assert derive_seed(1, "env") != derive_seed(1, "ppo")

    def test_derive_seed_differs_by_base(self):
        assert derive_seed(1, "env") != derive_seed(2, "env")

    def test_seed_sequence_reproducible(self):
        s1 = SeedSequence(7).rng("x").random(3)
        s2 = SeedSequence(7).rng("x").random(3)
        assert (s1 == s2).all()

    def test_seed_sequence_streams_independent(self):
        seq = SeedSequence(7)
        assert not (seq.rng("a").random(3) == seq.rng("b").random(3)).all()


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        with t:
            time.sleep(0.01)
        assert t.elapsed >= 0.02
        assert len(t.laps) == 2
        assert t.mean_lap == pytest.approx(t.elapsed / 2)

    def test_double_start_raises(self):
        t = Timer()
        t.start()
        with pytest.raises(RuntimeError):
            t.start()
        t.stop()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0 and not t.laps

    def test_timed_context(self):
        stats = {}
        with timed(stats, "work"):
            time.sleep(0.005)
        with timed(stats, "work"):
            pass
        assert stats["work"] >= 0.005


class TestLogger:
    def test_namespacing(self):
        logger = get_logger("trainer")
        assert logger.name == "repro.trainer"

    def test_full_name_kept(self):
        logger = get_logger("repro.thermal")
        assert logger.name == "repro.thermal"

    def test_is_logging_logger(self):
        assert isinstance(get_logger("x"), logging.Logger)
