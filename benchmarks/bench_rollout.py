"""Rollout-engine throughput: sequential vs lockstep-batched collection.

Measures episodes/sec of ``RLPlannerTrainer.collect_episodes`` on the
default 32x32-grid synthetic system for ``batch_size=1`` (the original
sequential engine) against batched widths (16 by default), reporting the
median over alternating measurement windows so single-core frequency
noise cannot bias one arm.

The reward path uses the bundle wirelength estimator so the measurement
isolates the rollout engine (observation/mask construction, the
actor-critic forward, terminal thermal evaluation).  Per-wire microbump
assignment costs the same in both arms and would only dilute the ratio.

Usage::

    PYTHONPATH=src python benchmarks/bench_rollout.py            # full
    PYTHONPATH=src python benchmarks/bench_rollout.py --smoke    # CI, ~30 s
    PYTHONPATH=src python benchmarks/bench_rollout.py --strict   # exit 1 below target

Target (tracked in the README): batch_size=16 achieves >= 3x the
sequential engine's episodes/sec.
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time

from repro.agent import RLPlannerTrainer, TrainerConfig
from repro.env import EnvConfig, FloorplanEnv
from repro.reward import RewardCalculator, RewardConfig
from repro.rl import PPOConfig
from repro.systems import synthetic_system
from repro.thermal import FastThermalModel, ThermalConfig
from repro.thermal.characterize import load_or_characterize

DEFAULT_CACHE_DIR = ".cache/thermal_tables"


def build_env(grid_size: int, system_seed: int) -> FloorplanEnv:
    """The benchmark scenario: one synthetic system + fast thermal model."""
    system = synthetic_system(seed=system_seed)
    config = ThermalConfig()
    sizes = []
    for chiplet in system.chiplets:
        sizes.append((chiplet.width, chiplet.height))
        if chiplet.rotatable:
            sizes.append((chiplet.height, chiplet.width))
    tables = load_or_characterize(
        system.interposer,
        sizes,
        config,
        position_samples=(5, 5),
        cache_dir=DEFAULT_CACHE_DIR,
    )
    calc = RewardCalculator(
        FastThermalModel(tables, config),
        RewardConfig(use_bump_assignment=False),
    )
    return FloorplanEnv(system, calc, EnvConfig(grid_size=grid_size))


def make_trainer(env: FloorplanEnv, batch_size: int, seed: int) -> RLPlannerTrainer:
    return RLPlannerTrainer(
        env,
        TrainerConfig(
            epochs=1,
            episodes_per_epoch=16,
            batch_size=batch_size,
            seed=seed,
            log_every=0,
            ppo=PPOConfig(),
        ),
    )


def measure_window(trainer: RLPlannerTrainer, episodes: int, seconds: float) -> float:
    """Episodes/sec over one timed window of repeated collections."""
    collected = 0
    start = time.perf_counter()
    while True:
        trainer.collect_episodes(episodes)
        collected += episodes
        elapsed = time.perf_counter() - start
        if elapsed >= seconds:
            return collected / elapsed


def run(args) -> int:
    env = build_env(args.grid, args.system_seed)
    widths = [int(w) for w in args.batch_sizes.split(",")]
    trainers = {w: make_trainer(env, w, args.seed) for w in widths}
    for trainer in trainers.values():  # warm caches and code paths
        trainer.collect_episodes(args.episodes)

    samples: dict = {w: [] for w in widths}
    for round_index in range(args.rounds):
        # Alternate arms inside each round so slow machine phases hit
        # every width, not just one.
        for width in widths:
            rate = measure_window(
                trainers[width], args.episodes, args.window_seconds
            )
            samples[width].append(rate)
            print(
                f"round {round_index}: batch_size={width:<3d} "
                f"{rate:8.1f} eps/s"
            )

    medians = {w: statistics.median(samples[w]) for w in widths}
    print()
    for width in widths:
        print(f"batch_size={width:<3d} median {medians[width]:8.1f} eps/s")
    baseline = medians[widths[0]]
    status = 0
    for width in widths[1:]:
        speedup = medians[width] / baseline
        verdict = ""
        if not args.smoke:
            ok = speedup >= args.target
            verdict = "  [ok]" if ok else f"  [below {args.target:.1f}x target]"
            if not ok and args.strict:
                status = 1
        print(
            f"speedup batch_size={width} vs {widths[0]}: "
            f"{speedup:.2f}x{verdict}"
        )
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--grid", type=int, default=32, help="placement grid size")
    parser.add_argument(
        "--batch-sizes",
        type=str,
        default="1,16",
        help="comma-separated rollout widths; the first is the baseline",
    )
    parser.add_argument("--episodes", type=int, default=16, help="episodes per collection call")
    parser.add_argument("--rounds", type=int, default=5, help="alternating measurement rounds")
    parser.add_argument(
        "--window-seconds",
        type=float,
        default=2.0,
        help="minimum seconds per measurement window",
    )
    parser.add_argument("--seed", type=int, default=0, help="trainer seed")
    parser.add_argument("--system-seed", type=int, default=1, help="synthetic system seed")
    parser.add_argument(
        "--target", type=float, default=3.0, help="required speedup multiple"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero when a width misses the target",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single fast round, no target check (CI)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.rounds = 1
        args.episodes = min(args.episodes, 8)
        args.window_seconds = min(args.window_seconds, 0.5)
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
