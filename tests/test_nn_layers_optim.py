"""Tests for layers, initializers, optimizers and distributions."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Conv2d,
    Flatten,
    Linear,
    MaskedCategorical,
    Module,
    ReLU,
    SGD,
    Sequential,
    Tanh,
    Tensor,
    clip_grad_norm,
    kaiming_uniform,
    load_state_dict,
    orthogonal,
    save_state_dict,
)


class TestInit:
    def test_orthogonal_is_orthogonal(self):
        rng = np.random.default_rng(0)
        w = orthogonal((6, 6), rng=rng)
        np.testing.assert_allclose(w @ w.T, np.eye(6), atol=1e-10)

    def test_orthogonal_gain(self):
        rng = np.random.default_rng(0)
        w = orthogonal((4, 4), gain=2.0, rng=rng)
        np.testing.assert_allclose(w @ w.T, 4.0 * np.eye(4), atol=1e-10)

    def test_orthogonal_conv_shape(self):
        w = orthogonal((8, 3, 3, 3), rng=np.random.default_rng(1))
        assert w.shape == (8, 3, 3, 3)

    def test_orthogonal_needs_2d(self):
        with pytest.raises(ValueError):
            orthogonal((5,))

    def test_kaiming_bounds(self):
        w = kaiming_uniform((100, 50), rng=np.random.default_rng(2))
        bound = np.sqrt(1.0 / 50)
        assert np.all(np.abs(w) <= bound)


class TestLayers:
    def test_linear_shapes(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((2, 4))))
        assert out.shape == (2, 3)

    def test_linear_trains_toward_target(self):
        rng = np.random.default_rng(0)
        layer = Linear(3, 1, rng=rng)
        optimizer = Adam(layer.parameters(), lr=0.05)
        x = rng.normal(size=(64, 3))
        true_w = np.array([[1.0], [-2.0], [0.5]])
        y = x @ true_w
        for _ in range(300):
            optimizer.zero_grad()
            pred = layer(Tensor(x))
            loss = ((pred - Tensor(y)) ** 2).mean()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(layer.weight.data, true_w, atol=0.05)

    def test_conv_layer_shapes(self):
        layer = Conv2d(3, 8, 3, stride=2, padding=1, rng=np.random.default_rng(0))
        out = layer(Tensor(np.zeros((2, 3, 16, 16))))
        assert out.shape == (2, 8, 8, 8)

    def test_sequential_and_flatten(self):
        rng = np.random.default_rng(0)
        model = Sequential(
            Conv2d(1, 4, 3, padding=1, rng=rng),
            ReLU(),
            Flatten(),
            Linear(4 * 8 * 8, 10, rng=rng),
            Tanh(),
        )
        out = model(Tensor(np.zeros((2, 1, 8, 8))))
        assert out.shape == (2, 10)
        assert len(model) == 5
        assert isinstance(model[1], ReLU)

    def test_parameter_discovery(self):
        rng = np.random.default_rng(0)
        model = Sequential(Linear(2, 3, rng=rng), ReLU(), Linear(3, 1, rng=rng))
        assert len(model.parameters()) == 4  # two weights + two biases
        assert model.n_parameters() == 2 * 3 + 3 + 3 * 1 + 1

    def test_zero_grad(self):
        layer = Linear(2, 2, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestStateDict:
    def _model(self):
        rng = np.random.default_rng(7)
        return Sequential(Linear(3, 4, rng=rng), ReLU(), Linear(4, 2, rng=rng))

    def test_roundtrip(self, tmp_path):
        model = self._model()
        state = model.state_dict()
        path = tmp_path / "ckpt.npz"
        save_state_dict(state, path)
        loaded = load_state_dict(path)

        model2 = self._model()
        model2.modules[0].weight.data[...] = 0.0  # perturb
        model2.load_state_dict(loaded)
        x = Tensor(np.ones((1, 3)))
        np.testing.assert_allclose(model(x).data, model2(x).data)

    def test_missing_key_raises(self):
        model = self._model()
        with pytest.raises(KeyError):
            model.load_state_dict({})

    def test_shape_mismatch_raises(self):
        model = self._model()
        state = model.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_custom_module_nesting(self):
        class Custom(Module):
            def __init__(self):
                rng = np.random.default_rng(0)
                self.encoder = Linear(2, 4, rng=rng)
                self.heads = [Linear(4, 1, rng=rng), Linear(4, 1, rng=rng)]

            def forward(self, x):
                h = self.encoder(x)
                return self.heads[0](h) + self.heads[1](h)

        module = Custom()
        assert len(module.parameters()) == 6
        state = module.state_dict()
        assert any(key.startswith("heads.0.") for key in state)
        module.load_state_dict(state)


class TestOptimizers:
    def _quadratic_params(self):
        return [Tensor(np.array([5.0, -3.0]), requires_grad=True)]

    def test_sgd_descends(self):
        params = self._quadratic_params()
        optimizer = SGD(params, lr=0.1)
        for _ in range(100):
            optimizer.zero_grad()
            loss = (params[0] ** 2).sum()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(params[0].data, [0.0, 0.0], atol=1e-4)

    def test_sgd_momentum_descends(self):
        params = self._quadratic_params()
        optimizer = SGD(params, lr=0.05, momentum=0.9)
        for _ in range(300):
            optimizer.zero_grad()
            (params[0] ** 2).sum().backward()
            optimizer.step()
        np.testing.assert_allclose(params[0].data, [0.0, 0.0], atol=1e-3)

    def test_adam_descends(self):
        params = self._quadratic_params()
        optimizer = Adam(params, lr=0.2)
        for _ in range(200):
            optimizer.zero_grad()
            (params[0] ** 2).sum().backward()
            optimizer.step()
        np.testing.assert_allclose(params[0].data, [0.0, 0.0], atol=1e-3)

    def test_adam_state_roundtrip(self):
        params = self._quadratic_params()
        optimizer = Adam(params, lr=0.1)
        optimizer.zero_grad()
        (params[0] ** 2).sum().backward()
        optimizer.step()
        state = optimizer.state_dict()
        optimizer2 = Adam(params, lr=0.1)
        optimizer2.load_state_dict(state)
        assert optimizer2._t == 1

    def test_lr_validation(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.0)
        with pytest.raises(ValueError):
            SGD([], lr=-1.0)

    def test_clip_grad_norm(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        p.grad = np.full(4, 3.0)  # norm 6
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(6.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_clip_grad_norm_noop_below_limit(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        p.grad = np.full(4, 0.1)
        clip_grad_norm([p], max_norm=10.0)
        np.testing.assert_allclose(p.grad, 0.1)


class TestMaskedCategorical:
    def _dist(self, logits=None, mask=None):
        logits = Tensor(
            logits if logits is not None else np.zeros((2, 4)),
            requires_grad=True,
        )
        if mask is None:
            mask = np.ones((2, 4), dtype=bool)
        return MaskedCategorical(logits, mask)

    def test_masked_probability_zero(self):
        mask = np.array([[True, False, True, False]] * 2)
        dist = self._dist(mask=mask)
        probs = dist.probs
        assert probs[:, 1].max() < 1e-12
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_sample_respects_mask(self):
        mask = np.array([[False, True, False, False]] * 2)
        dist = self._dist(mask=mask)
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert (dist.sample(rng) == 1).all()

    def test_all_masked_rejected(self):
        with pytest.raises(ValueError, match="feasible"):
            self._dist(mask=np.zeros((2, 4), dtype=bool))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MaskedCategorical(Tensor(np.zeros((2, 4))), np.ones((2, 5), bool))

    def test_log_prob_matches_probs(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(3, 5))
        mask = np.ones((3, 5), dtype=bool)
        dist = MaskedCategorical(Tensor(logits), mask)
        actions = np.array([0, 2, 4])
        lp = dist.log_prob(actions).data
        np.testing.assert_allclose(
            np.exp(lp), dist.probs[np.arange(3), actions]
        )

    def test_log_prob_infeasible_rejected(self):
        mask = np.array([[True, False]])
        dist = MaskedCategorical(Tensor(np.zeros((1, 2))), mask)
        with pytest.raises(ValueError):
            dist.log_prob(np.array([1]))

    def test_entropy_uniform_is_log_n(self):
        dist = self._dist()
        np.testing.assert_allclose(dist.entropy().data, np.log(4.0), rtol=1e-9)

    def test_entropy_reduced_by_masking(self):
        mask = np.array([[True, True, False, False]] * 2)
        dist = self._dist(mask=mask)
        np.testing.assert_allclose(dist.entropy().data, np.log(2.0), atol=1e-6)

    def test_mode_is_argmax(self):
        logits = np.array([[0.0, 5.0, 1.0, 2.0]])
        mask = np.array([[True, False, True, True]])
        dist = MaskedCategorical(Tensor(logits), mask)
        assert dist.mode()[0] == 3  # 5.0 is masked out

    def test_gradient_flows_through_log_prob(self):
        logits = Tensor(np.zeros((1, 3)), requires_grad=True)
        dist = MaskedCategorical(logits, np.ones((1, 3), bool))
        loss = -dist.log_prob(np.array([1])).sum()
        loss.backward()
        assert logits.grad is not None
        # Increasing the chosen logit decreases the loss.
        assert logits.grad[0, 1] < 0
