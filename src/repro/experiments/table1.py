"""Table I: four methods on the three open-source benchmark systems."""

from __future__ import annotations

from repro.experiments.report import format_comparison, format_table
from repro.experiments.runner import ExperimentBudget, run_all_methods
from repro.systems import get_benchmark
from repro.utils import get_logger

__all__ = ["run_table1"]

_logger = get_logger("experiments.table1")

TABLE1_SYSTEMS = ("multi_gpu", "cpu_dram", "ascend910")


def run_table1(
    budget: ExperimentBudget | None = None,
    systems: tuple = TABLE1_SYSTEMS,
    cache_dir=None,
    verbose: bool = True,
) -> list:
    """Regenerate Table I; returns a flat list of MethodResults."""
    budget = budget or ExperimentBudget()
    all_results = []
    for name in systems:
        spec = get_benchmark(name)
        results = run_all_methods(spec, budget, cache_dir=cache_dir)
        all_results.extend(results)
        if verbose:
            print(format_comparison(results, spec.paper_reference, spec.name))
    if verbose:
        print()
        print(format_table(all_results, title="Table I (scaled budgets)"))
    return all_results
