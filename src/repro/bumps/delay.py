"""Interconnect delay estimation for inter-chiplet links.

The paper's introduction names interconnect delay as one of the three
early-floorplanning concerns (with bump assignment and heat).  This
module estimates per-net RC delays from the assigned wirelengths using
an Elmore model with interposer-wire constants, so floorplans can be
checked against a link-latency budget.

Default constants describe a typical silicon-interposer redistribution
wire (65 nm-class BEOL): 0.8 ohm/mm and 0.2 pF/mm, plus a driver
resistance and receiver load.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bumps.assign import BumpAssignment

__all__ = ["WireTechnology", "NetDelay", "estimate_delays", "worst_net_delay"]


@dataclass(frozen=True)
class WireTechnology:
    """Electrical constants of the interposer routing layer.

    Attributes
    ----------
    resistance_per_mm:
        Wire resistance in ohm/mm.
    capacitance_per_mm:
        Wire capacitance in pF/mm.
    driver_resistance:
        Output resistance of the TX bump driver in ohm.
    load_capacitance:
        RX pin load in pF.
    """

    resistance_per_mm: float = 0.8
    capacitance_per_mm: float = 0.2
    driver_resistance: float = 25.0
    load_capacitance: float = 0.05

    def __post_init__(self) -> None:
        if min(
            self.resistance_per_mm,
            self.capacitance_per_mm,
            self.driver_resistance,
            self.load_capacitance,
        ) < 0:
            raise ValueError("technology constants must be non-negative")

    def elmore_delay_ns(self, length_mm: float) -> float:
        """50 % Elmore delay of a point-to-point wire, in ns.

        ``Rd*(Cw+Cl) + Rw*(Cw/2 + Cl)`` with distributed wire RC.
        """
        if length_mm < 0:
            raise ValueError("length must be non-negative")
        r_wire = self.resistance_per_mm * length_mm
        c_wire = self.capacitance_per_mm * length_mm
        delay_ps = 0.69 * (
            self.driver_resistance * (c_wire + self.load_capacitance)
            + r_wire * (c_wire / 2.0 + self.load_capacitance)
        )
        return delay_ps / 1000.0  # pF*ohm = ps


@dataclass(frozen=True)
class NetDelay:
    """Delay summary of one assigned net."""

    net_name: str
    src: str
    dst: str
    max_length_mm: float
    max_delay_ns: float
    mean_delay_ns: float


def estimate_delays(
    assignment: BumpAssignment, technology: WireTechnology | None = None
) -> list:
    """Per-net Elmore delays from a microbump assignment.

    The longest wire of a bundle sets the link's latency (all lanes of a
    parallel bus are retimed together), so ``max_delay_ns`` is the number
    a designer checks against the budget.
    """
    technology = technology or WireTechnology()
    results = []
    for net in assignment.nets:
        lengths = abs(net.pairs[:, 0, :] - net.pairs[:, 1, :]).sum(axis=1)
        delays = [technology.elmore_delay_ns(float(length)) for length in lengths]
        results.append(
            NetDelay(
                net_name=net.net_name,
                src=net.src,
                dst=net.dst,
                max_length_mm=float(lengths.max()),
                max_delay_ns=max(delays),
                mean_delay_ns=sum(delays) / len(delays),
            )
        )
    return results


def worst_net_delay(
    assignment: BumpAssignment, technology: WireTechnology | None = None
) -> NetDelay:
    """The slowest link of the floorplan."""
    delays = estimate_delays(assignment, technology)
    if not delays:
        raise ValueError("assignment has no nets")
    return max(delays, key=lambda d: d.max_delay_ns)
