"""Fault classification, retry/backoff policy, and per-job sweep reports.

The scheduler and collector share one model of "what went wrong":

* **Transient** faults — a worker process died (``BrokenProcessPool``,
  :class:`WorkerCrashError`), the OS hiccuped (``OSError`` and its
  subtree, which since Python 3.10 includes ``TimeoutError``), or a
  straggler blew its wall-clock budget (:class:`JobTimeoutError`).
  These do *not* reproduce from the job's inputs; re-running the job on
  a fresh worker is both safe (every job is a pure function of its
  spec) and bitwise-identical (the run store + seeded RNG streams make
  retries free of determinism risk).
* **Deterministic** faults — the job itself raised (``ValueError``,
  ``KeyError``, an assertion...).  Retrying replays the identical
  computation and fails the identical way, so these are never retried:
  they fail fast, or under ``keep_going`` are *quarantined* with their
  dependency-downstream jobs skipped.

:class:`RetryPolicy` holds the knobs (attempt budget, exponential
backoff with **seeded** jitter — deterministic in ``(seed, job_id,
attempt)`` so reruns of a flaky sweep pause identically), and
:class:`SweepReport` records the per-job outcome every fault-tolerant
entry point can hand back: succeeded / retried-then-succeeded /
cached / quarantined / skipped-downstream.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field

__all__ = [
    "JobOutcome",
    "JobTimeoutError",
    "RetryPolicy",
    "SweepReport",
    "WorkerCrashError",
    "WorkerInitError",
]


class WorkerCrashError(RuntimeError):
    """A worker process died without reporting a result (signal/exit).

    Transient by classification: the crash is attributed to the
    worker's *environment* (OOM kill, machine hiccup, injected chaos),
    not to the job's inputs — a fresh worker retries it.
    """


class JobTimeoutError(RuntimeError):
    """A job exceeded its wall-clock budget and its worker was killed.

    Transient: stragglers are assumed to be stuck on environment (lost
    I/O, a hung lock), so the job is retried on a fresh worker.
    """


class WorkerInitError(RuntimeError):
    """A worker pool's initializer raised; carries the real traceback.

    Deliberately *deterministic*: every replacement worker would fail
    the same construction, so retrying converts one clear traceback
    into an opaque ``BrokenProcessPool``.  Raising this promptly is the
    whole point — see ``collector._init_worker``.
    """


#: Exception types whose occurrence does not reproduce from the job's
#: inputs.  ``BrokenExecutor`` covers ``BrokenProcessPool``; ``OSError``
#: covers ``TimeoutError``/``ConnectionError`` (Python >= 3.10) plus
#: the usual transient I/O family.
TRANSIENT_EXCEPTIONS = (
    BrokenExecutor,
    WorkerCrashError,
    JobTimeoutError,
    OSError,
    EOFError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget and backoff schedule for transiently failing jobs.

    ``max_attempts`` counts *total* executions (1 = never retry).
    Backoff before attempt ``k+1`` is exponential with seeded jitter::

        base * factor**(k-1), capped at ``backoff_max``,
        scaled by (1 + jitter * u),  u = U[0, 1) from (seed, job, k)

    The jitter draw is a pure function of ``(seed, job_id, attempt)``
    (SHA-256, no global RNG), so two runs of the same flaky sweep back
    off identically — fault handling is as reproducible as the jobs.
    """

    max_attempts: int = 3
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff bounds must be >= 0")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")

    @classmethod
    def no_retry(cls) -> "RetryPolicy":
        """A policy that classifies but never retries (max_attempts=1)."""
        return cls(max_attempts=1)

    @staticmethod
    def is_transient(error: BaseException) -> bool:
        """Whether ``error`` is environmental (retry) vs reproducible.

        :class:`WorkerInitError` is checked first: it rides transport
        that looks transient but marks a failure every fresh worker
        would reproduce.
        """
        if isinstance(error, WorkerInitError):
            return False
        return isinstance(error, TRANSIENT_EXCEPTIONS)

    def backoff(self, job_id: str, attempt: int) -> float:
        """Seconds to pause before re-running ``job_id``.

        ``attempt`` is the 1-based attempt that just failed.
        Deterministic in ``(seed, job_id, attempt)``.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = min(
            self.backoff_base * self.backoff_factor ** (attempt - 1),
            self.backoff_max,
        )
        token = f"{self.seed}/{job_id}/{attempt}".encode("utf-8")
        digest = hashlib.sha256(token).digest()
        uniform = int.from_bytes(digest[:8], "big") / 2.0**64
        return base * (1.0 + self.jitter * uniform)


# ----------------------------------------------------------------------
# per-job outcome accounting
# ----------------------------------------------------------------------

#: Outcome statuses, in "how did this job end" order.
STATUS_SUCCEEDED = "succeeded"
STATUS_RETRIED = "retried"  # succeeded, but needed > 1 attempt
STATUS_CACHED = "cached"  # result served from the run store
STATUS_QUARANTINED = "quarantined"  # permanently failed, kept aside
STATUS_SKIPPED = "skipped"  # a dependency was quarantined/skipped


@dataclass
class JobOutcome:
    """How one job ended: status, attempts, and the terminal error."""

    job_id: str
    status: str
    attempts: int = 1
    error: str | None = None
    error_type: str | None = None
    blocked_by: str | None = None

    @classmethod
    def failure(cls, job_id: str, status: str, attempts: int, error):
        return cls(
            job_id=job_id,
            status=status,
            attempts=attempts,
            error=repr(error),
            error_type=type(error).__name__,
        )


class SweepReport:
    """Per-job outcomes of one fault-tolerant sweep.

    ``ok`` is True when every job produced a result (freshly, after
    retries, or from the store).  ``run_experiments.py`` exits nonzero
    on ``not ok`` while still publishing every surviving arm.
    """

    def __init__(self):
        self.outcomes: dict = {}

    def record(self, outcome: JobOutcome) -> None:
        self.outcomes[outcome.job_id] = outcome

    def _with_status(self, *statuses) -> list:
        return [
            job_id
            for job_id, outcome in self.outcomes.items()
            if outcome.status in statuses
        ]

    @property
    def succeeded(self) -> list:
        return self._with_status(STATUS_SUCCEEDED, STATUS_RETRIED, STATUS_CACHED)

    @property
    def retried(self) -> list:
        return self._with_status(STATUS_RETRIED)

    @property
    def quarantined(self) -> list:
        return self._with_status(STATUS_QUARANTINED)

    @property
    def skipped(self) -> list:
        return self._with_status(STATUS_SKIPPED)

    @property
    def ok(self) -> bool:
        return not self.quarantined and not self.skipped

    def merge(self, other: "SweepReport") -> None:
        """Fold another sweep's outcomes into this report."""
        self.outcomes.update(other.outcomes)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "jobs": {
                job_id: {
                    "status": outcome.status,
                    "attempts": outcome.attempts,
                    "error": outcome.error,
                    "error_type": outcome.error_type,
                    "blocked_by": outcome.blocked_by,
                }
                for job_id, outcome in self.outcomes.items()
            },
        }

    def summary(self) -> str:
        """One-paragraph human summary for logs and CLI output."""
        lines = [
            f"sweep report: {len(self.succeeded)} succeeded "
            f"({len(self.retried)} after retries), "
            f"{len(self.quarantined)} quarantined, "
            f"{len(self.skipped)} skipped downstream"
        ]
        for job_id in self.quarantined:
            outcome = self.outcomes[job_id]
            lines.append(
                f"  quarantined {job_id}: {outcome.error} "
                f"(after {outcome.attempts} attempt(s))"
            )
        for job_id in self.skipped:
            outcome = self.outcomes[job_id]
            lines.append(
                f"  skipped {job_id}: depends on {outcome.blocked_by}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SweepReport(succeeded={len(self.succeeded)}, "
            f"quarantined={len(self.quarantined)}, "
            f"skipped={len(self.skipped)})"
        )
