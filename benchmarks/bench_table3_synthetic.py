"""Table III: reward comparison on the five synthetic systems.

Runs all four methods per case and computes the paper's headline
aggregate (RLPlanner(RND) improvement over the two TAP-2.5D variants).
"""

import json
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.experiments.report import format_comparison, format_table
from repro.experiments.runner import run_all_methods
from repro.experiments.table3 import improvement_summary
from repro.systems import get_benchmark

ARTIFACT_DIR = Path("bench_results")
_collected = []


@pytest.mark.parametrize("case", [1, 2, 3, 4, 5])
def test_table3_case(benchmark, bench_budget, case):
    spec = get_benchmark(f"synthetic{case}")
    results = benchmark.pedantic(
        run_all_methods,
        args=(spec, bench_budget),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(results, title=f"Table III — case {case}"))
    print(format_comparison(results, spec.paper_reference, spec.name))
    _collected.extend(results)

    by_method = {r.method: r for r in results}
    assert len(by_method) == 4
    for res in results:
        assert res.reward < 0.0


def test_table3_summary(benchmark):
    """Aggregate across the collected cases (paper: +20.28 % / +9.25 %)."""
    if not _collected:
        pytest.skip("per-case benches did not run")
    summary = benchmark.pedantic(
        improvement_summary, args=(_collected,), rounds=1, iterations=1
    )
    print()
    print(
        f"RLPlanner(RND) vs TAP-2.5D(HotSpot):    "
        f"{summary['rnd_vs_hotspot_pct']:+.2f}%  (paper +20.28% over 8 cases)"
    )
    print(
        f"RLPlanner(RND) vs TAP-2.5D*(FastThermal): "
        f"{summary['rnd_vs_fast_pct']:+.2f}%  (paper +9.25%)"
    )
    ARTIFACT_DIR.mkdir(exist_ok=True)
    (ARTIFACT_DIR / "table3.json").write_text(
        json.dumps(
            {
                "results": [asdict(r) for r in _collected],
                "summary": summary,
                "paper_summary": {
                    "rnd_vs_hotspot_pct": 20.28,
                    "rnd_vs_fast_pct": 9.25,
                },
            },
            indent=2,
            default=str,
        )
    )
