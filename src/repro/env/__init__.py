"""Sequential chiplet-placement MDP (single-episode and lockstep-batched)."""

from repro.env.batched_env import BatchedFloorplanEnv, BatchedStepResult
from repro.env.floorplan_env import EnvConfig, FloorplanEnv, StepResult
from repro.env.mask import feasible_cells, feasible_cells_batch
from repro.env.state import ObservationBuilder

__all__ = [
    "EnvConfig",
    "FloorplanEnv",
    "StepResult",
    "BatchedFloorplanEnv",
    "BatchedStepResult",
    "feasible_cells",
    "feasible_cells_batch",
    "ObservationBuilder",
]
