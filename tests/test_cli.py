"""CLI tests (heavy experiment paths are monkeypatched)."""

import json

import pytest

import repro.cli as cli
from repro.experiments import ExperimentBudget, MethodResult


@pytest.fixture
def fake_results():
    return [
        MethodResult(
            system="multi_gpu",
            method="RLPlanner",
            reward=-10.0,
            wirelength=1000.0,
            temperature_c=80.0,
            runtime_s=1.0,
        )
    ]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            cli.main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            cli.main(["frobnicate"])

    def test_train_requires_known_benchmark(self):
        with pytest.raises(SystemExit):
            cli.main(["train", "not_a_benchmark"])


class TestBudgetConstruction:
    def test_custom_budget_passed(self, monkeypatch, fake_results):
        captured = {}

        def fake_run_table1(budget, **kwargs):
            captured["budget"] = budget
            return fake_results

        monkeypatch.setattr(cli, "run_table1", fake_run_table1)
        cli.main(["table1", "--epochs", "5", "--grid", "16", "--seed", "3"])
        budget = captured["budget"]
        assert budget.rl_epochs == 5
        assert budget.grid_size == 16
        assert budget.seed == 3
        # Defaults since PR 2: batched collection and multi-chain SA.
        assert budget.rollout_batch_size == 16
        assert budget.sa_chains == 16
        # PR 4 knobs default off.
        assert budget.sa_incremental is False
        assert budget.hotspot_reuse_factorization is False

    def test_batch_size_flag(self, monkeypatch, fake_results):
        captured = {}

        def fake_run_table1(budget, **kwargs):
            captured["budget"] = budget
            return fake_results

        monkeypatch.setattr(cli, "run_table1", fake_run_table1)
        cli.main(["table1", "--batch-size", "8", "--sa-chains", "4"])
        assert captured["budget"].rollout_batch_size == 8
        assert captured["budget"].sa_chains == 4

    def test_jobs_auto_resolves_to_cpu_count(self, monkeypatch, fake_results):
        captured = {}

        def fake_run_table1(budget, jobs=1, store=None, **kwargs):
            captured["jobs"] = jobs
            captured["store"] = store
            return fake_results

        monkeypatch.setattr(cli, "run_table1", fake_run_table1)
        cli.main(["table1", "--jobs", "auto"])
        assert isinstance(captured["jobs"], int)
        assert captured["jobs"] >= 1
        assert captured["store"] is None  # no --resume, no store

    def test_resume_builds_store(self, monkeypatch, fake_results, tmp_path):
        captured = {}

        def fake_run_table1(budget, jobs=1, store=None, **kwargs):
            captured["store"] = store
            return fake_results

        monkeypatch.setattr(cli, "run_table1", fake_run_table1)
        cli.main(
            ["table1", "--resume", "--store-dir", str(tmp_path / "rs")]
        )
        assert captured["store"] is not None
        assert captured["store"].root == tmp_path / "rs"

    def test_sequential_engines_still_selectable(
        self, monkeypatch, fake_results
    ):
        captured = {}

        def fake_run_table1(budget, **kwargs):
            captured["budget"] = budget
            return fake_results

        monkeypatch.setattr(cli, "run_table1", fake_run_table1)
        cli.main(["table1", "--batch-size", "1", "--sa-chains", "1"])
        assert captured["budget"].rollout_batch_size == 1
        assert captured["budget"].sa_chains == 1

    def test_sa_incremental_and_reuse_lu_flags(
        self, monkeypatch, fake_results
    ):
        captured = {}

        def fake_run_table1(budget, **kwargs):
            captured["budget"] = budget
            return fake_results

        monkeypatch.setattr(cli, "run_table1", fake_run_table1)
        cli.main(
            [
                "table1",
                "--sa-chains",
                "1",
                "--sa-incremental",
                "--hotspot-reuse-lu",
            ]
        )
        assert captured["budget"].sa_incremental is True
        assert captured["budget"].hotspot_reuse_factorization is True

    def test_jobs_flag_forwarded(self, monkeypatch, fake_results):
        captured = {}

        def fake_run_table1(budget, jobs=1, **kwargs):
            captured["jobs"] = jobs
            return fake_results

        monkeypatch.setattr(cli, "run_table1", fake_run_table1)
        cli.main(["table1", "--jobs", "4"])
        assert captured["jobs"] == 4

    def test_paper_scale_flag(self, monkeypatch, fake_results):
        captured = {}
        monkeypatch.setattr(
            cli,
            "run_table3",
            lambda budget, **kwargs: captured.setdefault("b", budget)
            or fake_results,
        )
        cli.main(["table3", "--paper-scale"])
        assert captured["b"] == ExperimentBudget.paper_scale()


class TestCommands:
    def test_table1_with_output(self, monkeypatch, fake_results, tmp_path):
        monkeypatch.setattr(
            cli, "run_table1", lambda budget, **kwargs: fake_results
        )
        out = tmp_path / "t1.json"
        assert cli.main(["table1", "--output", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["results"][0]["method"] == "RLPlanner"

    def test_table2_with_output(self, monkeypatch, tmp_path, capsys):
        class FakeResult:
            metrics = {"mse": 0.1, "rmse": 0.3, "mae": 0.2, "mape": 0.05, "n": 4}
            speedup = 100.0
            n_systems = 4

            def format(self):
                return "FAKE TABLE2"

        captured = {}

        def fake_run_table2(n_systems, seed, jobs=1, store=None, **kwargs):
            captured["jobs"] = jobs
            captured["store"] = store
            return FakeResult()

        monkeypatch.setattr(cli, "run_table2", fake_run_table2)
        out = tmp_path / "t2.json"
        assert (
            cli.main(
                ["table2", "--systems", "4", "--jobs", "2", "--output", str(out)]
            )
            == 0
        )
        assert "FAKE TABLE2" in capsys.readouterr().out
        assert json.loads(out.read_text())["speedup"] == 100.0
        assert captured["jobs"] == 2

    def test_train_dispatch(self, monkeypatch, fake_results, capsys):
        captured = {}

        def fake_run_all(spec, budget, methods):
            captured["methods"] = methods
            return fake_results

        monkeypatch.setattr(cli, "run_all_methods", fake_run_all)
        assert cli.main(["train", "multi_gpu", "--rnd"]) == 0
        assert captured["methods"] == ("RLPlanner(RND)",)
        assert "RLPlanner" in capsys.readouterr().out

    def test_sa_dispatch_variants(self, monkeypatch, fake_results):
        captured = {}

        def fake_run_all(spec, budget, methods):
            captured.setdefault("calls", []).append(methods)
            return fake_results

        monkeypatch.setattr(cli, "run_all_methods", fake_run_all)
        cli.main(["sa", "cpu_dram"])
        cli.main(["sa", "cpu_dram", "--thermal", "fast"])
        assert captured["calls"] == [
            ("TAP-2.5D(HotSpot)",),
            ("TAP-2.5D*(FastThermal)",),
        ]

    def test_ablations_dispatch(self, monkeypatch, fake_results):
        captured = {}

        def fake_run_ablations(budget, jobs=1, store=None, **kwargs):
            captured["jobs"] = jobs
            return fake_results

        monkeypatch.setattr(cli, "run_ablations", fake_run_ablations)
        assert cli.main(["ablations", "--jobs", "2"]) == 0
        assert captured["jobs"] == 2
