"""The :class:`Chiplet` die description."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import Rect

__all__ = ["Chiplet"]


@dataclass(frozen=True)
class Chiplet:
    """One die in a 2.5D system.

    Attributes
    ----------
    name:
        Unique identifier within a system (e.g. ``"gpu0"``).
    width, height:
        Footprint in mm.
    power:
        Total dissipated power in W, assumed uniform over the footprint
        (the granularity the paper's evaluation works at).
    kind:
        Free-form category tag (``"gpu"``, ``"hbm"``, ``"cpu"``, ...);
        used by benchmark definitions and reports, not by algorithms.
    rotatable:
        Whether the placer may swap width/height.
    """

    name: str
    width: float
    height: float
    power: float
    kind: str = "generic"
    rotatable: bool = True
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("chiplet needs a non-empty name")
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"chiplet {self.name!r} needs positive size")
        if self.power < 0:
            raise ValueError(f"chiplet {self.name!r} has negative power")

    @property
    def area(self) -> float:
        """Footprint area in mm^2."""
        return self.width * self.height

    @property
    def power_density(self) -> float:
        """W per mm^2 over the footprint."""
        return self.power / self.area

    def footprint(self, x: float, y: float, rotated: bool = False) -> Rect:
        """Footprint rectangle with the lower-left corner at ``(x, y)``."""
        if rotated:
            return Rect(x, y, self.height, self.width)
        return Rect(x, y, self.width, self.height)

    def rotated_copy(self) -> "Chiplet":
        """A copy with width/height swapped (name and power unchanged)."""
        return Chiplet(
            name=self.name,
            width=self.height,
            height=self.width,
            power=self.power,
            kind=self.kind,
            rotatable=self.rotatable,
            metadata=dict(self.metadata),
        )
