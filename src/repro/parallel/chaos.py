"""Deterministic, seeded fault injection for the fault-tolerance layer.

Every failure path the scheduler/collector/store claim to survive must
be *demonstrable in CI*, not just arguable in review.  This module
plants named **injection points** on the hot paths::

    scheduler.job      — in the supervised worker, before the job runs
    collector.init     — in the collection pool's worker initializer
    collector.slice    — in the collection worker, before a slice runs
    collector.prefetch — same worker-side site, for slices dispatched
                         ahead of time by the async (pipelined) trainer
    store.write        — in RunStore, before an artifact is written
    transport.send     — in the socket transport, before a frame is sent
    transport.recv     — in the socket transport, around a frame read
    transport.accept   — in the coordinator, after accepting a connection

and fires configured faults at them:

* ``crash`` — ``SIGKILL`` the current process (a machine-death / OOM
  stand-in; the supervisor sees a dead worker, not an exception);
* ``hang``  — sleep far past any timeout (a straggler stand-in);
* ``raise`` — raise :class:`TransientChaosError` (an ``OSError``, so
  the retry policy classifies it transient) or
  :class:`DeterministicChaosError` (permanently failing job).
* ``delay`` — sleep ``delay_s`` then continue (network latency spike);
* ``drop`` / ``corrupt`` / ``disconnect`` — *network* faults.  These
  cannot be enacted by raising: the transport call site must skip the
  write, flip payload bytes, or close the socket itself.
  :func:`maybe_fail` therefore *returns* the fired mode string and the
  transport enacts it (non-transport call sites ignore the return
  value, so the modes are only meaningful at ``transport.*`` points).

Configuration travels through the ``RLPLANNER_CHAOS`` environment
variable — a JSON object or list of objects — so pool workers inherit
it across ``fork``/``spawn`` with no plumbing::

    RLPLANNER_CHAOS='{"point": "scheduler.job", "mode": "crash",
                      "match": "RLPlanner", "times": 1,
                      "dir": "/tmp/chaos"}'

``times`` bounds how often a spec fires (0 = unlimited).  With ``dir``
set, fire slots are claimed via ``O_CREAT|O_EXCL`` sentinel files in
that directory, so the bound holds **across every process of the
sweep** — "crash exactly one worker, once" is expressible and
deterministic.  Without ``dir`` the count is per-process.

Tests may bypass the environment with :func:`set_chaos`.  With no
configuration, :func:`maybe_fail` is a dictionary miss — the
production cost of the hooks is one ``os.environ.get`` per call site.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import time
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "CHAOS_ENV",
    "ChaosInjector",
    "ChaosSpec",
    "DeterministicChaosError",
    "TransientChaosError",
    "chaos_from_env",
    "maybe_fail",
    "set_chaos",
]

CHAOS_ENV = "RLPLANNER_CHAOS"

MODES = ("crash", "hang", "raise", "delay", "drop", "corrupt", "disconnect")

#: Modes the call site must enact itself (returned by ``maybe_fail``).
ENACTED_MODES = ("drop", "corrupt", "disconnect")

#: Injection points instrumented in this codebase (documentation +
#: validation; firing at an unknown point is a configuration typo).
KNOWN_POINTS = (
    "scheduler.job",
    "collector.init",
    "collector.slice",
    "collector.prefetch",
    "store.write",
    "transport.send",
    "transport.recv",
    "transport.accept",
)


class TransientChaosError(OSError):
    """Injected fault the retry policy classifies as transient."""


class DeterministicChaosError(RuntimeError):
    """Injected fault that reproduces on every attempt (never retried)."""


@dataclass(frozen=True)
class ChaosSpec:
    """One configured fault: where, what, how often.

    ``match`` is a substring filter on the injection point's *detail*
    string (e.g. the scheduler passes the job id, the collector the
    slice's start index) — empty matches everything.  ``times`` caps
    fires (0 = unlimited); ``dir`` makes the cap hold across processes
    via sentinel files.  ``hang_s`` is the sleep for ``hang`` mode, and
    ``error`` picks the exception family for ``raise`` mode.
    """

    point: str
    mode: str = "raise"
    match: str = ""
    times: int = 1
    error: str = "transient"  # "transient" | "deterministic"
    hang_s: float = 3600.0
    delay_s: float = 0.25
    dir: str | None = None

    def __post_init__(self):
        if self.mode not in MODES:
            raise ValueError(f"chaos mode must be one of {MODES}, got {self.mode!r}")
        if self.point not in KNOWN_POINTS:
            raise ValueError(
                f"unknown chaos point {self.point!r}; known: {KNOWN_POINTS}"
            )
        if self.mode in ENACTED_MODES and not self.point.startswith("transport."):
            raise ValueError(
                f"chaos mode {self.mode!r} is a network fault and only "
                f"fires at transport.* points, not {self.point!r}"
            )
        if self.error not in ("transient", "deterministic"):
            raise ValueError(f"chaos error must be transient|deterministic, got {self.error!r}")
        if self.times < 0:
            raise ValueError("times must be >= 0 (0 = unlimited)")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")


class ChaosInjector:
    """Evaluates configured :class:`ChaosSpec` s at injection points."""

    def __init__(self, specs):
        self.specs = tuple(specs)
        self._local_fires = [0] * len(self.specs)

    def _claim(self, index: int, spec: ChaosSpec) -> bool:
        """Reserve one fire slot for ``spec``; False when exhausted."""
        if spec.times == 0:
            return True
        if spec.dir is None:
            if self._local_fires[index] >= spec.times:
                return False
            self._local_fires[index] += 1
            return True
        root = Path(spec.dir)
        root.mkdir(parents=True, exist_ok=True)
        for slot in range(spec.times):
            sentinel = root / f"{spec.point}.{index}.{slot}"
            try:
                fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.write(fd, f"pid={os.getpid()}\n".encode("utf-8"))
            os.close(fd)
            return True
        return False

    def maybe_fail(self, point: str, detail: str = "") -> str | None:
        """Fire every matching spec at ``point``.

        Crash/hang/raise/delay faults are enacted here.  Network faults
        (:data:`ENACTED_MODES`) cannot be — skipping a write or closing
        a socket is the call site's job — so the first fired one is
        *returned* for the transport to enact.
        """
        action = None
        for index, spec in enumerate(self.specs):
            if spec.point != point or spec.match not in detail:
                continue
            if not self._claim(index, spec):
                continue
            fired = self._fire(spec, point, detail)
            if fired is not None and action is None:
                action = fired
        return action

    @staticmethod
    def _fire(spec: ChaosSpec, point: str, detail: str) -> str | None:
        message = f"chaos[{spec.mode}] at {point} ({detail or 'unmatched'})"
        print(message, file=sys.stderr, flush=True)
        if spec.mode == "crash":
            # SIGKILL ourselves: no cleanup, no exception transport —
            # exactly what a machine death looks like to the parent.
            os.kill(os.getpid(), signal.SIGKILL)
        if spec.mode == "hang":
            time.sleep(spec.hang_s)
            return None
        if spec.mode == "delay":
            time.sleep(spec.delay_s)
            return None
        if spec.mode in ENACTED_MODES:
            return spec.mode
        if spec.error == "deterministic":
            raise DeterministicChaosError(message)
        raise TransientChaosError(message)


def _parse(raw: str) -> ChaosInjector:
    document = json.loads(raw)
    if isinstance(document, dict):
        document = [document]
    return ChaosInjector([ChaosSpec(**entry) for entry in document])


# Programmatic override (tests) > environment.  The env parse is cached
# on the raw string so per-call overhead stays one dict lookup.
_OVERRIDE: ChaosInjector | None = None
_ENV_CACHE: tuple = (None, None)  # (raw string, injector)


def set_chaos(injector: ChaosInjector | None) -> None:
    """Install (or with ``None`` clear) a process-local injector."""
    global _OVERRIDE
    _OVERRIDE = injector


def chaos_from_env() -> ChaosInjector | None:
    """The active injector: the override, else ``RLPLANNER_CHAOS``."""
    global _ENV_CACHE
    if _OVERRIDE is not None:
        return _OVERRIDE
    raw = os.environ.get(CHAOS_ENV)
    if not raw:
        return None
    if _ENV_CACHE[0] != raw:
        _ENV_CACHE = (raw, _parse(raw))
    return _ENV_CACHE[1]


def maybe_fail(point: str, detail: str = "") -> str | None:
    """Injection-point hook; a no-op unless chaos is configured.

    Returns the fired network-fault mode (``drop`` / ``corrupt`` /
    ``disconnect``) for the transport call site to enact, else None.
    """
    injector = chaos_from_env()
    if injector is None:
        return None
    return injector.maybe_fail(point, detail)
