"""Ablations over the design choices DESIGN.md calls out.

* RND bonus on/off (also visible in Tables I/III)
* thermal evaluator inside the RL loop: fast model vs grid solver
* wirelength evaluator: bump assignment (greedy / hungarian) vs estimate
* placement grid resolution

Each ablation runs on synthetic case 1 with a small budget; results are
MethodResult rows whose ``method`` encodes the variant.

Every variant is a standalone, picklable job
(:func:`run_ablation_arm`) scheduled through :mod:`repro.parallel`,
exactly like the Table I/III method arms: ``jobs=1`` runs the variants
in their historical sequential order (bit for bit — each arm reloads
the same characterization tables from the disk cache), ``jobs=N`` fans
the independent variants over a process pool, and a run ``store`` skips
variants whose results are already published.
"""

from __future__ import annotations

import time

from repro.agent import RLPlannerTrainer, TrainerConfig
from repro.bumps import BumpAssigner
from repro.env import EnvConfig, FloorplanEnv
from repro.experiments.report import MethodResult
from repro.experiments.runner import (
    ExperimentBudget,
    as_store,
    budget_store_payload,
    build_evaluators,
    prewarm_thermal_tables,
    spec_fingerprint,
)
from repro.parallel import JobSpec, run_jobs
from repro.reward import RewardCalculator, RewardConfig
from repro.rl import RNDConfig
from repro.store import store_key
from repro.systems import get_benchmark
from repro.utils import get_logger

__all__ = ["ABLATION_VARIANTS", "run_ablation_arm", "run_ablations"]

_logger = get_logger("experiments.ablations")

#: Variant labels in their historical (sequential) execution order.
ABLATION_VARIANTS = (
    "rl/fast/base",
    "rl/fast/rnd",
    "rl/solver/base",
    "rl/fast/wl-estimate",
    "rl/fast/wl-hungarian",
    "rl/fast/grid16",
    "rl/fast/grid32",
)


def _train(spec, reward_calculator, budget, label, use_rnd=False, grid=None):
    env = FloorplanEnv(
        spec.system,
        reward_calculator,
        EnvConfig(grid_size=grid or budget.grid_size),
    )
    trainer = RLPlannerTrainer(
        env,
        TrainerConfig(
            epochs=budget.rl_epochs,
            episodes_per_epoch=budget.episodes_per_epoch,
            seed=budget.seed,
            use_rnd=use_rnd,
            rnd=RNDConfig(bonus_scale=0.5),
            log_every=0,
        ),
    )
    result = trainer.train()
    breakdown = result.best_breakdown
    return MethodResult(
        system=spec.name,
        method=label,
        reward=breakdown.reward,
        wirelength=breakdown.wirelength,
        temperature_c=breakdown.max_temperature_c,
        runtime_s=result.elapsed,
        extra={"epochs": result.epochs_run},
    )


def run_ablation_arm(
    variant: str, budget: ExperimentBudget, cache_dir=None
) -> MethodResult:
    """One standalone ablation variant — the scheduler's job unit.

    Self-contained like :func:`~repro.experiments.runner.run_method_arm`:
    it rebuilds its evaluators from the (bit-exact) thermal-table disk
    cache, so running variants in any worker in any order reproduces
    the historical sequential loop exactly.
    """
    spec = get_benchmark("synthetic1")
    evaluators = build_evaluators(spec, budget, cache_dir)
    _logger.info("ablation %s", variant)
    if variant == "rl/fast/base":
        return _train(spec, evaluators["reward_fast"], budget, variant)
    if variant == "rl/fast/rnd":
        return _train(
            spec, evaluators["reward_fast"], budget, variant, use_rnd=True
        )
    if variant == "rl/solver/base":
        # The whole point of the fast model: the solver-in-the-loop
        # variant gets the same *epoch* budget and pays the wall-clock
        # price.
        return _train(spec, evaluators["reward_solver"], budget, variant)
    if variant == "rl/fast/wl-estimate":
        estimate_reward = RewardCalculator(
            evaluators["fast_model"],
            RewardConfig(
                lambda_wl=spec.reward_config.lambda_wl,
                t_limit=spec.reward_config.t_limit,
                alpha=spec.reward_config.alpha,
                use_bump_assignment=False,
            ),
        )
        return _train(spec, estimate_reward, budget, variant)
    if variant == "rl/fast/wl-hungarian":
        hungarian_reward = RewardCalculator(
            evaluators["fast_model"],
            spec.reward_config,
            assigner=BumpAssigner(wire_group_size=8, method="hungarian"),
        )
        return _train(spec, hungarian_reward, budget, variant)
    if variant.startswith("rl/fast/grid"):
        grid = int(variant.removeprefix("rl/fast/grid"))
        return _train(
            spec, evaluators["reward_fast"], budget, variant, grid=grid
        )
    raise ValueError(f"unknown ablation variant {variant!r}")


def _ablation_store_key(spec, variant: str, budget: ExperimentBudget) -> str:
    return store_key(
        "ablation_arm",
        {
            "spec": spec_fingerprint(spec),
            "variant": variant,
            "budget": budget_store_payload(budget),
        },
    )


def run_ablations(
    budget: ExperimentBudget | None = None,
    cache_dir=None,
    verbose: bool = True,
    jobs: int = 1,
    store=None,
    policy=None,
    job_timeout: float | None = None,
    keep_going: bool = False,
    report=None,
) -> list:
    """Run all ablation variants on synthetic case 1.

    ``jobs=1`` preserves the historical sequential order bit for bit;
    ``jobs=N`` fans the independent variants over a process pool after
    a shared characterization prewarm.  ``store`` skips variants whose
    results are already published (resumable ablation sweeps).
    ``policy``/``job_timeout``/``keep_going``/``report`` are the
    :func:`repro.parallel.run_jobs` fault-tolerance knobs; quarantined
    variants drop out of the returned rows under ``keep_going``.
    """
    budget = budget or ExperimentBudget(rl_epochs=15)
    store = as_store(store)
    spec = get_benchmark("synthetic1")
    job_specs = [
        JobSpec(
            job_id="ablations/prewarm",
            fn=prewarm_thermal_tables,
            kwargs=dict(spec=spec, budget=budget, cache_dir=cache_dir),
        )
    ]
    job_specs.extend(
        JobSpec(
            job_id=f"ablations/{variant}",
            fn=run_ablation_arm,
            kwargs=dict(variant=variant, budget=budget, cache_dir=cache_dir),
            needs=("ablations/prewarm",),
            store_key=(
                _ablation_store_key(spec, variant, budget)
                if store is not None
                else None
            ),
        )
        for variant in ABLATION_VARIANTS
    )
    outcome = run_jobs(
        job_specs,
        jobs=jobs,
        store=store,
        policy=policy,
        job_timeout=job_timeout,
        keep_going=keep_going,
        report=report,
    )
    results = [
        outcome[f"ablations/{variant}"]
        for variant in ABLATION_VARIANTS
        if f"ablations/{variant}" in outcome
    ]

    if verbose:
        from repro.experiments.report import format_table

        print(format_table(results, title="Ablations (synthetic case 1)"))
    return results
