"""Characterize the fast thermal model and validate it against the solver.

Reproduces the Table II workflow on a handful of systems and renders the
thermal field of one placement, showing what the surrogate replaces.

Run:
    python examples/thermal_surrogate.py
"""

import numpy as np

from repro.baselines.random_search import random_legal_placement
from repro.systems.synthetic import (
    DATASET_INTERPOSER,
    DATASET_SIZES,
    synthetic_thermal_dataset,
)
from repro.thermal import (
    FastThermalModel,
    GridThermalSolver,
    ThermalConfig,
    characterize_tables,
    error_metrics,
)
from repro.viz import render_thermal_map


def main() -> None:
    config = ThermalConfig(r_convection=0.12)

    print("characterizing all dataset die sizes (one-time)...")
    sizes = [(w, h) for w in DATASET_SIZES for h in DATASET_SIZES]
    tables = characterize_tables(DATASET_INTERPOSER, sizes, config)
    fast_model = FastThermalModel(tables, config)
    solver = GridThermalSolver(DATASET_INTERPOSER, config)

    print("comparing on 20 random systems...")
    predictions, references = [], []
    solver_time = fast_time = 0.0
    last_result = None
    for system, placement in synthetic_thermal_dataset(20, seed=3):
        ref = solver.evaluate(placement)
        fast = fast_model.evaluate(placement)
        solver_time += ref.elapsed
        fast_time += fast.elapsed
        references.append(ref.max_temperature)
        predictions.append(fast.max_temperature)
        last_result = ref

    metrics = error_metrics(predictions, references)
    print(f"\nMAE  {metrics['mae']:.3f} K   RMSE {metrics['rmse']:.3f} K")
    print(
        f"solver {solver_time / 20 * 1e3:.0f} ms/eval, "
        f"fast {fast_time / 20 * 1e3:.2f} ms/eval "
        f"({solver_time / fast_time:.0f}x speedup)"
    )

    chip_layer = last_result.grid_temperatures[
        config.stack.chiplet_layer_index
    ]
    print("\nchiplet-layer temperature field of the last system (K):")
    print(render_thermal_map(chip_layer, width=50, height=20))


if __name__ == "__main__":
    main()
