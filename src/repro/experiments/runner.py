"""Shared machinery for the Table I / Table III comparisons.

Four methods, as in the paper:

* ``RLPlanner``          — PPO agent, fast thermal model in the loop
* ``RLPlanner(RND)``     — same, plus the RND exploration bonus
* ``TAP-2.5D(HotSpot)``  — SA baseline evaluating with the grid solver
* ``TAP-2.5D*(FastThermal)`` — SA baseline on the fast thermal model,
  wall-clock-matched to the RL training budget (the paper's asterisk)

Budgets are scaled-down by default so the whole suite runs in minutes;
``ExperimentBudget.paper_scale()`` restores the paper's 600-epoch regime.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from repro.agent import RLPlannerTrainer, TrainerConfig
from repro.baselines import TAP25DConfig, TAP25DPlacer
from repro.env import EnvConfig, FloorplanEnv
from repro.experiments.report import MethodResult
from repro.reward import RewardCalculator
from repro.rl import PPOConfig, RNDConfig
from repro.systems import BenchmarkSpec
from repro.thermal import FastThermalModel, GridThermalSolver
from repro.thermal.characterize import load_or_characterize
from repro.utils import get_logger

__all__ = ["ExperimentBudget", "build_evaluators", "run_all_methods"]

_logger = get_logger("experiments.runner")

DEFAULT_CACHE_DIR = Path(".cache/thermal_tables")


@dataclass(frozen=True)
class ExperimentBudget:
    """Knobs that trade fidelity for runtime.

    The defaults regenerate table *shapes* in minutes on a laptop CPU.
    """

    rl_epochs: int = 30
    episodes_per_epoch: int = 8
    grid_size: int = 24
    sa_iterations_hotspot: int = 250
    sa_time_matched: bool = True
    position_samples: tuple = (7, 7)
    seed: int = 0
    # Rollout batch width for RL episode collection (1 = the original
    # sequential engine; >1 = lockstep batched collection).  Batched
    # collection is the default since PR 2; the batched engine's
    # per-episode RNG streams produce different (equally valid)
    # trajectories than the golden-pinned sequential engine, which
    # remains available via rollout_batch_size=1.
    rollout_batch_size: int = 16
    # Lockstep annealing chains for both SA baselines: best-of-N chains
    # with one batched reward pass per step.  The fast-thermal arm
    # (TAP-2.5D*) vectorizes its table lookups across the chains; the
    # HotSpot arm (TAP-2.5D) solves all chains' candidates as one
    # multi-RHS block through a single factorization per step
    # (bitwise identical to sequential chains), so extra chains
    # amortize — rather than multiply — its dominant factorization
    # cost.  Both arms spread their total proposal budget over the
    # chains, keeping evaluation counts comparable across chain counts.
    sa_chains: int = 16

    @classmethod
    def paper_scale(cls) -> "ExperimentBudget":
        """The paper's regime (hours of CPU time)."""
        return cls(
            rl_epochs=600,
            episodes_per_epoch=16,
            grid_size=32,
            sa_iterations_hotspot=2000,
        )


def build_evaluators(spec: BenchmarkSpec, budget: ExperimentBudget, cache_dir=None):
    """Characterize tables and build both thermal evaluators + rewards."""
    cache_dir = DEFAULT_CACHE_DIR if cache_dir is None else Path(cache_dir)
    sizes = []
    for chiplet in spec.system.chiplets:
        sizes.append((chiplet.width, chiplet.height))
        if chiplet.rotatable:
            sizes.append((chiplet.height, chiplet.width))
    tables = load_or_characterize(
        spec.system.interposer,
        sizes,
        spec.thermal_config,
        position_samples=budget.position_samples,
        cache_dir=cache_dir,
    )
    fast_model = FastThermalModel(tables, spec.thermal_config)
    # Fresh factorization per call = HotSpot-like per-evaluation cost.
    # Multi-chain SA still amortizes: solve_footprints_many factorizes
    # once per batched call (one lockstep step), not once per candidate.
    solver = GridThermalSolver(spec.system.interposer, spec.thermal_config)
    reward_fast = RewardCalculator(fast_model, spec.reward_config)
    reward_solver = RewardCalculator(solver, spec.reward_config)
    return {
        "fast_model": fast_model,
        "solver": solver,
        "reward_fast": reward_fast,
        "reward_solver": reward_solver,
        "tables": tables,
    }


def _run_rl(spec, reward_calculator, budget, use_rnd: bool) -> MethodResult:
    env = FloorplanEnv(
        spec.system,
        reward_calculator,
        EnvConfig(grid_size=budget.grid_size),
    )
    trainer = RLPlannerTrainer(
        env,
        TrainerConfig(
            epochs=budget.rl_epochs,
            episodes_per_epoch=budget.episodes_per_epoch,
            batch_size=budget.rollout_batch_size,
            seed=budget.seed,
            use_rnd=use_rnd,
            rnd=RNDConfig(bonus_scale=0.5),
            ppo=PPOConfig(),
            log_every=0,
        ),
    )
    result = trainer.train()
    breakdown = result.best_breakdown
    method = "RLPlanner(RND)" if use_rnd else "RLPlanner"
    if breakdown is None:
        # Every episode deadlocked (possible on tight packings at very
        # small budgets); report the deadlock penalty honestly.
        return MethodResult(
            system=spec.name,
            method=method,
            reward=result.best_reward,
            wirelength=float("nan"),
            temperature_c=float("nan"),
            runtime_s=result.elapsed,
            extra={
                "epochs": result.epochs_run,
                "deadlocks": result.deadlock_count,
                "all_deadlocked": True,
            },
        )
    return MethodResult(
        system=spec.name,
        method=method,
        reward=breakdown.reward,
        wirelength=breakdown.wirelength,
        temperature_c=breakdown.max_temperature_c,
        runtime_s=result.elapsed,
        extra={
            "epochs": result.epochs_run,
            "deadlocks": result.deadlock_count,
        },
    )


def _run_sa(
    spec, reward_calculator, budget, variant: str, time_limit=None
) -> MethodResult:
    if variant == "TAP-2.5D(HotSpot)":
        # The grid solver's multi-RHS path solves every chain's
        # candidate through one factorization per lockstep step, so the
        # HotSpot arm spreads the same total proposal budget over
        # best-of-N chains (exactly N interleaved sequential runs,
        # bitwise) at a fraction of the sequential wall clock.
        n_chains = max(budget.sa_chains, 1)
        n_iterations = max(budget.sa_iterations_hotspot // n_chains, 1)
    else:
        # Fast model: spread the (cheap-evaluation) candidate budget
        # over best-of-N lockstep chains — same total proposal count,
        # one vectorized reward pass per step.
        n_chains = max(budget.sa_chains, 1)
        n_iterations = max(100 * budget.sa_iterations_hotspot // n_chains, 1)
    config = TAP25DConfig(
        n_iterations=n_iterations,
        time_limit=time_limit,
        seed=budget.seed,
        n_chains=n_chains,
    )
    placer = TAP25DPlacer(spec.system, reward_calculator, config)
    result = placer.run()
    return MethodResult(
        system=spec.name,
        method=variant,
        reward=result.breakdown.reward,
        wirelength=result.breakdown.wirelength,
        temperature_c=result.breakdown.max_temperature_c,
        runtime_s=result.elapsed,
        extra={"evaluations": result.n_evaluations, "sa_chains": n_chains},
    )


def run_all_methods(
    spec: BenchmarkSpec,
    budget: ExperimentBudget | None = None,
    cache_dir=None,
    methods: tuple = (
        "RLPlanner",
        "RLPlanner(RND)",
        "TAP-2.5D(HotSpot)",
        "TAP-2.5D*(FastThermal)",
    ),
) -> list:
    """Run the requested methods on one benchmark; returns MethodResults."""
    budget = budget or ExperimentBudget()
    evaluators = build_evaluators(spec, budget, cache_dir)
    results = []
    rl_elapsed = None

    if "RLPlanner" in methods:
        _logger.info("%s: RLPlanner", spec.name)
        res = _run_rl(spec, evaluators["reward_fast"], budget, use_rnd=False)
        rl_elapsed = res.runtime_s
        results.append(res)
    if "RLPlanner(RND)" in methods:
        _logger.info("%s: RLPlanner(RND)", spec.name)
        res = _run_rl(spec, evaluators["reward_fast"], budget, use_rnd=True)
        rl_elapsed = rl_elapsed or res.runtime_s
        results.append(res)
    if "TAP-2.5D(HotSpot)" in methods:
        _logger.info("%s: TAP-2.5D(HotSpot)", spec.name)
        results.append(
            _run_sa(
                spec,
                evaluators["reward_solver"],
                budget,
                "TAP-2.5D(HotSpot)",
            )
        )
    if "TAP-2.5D*(FastThermal)" in methods:
        _logger.info("%s: TAP-2.5D*(FastThermal)", spec.name)
        # The paper's asterisk: SA on the fast model gets a wall-clock
        # budget similar to RL training.
        time_limit = rl_elapsed if (budget.sa_time_matched and rl_elapsed) else None
        results.append(
            _run_sa(
                spec,
                evaluators["reward_fast"],
                budget,
                "TAP-2.5D*(FastThermal)",
                time_limit=time_limit,
            )
        )
    return results
