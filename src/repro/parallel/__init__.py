"""Process-level experiment sharding.

The experiment harness produces tens of independent, CPU-bound units of
work — one (benchmark x method) arm per Table I/III cell, one dataset
chunk per Table II shard — that PRs 1-3 made fast *inside* one process
but still ran strictly sequentially on one core.  This package spreads
them across a process pool:

* :mod:`repro.parallel.scheduler` — picklable job specs, dependency
  edges resolved in the parent (e.g. the wall-clock-matched SA arm
  receiving the measured RL runtime), ordered result collection, and a
  ``jobs=1`` in-process fallback that is bit-for-bit the sequential
  path.
* :mod:`repro.parallel.cache` — file locking and atomic-rename writes
  so workers share one on-disk artifact cache (the thermal
  characterization tables) instead of racing to recompute it.
"""

from repro.parallel.cache import FileLock, atomic_replace
from repro.parallel.scheduler import JobSpec, resolve_jobs, run_jobs

__all__ = ["FileLock", "JobSpec", "atomic_replace", "resolve_jobs", "run_jobs"]
