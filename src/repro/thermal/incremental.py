"""Incremental single-move fast path for :class:`FastThermalModel`.

A simulated-annealing proposal displaces, swaps or rotates one or two
chiplets and leaves the rest untouched — yet the full superposition
evaluation rebuilds every (die, die) coupling term from scratch: O(n^2)
radial interpolations and anisotropy lookups per proposal.  The LTI
structure makes most of that redundant: moving die ``k`` only changes

* die ``k``'s own self field and sample points (it moved),
* the mutual contribution of ``k`` at every other die (one row), and
* the mutual contribution of every other die at ``k`` (one column).

This evaluator caches, per die, the sample points, the self field, the
blended radial profile, and the per-source mutual contribution arrays.
``evaluate(placement)`` diffs the placement against the cached one and
recomputes only the terms touched by the moved dies — O(moved x n)
table lookups instead of O(n^2).  Because annealing always proposes
from the current state, consecutive evaluated candidates differ by a
bounded number of dies (<= 4: undo of a rejected swap plus a new swap),
so the delta path stays small regardless of run length.

Per-die mutual sums are maintained as running totals (``+= new - old``),
which accumulates float drift of order 1e-12 relative to the full
evaluation; a full refresh every :data:`REFRESH_INTERVAL` updates keeps
the worst case far below the 1e-9 exactness bound the regression test
enforces.  The path is opt-in (``FastThermalModel(...,
incremental=True)``) because results are not bitwise identical to the
full evaluation.
"""

from __future__ import annotations

import time

import numpy as np

from repro.chiplet import Placement
from repro.thermal.result import ThermalResult

__all__ = ["IncrementalEvaluator", "REFRESH_INTERVAL"]

# Full recomputation cadence of the running mutual sums (drift control).
REFRESH_INTERVAL = 512


class _DieCache:
    """Cached thermal terms of one placed die."""

    __slots__ = (
        "position",
        "tables",
        "points",
        "self_field",
        "center",
        "radial",
        "contrib",
        "mutual_sum",
    )

    def __init__(self):
        self.position = None  # (x, y, rotated) as stored by Placement
        self.tables = None  # SizeTables for the current orientation
        self.points = None  # (P, 2) absolute sample-cell coordinates
        self.self_field = None  # (P,) self rise in K
        self.center = None  # (cx, cy)
        self.radial = None  # blended radial profile (as a source)
        self.contrib = {}  # source name -> (P,) mutual rise in K
        self.mutual_sum = None  # (P,) running total of contrib values


class IncrementalEvaluator:
    """Delta-evaluating companion of one :class:`FastThermalModel`.

    Not thread-safe and deliberately private to its model: the model
    owns one instance and routes ``evaluate`` through it when its
    ``incremental`` flag is set.
    """

    def __init__(self, model):
        self.model = model
        self._system = None
        self._names: list = []
        self._powers: dict = {}
        self._dies: dict = {}
        self._temps: dict = {}
        self._updates_since_refresh = 0

    # ------------------------------------------------------------------
    # public entry
    # ------------------------------------------------------------------

    def evaluate(self, placement: Placement) -> ThermalResult:
        """Thermal result via cached deltas (rebuilds when they can't apply)."""
        start = time.perf_counter()
        positions = placement.positions
        names = list(positions)
        if not names:
            return ThermalResult(
                {}, self.model.config.ambient, elapsed=time.perf_counter() - start
            )
        # Powers and die sizes live on the system, so a different system
        # object (even one reusing die names on the same package) must
        # invalidate the whole cache, not just position diffs.
        if placement.system is not self._system or set(names) != set(
            self._names
        ):
            self._rebuild(placement, names)
        else:
            moved = [
                n for n in names if positions[n] != self._dies[n].position
            ]
            # A delta costs O(moved x n); past half the dies the full
            # rebuild is both cheaper and drift-free.
            if len(moved) > max(4, len(names) // 2):
                self._rebuild(placement, names)
            elif moved:
                self._apply_moves(placement, moved)
                self._updates_since_refresh += 1
                if self._updates_since_refresh >= REFRESH_INTERVAL:
                    self._refresh_sums()
        temps = {name: self._temps[name] for name in names}
        return ThermalResult(
            chiplet_temperatures=temps,
            max_temperature=max(temps.values()),
            grid_temperatures=None,
            elapsed=time.perf_counter() - start,
            metadata={"method": "fast_lti_incremental"},
        )

    # ------------------------------------------------------------------
    # cache construction
    # ------------------------------------------------------------------

    def _source_terms(self, cache: _DieCache, name: str, placement) -> None:
        """Refresh a die's own geometry-dependent terms from the placement."""
        rect = placement.footprint(name)
        st = self.model.tables.for_size(rect.w, rect.h)
        cache.position = placement.positions[name]
        cache.tables = st
        cache.center = (rect.cx, rect.cy)
        cache.points = st.sample_offsets() + np.array([rect.x, rect.y])
        cache.self_field = (
            st.r_self_at(rect.cx, rect.cy)
            * self._powers[name]
            * st.profile.ravel()
        )
        cache.radial = st.mutual_profile(rect.cx, rect.cy)

    def _mutual_contrib(self, victim: _DieCache, source: _DieCache, power):
        """Source's mutual rise at the victim's sample points (K)."""
        st = source.tables
        dist = np.hypot(
            victim.points[:, 0] - source.center[0],
            victim.points[:, 1] - source.center[1],
        )
        return (
            np.interp(dist, st.mut_distances, source.radial)
            + st.mut_delta_at(victim.points)
        ) * power

    def _rebuild(self, placement: Placement, names: list) -> None:
        """Full cache construction (same term order as the full path)."""
        system = placement.system
        self._system = system
        self._names = names
        self._powers = {n: system.chiplet(n).power for n in names}
        self._dies = {n: _DieCache() for n in names}
        for name in names:
            self._source_terms(self._dies[name], name, placement)
        for name in names:
            victim = self._dies[name]
            victim.contrib = {
                other: self._mutual_contrib(
                    victim, self._dies[other], self._powers[other]
                )
                for other in names
                if other != name and self._powers[other] > 0.0
            }
        self._refresh_sums()
        self._updates_since_refresh = 0

    def _refresh_sums(self) -> None:
        """Recompute every running mutual sum in canonical die order."""
        for name in self._names:
            die = self._dies[name]
            total = np.zeros(len(die.points))
            for other in self._names:
                if other in die.contrib:
                    total += die.contrib[other]
            die.mutual_sum = total
            self._temps[name] = self._die_temperature(die)
        self._updates_since_refresh = 0

    def _die_temperature(self, die: _DieCache) -> float:
        return self.model.config.ambient + float(
            (die.self_field + die.mutual_sum).max()
        )

    # ------------------------------------------------------------------
    # the delta path
    # ------------------------------------------------------------------

    def _apply_moves(self, placement: Placement, moved: list) -> None:
        touched = set(moved)
        # 1. Refresh the moved dies' own source terms first so moved-vs-
        #    moved pair terms use both new positions.
        for name in moved:
            self._source_terms(self._dies[name], name, placement)
        # 2. Moved dies as sources: patch their one contribution at every
        #    unmoved victim via the running sum.
        for name in moved:
            source = self._dies[name]
            if self._powers[name] <= 0.0:
                continue
            for other in self._names:
                if other == name or other in touched:
                    continue
                victim = self._dies[other]
                fresh = self._mutual_contrib(victim, source, self._powers[name])
                victim.mutual_sum += fresh - victim.contrib[name]
                victim.contrib[name] = fresh
        # 3. Moved dies as victims: their sample points changed, so every
        #    incoming contribution is recomputed and summed from scratch
        #    (ordered like the full path; no drift on these rows).
        for name in moved:
            victim = self._dies[name]
            victim.contrib = {
                other: self._mutual_contrib(
                    victim, self._dies[other], self._powers[other]
                )
                for other in self._names
                if other != name and self._powers[other] > 0.0
            }
            total = np.zeros(len(victim.points))
            for other in self._names:
                if other in victim.contrib:
                    total += victim.contrib[other]
            victim.mutual_sum = total
        # 4. Re-derive every temperature (each is one max over the die's
        #    sample cells; the expensive table lookups happened above).
        for name in self._names:
            self._temps[name] = self._die_temperature(self._dies[name])
