"""Random network distillation (Burda et al., 2018).

A fixed randomly initialized *target* network embeds observations; a
*predictor* network is trained to match it on visited states.  The
prediction error is high on novel states, so it serves as an intrinsic
exploration bonus.  Inputs and bonuses are normalized with running
statistics exactly as in the original recipe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import Adam, Linear, Module, ReLU, Sequential, Tensor, no_grad
from repro.rl.running_stats import RunningMeanStd

__all__ = ["RNDConfig", "RandomNetworkDistillation"]


@dataclass(frozen=True)
class RNDConfig:
    """RND hyperparameters."""

    embed_dim: int = 64
    hidden_dim: int = 256
    learning_rate: float = 1e-4
    bonus_scale: float = 1.0
    obs_clip: float = 5.0

    def __post_init__(self) -> None:
        if self.embed_dim < 1 or self.hidden_dim < 1:
            raise ValueError("network dims must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")


class _MLP(Module):
    def __init__(self, in_dim, hidden, out_dim, depth, rng):
        layers = [Linear(in_dim, hidden, rng=rng), ReLU()]
        for _ in range(depth - 1):
            layers += [Linear(hidden, hidden, rng=rng), ReLU()]
        layers.append(Linear(hidden, out_dim, gain=1.0, rng=rng))
        self.net = Sequential(*layers)

    def forward(self, x):
        return self.net(x)


class RandomNetworkDistillation:
    """Intrinsic-reward module over flattened observations.

    Parameters
    ----------
    obs_dim:
        Flattened observation size.
    config:
        Hyperparameters.
    rng:
        Source of the (frozen) target weights and predictor init.
    """

    def __init__(
        self,
        obs_dim: int,
        config: RNDConfig | None = None,
        rng: np.random.Generator = None,
    ):
        self.config = config or RNDConfig()
        rng = rng or np.random.default_rng()
        cfg = self.config
        # Target is deeper than the predictor per the original paper's
        # observation that an over-parameterized predictor cheats.
        self.target = _MLP(obs_dim, cfg.hidden_dim, cfg.embed_dim, depth=2, rng=rng)
        self.predictor = _MLP(obs_dim, cfg.hidden_dim, cfg.embed_dim, depth=1, rng=rng)
        for param in self.target.parameters():
            param.requires_grad = False
        self.optimizer = Adam(self.predictor.parameters(), lr=cfg.learning_rate)
        self.obs_stats = RunningMeanStd(shape=(obs_dim,))
        self.bonus_stats = RunningMeanStd(shape=())
        self.obs_dim = obs_dim

    # ------------------------------------------------------------------

    def _prepare(self, observations: np.ndarray, update_stats: bool) -> np.ndarray:
        flat = np.asarray(observations, dtype=np.float64).reshape(
            len(observations), -1
        )
        if flat.shape[1] != self.obs_dim:
            raise ValueError(
                f"observation dim {flat.shape[1]} != expected {self.obs_dim}"
            )
        if update_stats:
            self.obs_stats.update(flat)
        normalized = self.obs_stats.normalize(flat)
        return np.clip(normalized, -self.config.obs_clip, self.config.obs_clip)

    def raw_bonus(self, observations: np.ndarray, update_stats: bool = True) -> np.ndarray:
        """Unnormalized prediction error per observation."""
        prepared = self._prepare(observations, update_stats)
        with no_grad():
            target_embed = self.target(Tensor(prepared)).data
            predicted = self.predictor(Tensor(prepared)).data
        return ((predicted - target_embed) ** 2).mean(axis=1)

    def intrinsic_reward(
        self, observations: np.ndarray, update_stats: bool = True
    ) -> np.ndarray:
        """Normalized intrinsic bonus for a batch of observations."""
        bonus = self.raw_bonus(observations, update_stats)
        if update_stats:
            self.bonus_stats.update(bonus)
        normalized = self.bonus_stats.normalize(bonus, center=False)
        return self.config.bonus_scale * normalized

    def update(self, observations: np.ndarray) -> float:
        """One predictor training step on visited observations."""
        prepared = self._prepare(observations, update_stats=False)
        target_embed = Tensor(
            self.target(Tensor(prepared)).data
        )  # constant target
        predicted = self.predictor(Tensor(prepared))
        loss = ((predicted - target_embed) ** 2).mean()
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        return float(loss.item())
