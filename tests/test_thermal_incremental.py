"""Exactness of the incremental single-move thermal fast path.

The opt-in delta evaluator (``FastThermalModel(..., incremental=True)``)
must track the full superposition evaluation within 1e-9 degC over long
randomized move sequences — displacements, swaps and rotations, accepted
or not — on every bundled system shape, including cache rebuilds when
the die set changes and the periodic running-sum refresh.
"""

import numpy as np
import pytest

import repro.thermal.incremental as incremental
from repro.baselines import TAP25DConfig, TAP25DPlacer
from repro.baselines.random_search import random_legal_placement
from repro.chiplet import Placement
from repro.reward import RewardCalculator, RewardConfig
from repro.systems import synthetic_system
from repro.thermal import FastThermalModel, ThermalConfig, characterize_tables

TOLERANCE_C = 1e-9


def _paired_models(tables, config):
    return (
        FastThermalModel(tables, config),
        FastThermalModel(tables, config, incremental=True),
    )


def _assert_matches(full_model, inc_model, placement):
    full = full_model.evaluate(placement)
    fast = inc_model.evaluate(placement)
    assert fast.metadata["method"] == "fast_lti_incremental"
    assert fast.max_temperature == pytest.approx(
        full.max_temperature, abs=TOLERANCE_C
    )
    for name, temp in full.chiplet_temperatures.items():
        assert fast.chiplet_temperatures[name] == pytest.approx(
            temp, abs=TOLERANCE_C
        )


def _random_move_sequence(system, full_model, inc_model, calc, seed, n_moves):
    """Anneal-style proposals; every evaluated candidate is cross-checked."""
    placer = TAP25DPlacer(system, calc, TAP25DConfig())
    rng = np.random.default_rng(seed)
    current = placer.initial_placement()
    _assert_matches(full_model, inc_model, current)
    checked = 1
    while checked < n_moves:
        candidate = placer.propose(current, rng, checked / n_moves)
        if candidate is None:
            continue
        _assert_matches(full_model, inc_model, candidate)
        checked += 1
        if rng.random() < 0.6:  # mimic Metropolis acceptance
            current = candidate
    return checked


class TestIncrementalExactness:
    def test_small_system_move_sequence(
        self, small_system, small_tables, small_config
    ):
        full_model, inc_model = _paired_models(small_tables, small_config)
        calc = RewardCalculator(
            full_model, RewardConfig(lambda_wl=1e-4, use_bump_assignment=False)
        )
        checked = _random_move_sequence(
            small_system, full_model, inc_model, calc, seed=0, n_moves=50
        )
        assert checked == 50

    @pytest.mark.parametrize("system_seed", [2, 5])
    def test_synthetic_systems_move_sequences(self, system_seed, tmp_path):
        """Bundled synthetic-benchmark shape: more dies, mixed powers."""
        system = synthetic_system(seed=system_seed)
        config = ThermalConfig(rows=24, cols=24, package_margin=8.0)
        sizes = []
        for chiplet in system.chiplets:
            sizes.append((chiplet.width, chiplet.height))
            if chiplet.rotatable:
                sizes.append((chiplet.height, chiplet.width))
        tables = characterize_tables(
            system.interposer, sizes, config, position_samples=(3, 3)
        )
        full_model, inc_model = _paired_models(tables, config)
        calc = RewardCalculator(
            full_model, RewardConfig(use_bump_assignment=False)
        )
        checked = _random_move_sequence(
            system, full_model, inc_model, calc, seed=system_seed, n_moves=30
        )
        assert checked == 30

    def test_running_sum_refresh_path(
        self, small_system, small_tables, small_config, monkeypatch
    ):
        """Drift control: exercise the periodic full refresh explicitly."""
        monkeypatch.setattr(incremental, "REFRESH_INTERVAL", 7)
        full_model, inc_model = _paired_models(small_tables, small_config)
        calc = RewardCalculator(
            full_model, RewardConfig(lambda_wl=1e-4, use_bump_assignment=False)
        )
        checked = _random_move_sequence(
            small_system, full_model, inc_model, calc, seed=3, n_moves=40
        )
        assert checked == 40

    def test_rebuild_on_die_set_change(
        self, small_system, small_tables, small_config
    ):
        full_model, inc_model = _paired_models(small_tables, small_config)
        rng = np.random.default_rng(1)
        complete = random_legal_placement(small_system, rng)
        _assert_matches(full_model, inc_model, complete)
        partial = Placement(small_system)
        partial.place("hot", 4.0, 4.0)
        partial.place("warm", 20.0, 20.0)
        _assert_matches(full_model, inc_model, partial)
        _assert_matches(full_model, inc_model, complete)

    def test_many_dies_moved_triggers_rebuild(
        self, small_system, small_tables, small_config
    ):
        """Moving every die at once takes the rebuild path, not deltas."""
        full_model, inc_model = _paired_models(small_tables, small_config)
        rng = np.random.default_rng(4)
        first = random_legal_placement(small_system, rng)
        second = random_legal_placement(small_system, rng)
        _assert_matches(full_model, inc_model, first)
        _assert_matches(full_model, inc_model, second)

    def test_repeated_evaluation_is_stable(
        self, small_system, small_tables, small_config
    ):
        full_model, inc_model = _paired_models(small_tables, small_config)
        rng = np.random.default_rng(5)
        placement = random_legal_placement(small_system, rng)
        first = inc_model.evaluate(placement)
        second = inc_model.evaluate(placement)
        assert first.max_temperature == second.max_temperature

    def test_empty_placement(self, small_tables, small_config, small_system):
        _, inc_model = _paired_models(small_tables, small_config)
        result = inc_model.evaluate(Placement(small_system))
        assert result.chiplet_temperatures == {}

    def test_flag_off_by_default(self, small_tables, small_config):
        model = FastThermalModel(small_tables, small_config)
        assert model.incremental is False

    def test_single_chain_sa_run_end_to_end(
        self, small_system, small_tables, small_config
    ):
        """ROADMAP follow-up, end-to-end: incremental evaluation inside SA.

        A complete single-chain TAP-2.5D run whose reward calculator
        evaluates through the delta path must track the non-incremental
        run — final reward, winning placement, and the entire history
        trace — to 1e-9.  The unit-level exactness tests above evaluate
        each candidate fresh; only a full annealing run exercises the
        cache under the accept/reject revisiting pattern (rejected
        candidates followed by proposals from the unchanged current
        state), which is where a stale-cache bug would surface as a
        silently diverging trajectory.
        """
        results = {}
        for incremental in (False, True):
            model = FastThermalModel(
                small_tables, small_config, incremental=incremental
            )
            calc = RewardCalculator(
                model,
                RewardConfig(lambda_wl=1e-4, use_bump_assignment=False),
            )
            results[incremental] = TAP25DPlacer(
                small_system, calc, TAP25DConfig(n_iterations=150, seed=11)
            ).run()
        full, inc = results[False], results[True]
        assert inc.n_evaluations == full.n_evaluations
        assert inc.reward == pytest.approx(full.reward, abs=TOLERANCE_C)
        assert inc.placement.as_dict() == full.placement.as_dict()
        assert len(inc.history) == len(full.history)
        for column in ("best_cost", "current_cost", "temperature"):
            np.testing.assert_allclose(
                inc.history.column(column),
                full.history.column(column),
                rtol=0,
                atol=TOLERANCE_C,
            )

    def test_tap25d_incremental_flag_matches_full_run(
        self, small_system, small_tables, small_config
    ):
        """`TAP25DConfig(incremental=True)` — the PR-4 wiring of the delta
        path into single-chain SA — must reproduce the plain run to 1e-9
        without mutating the caller's (full-evaluation) calculator."""
        calc = RewardCalculator(
            FastThermalModel(small_tables, small_config),
            RewardConfig(lambda_wl=1e-4, use_bump_assignment=False),
        )
        base = TAP25DPlacer(
            small_system, calc, TAP25DConfig(n_iterations=120, seed=9)
        ).run()
        inc = TAP25DPlacer(
            small_system,
            calc,
            TAP25DConfig(n_iterations=120, seed=9, incremental=True),
        ).run()
        assert calc.thermal.incremental is False
        assert inc.n_evaluations == base.n_evaluations
        assert inc.reward == pytest.approx(base.reward, abs=TOLERANCE_C)
        assert inc.placement.as_dict() == base.placement.as_dict()

    def test_incremental_flag_ignored_without_fast_model(
        self, small_system, small_interposer
    ):
        """Solver-backed calculators have no delta path; the flag must
        degrade to the plain run instead of crashing."""
        from repro.thermal import GridThermalSolver

        config = ThermalConfig(rows=16, cols=16, package_margin=8.0)
        calc = RewardCalculator(
            GridThermalSolver(small_interposer, config),
            RewardConfig(lambda_wl=1e-4, use_bump_assignment=False),
        )
        result = TAP25DPlacer(
            small_system,
            calc,
            TAP25DConfig(n_iterations=5, seed=2, incremental=True),
        ).run()
        assert np.isfinite(result.reward)

    def test_sa_config_rejects_incremental_multichain(self):
        from repro.baselines import SAConfig

        with pytest.raises(ValueError, match="incremental"):
            SAConfig(incremental=True, n_chains=2)

    def test_system_change_invalidates_cache(
        self, small_system, small_tables, small_config
    ):
        """Same die names + same coordinates on a different system must
        not reuse the cached powers/sizes of the first system."""
        from repro.chiplet import Chiplet, ChipletSystem

        twin = ChipletSystem(
            "twin",
            small_system.interposer,
            tuple(
                Chiplet(c.name, c.width, c.height, c.power * 2.0, kind=c.kind)
                for c in small_system.chiplets
            ),
        )
        full_model, inc_model = _paired_models(small_tables, small_config)
        rng = np.random.default_rng(6)
        placement = random_legal_placement(small_system, rng)
        _assert_matches(full_model, inc_model, placement)
        twin_placement = Placement(twin, dict(placement.positions))
        _assert_matches(full_model, inc_model, twin_placement)
        assert inc_model.evaluate(
            twin_placement
        ).max_temperature > inc_model.evaluate(placement).max_temperature
