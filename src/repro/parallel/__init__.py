"""Process-level sharding: experiment arms and episode collection.

The experiment harness produces tens of independent, CPU-bound units of
work — one (benchmark x method) arm per Table I/III cell, one dataset
chunk per Table II shard — that PRs 1-3 made fast *inside* one process
but still ran strictly sequentially on one core.  This package spreads
them across process pools:

* :mod:`repro.parallel.scheduler` — picklable job specs, dependency
  edges resolved in the parent (e.g. the wall-clock-matched SA arm
  receiving the measured RL runtime), ordered result collection, and a
  ``jobs=1`` in-process fallback that is bit-for-bit the sequential
  path.
* :mod:`repro.parallel.collector` — distributed PPO episode collection
  *inside* one RL arm: a persistent worker pool that receives the
  policy weights once per epoch and collects contiguous slices of
  per-episode RNG streams, bitwise identical to in-process collection
  at any worker count.
* :mod:`repro.parallel.cache` — file locking and atomic-rename writes
  so workers share one on-disk artifact cache (the thermal
  characterization tables) instead of racing to recompute it.
* :mod:`repro.parallel.faults` — the shared fault model: transient vs
  deterministic classification, :class:`RetryPolicy` (exponential
  backoff with seeded jitter), and the per-job :class:`SweepReport`.
* :mod:`repro.parallel.chaos` — deterministic, seeded fault injection
  (crash/hang/raise at named points, plus network faults at
  ``transport.*`` points, via ``RLPLANNER_CHAOS``) so every failure
  path above is CI-testable.
* :mod:`repro.parallel.transport` — length-prefixed, checksummed TCP
  frames carrying the existing payload schema between machines.
* :mod:`repro.parallel.remote` — lease-based multi-machine episode
  collection: a coordinator with heartbeats, fencing and re-dispatch,
  the remote worker loop, and :class:`RemoteEpisodeCollector`.
"""

from repro.parallel.cache import FileLock, atomic_replace
from repro.parallel.faults import (
    JobOutcome,
    JobTimeoutError,
    RetryPolicy,
    SweepReport,
    WorkerCrashError,
    WorkerInitError,
)
from repro.parallel.scheduler import (
    JobFailedError,
    JobSpec,
    RemoteTraceback,
    resolve_collect_jobs,
    resolve_jobs,
    run_jobs,
)

__all__ = [
    "EpisodeCollector",
    "FileLock",
    "JobFailedError",
    "JobOutcome",
    "JobSpec",
    "JobTimeoutError",
    "RemoteEpisodeCollector",
    "RemoteTraceback",
    "RetryPolicy",
    "SweepReport",
    "WorkerCoordinator",
    "WorkerCrashError",
    "WorkerInitError",
    "atomic_replace",
    "collect_slice",
    "partition_episodes",
    "resolve_collect_jobs",
    "resolve_jobs",
    "run_jobs",
    "run_worker",
]

_COLLECTOR_EXPORTS = ("EpisodeCollector", "collect_slice", "partition_episodes")
_REMOTE_EXPORTS = ("RemoteEpisodeCollector", "WorkerCoordinator", "run_worker")


def __getattr__(name: str):
    # The collector and remote modules are re-exported lazily: both
    # import repro.nn, whose serialization module imports
    # repro.parallel.cache — an eager import here would close that
    # cycle while repro.nn is still initializing.
    if name in _COLLECTOR_EXPORTS:
        from repro.parallel import collector

        return getattr(collector, name)
    if name in _REMOTE_EXPORTS:
        from repro.parallel import remote

        return getattr(remote, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
