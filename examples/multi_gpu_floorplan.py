"""Floorplan the Multi-GPU benchmark with RLPlanner vs TAP-2.5D.

The workload the paper's Table I leads with: four GPU modules and eight
HBM stacks.  Trains RLPlanner with the fast thermal model, then runs the
SA baseline under the same wall-clock budget, and prints both layouts.

Run:
    python examples/multi_gpu_floorplan.py           # scaled-down budget
    python examples/multi_gpu_floorplan.py --full    # paper-scale (hours)
"""

import argparse

from repro.baselines import TAP25DConfig, TAP25DPlacer
from repro.agent import RLPlannerTrainer, TrainerConfig
from repro.env import EnvConfig, FloorplanEnv
from repro.experiments.runner import ExperimentBudget, build_evaluators
from repro.systems import get_benchmark
from repro.viz import render_floorplan


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--full", action="store_true", help="paper-scale budget")
    parser.add_argument("--epochs", type=int, default=30)
    args = parser.parse_args()

    spec = get_benchmark("multi_gpu")
    budget = (
        ExperimentBudget.paper_scale()
        if args.full
        else ExperimentBudget(rl_epochs=args.epochs)
    )
    print(f"system: {spec.description}")
    print(
        f"dies {spec.system.n_chiplets}, power {spec.system.total_power:.0f} W, "
        f"wires {spec.system.total_wires}"
    )
    evaluators = build_evaluators(spec, budget)

    print("\ntraining RLPlanner (fast thermal model in the loop)...")
    env = FloorplanEnv(
        spec.system, evaluators["reward_fast"], EnvConfig(grid_size=budget.grid_size)
    )
    trainer = RLPlannerTrainer(
        env,
        TrainerConfig(
            epochs=budget.rl_epochs,
            episodes_per_epoch=budget.episodes_per_epoch,
            seed=0,
            log_every=10,
        ),
    )
    rl = trainer.train()
    rl_breakdown = rl.best_breakdown
    print(
        f"RLPlanner: reward {rl.best_reward:.4f}, "
        f"WL {rl_breakdown.wirelength:.0f} mm, "
        f"T {rl_breakdown.max_temperature_c:.2f} C, {rl.elapsed:.0f} s"
    )

    print("\nrunning TAP-2.5D* (fast thermal model, time-matched)...")
    placer = TAP25DPlacer(
        spec.system,
        evaluators["reward_fast"],
        TAP25DConfig(n_iterations=10**6, time_limit=rl.elapsed, seed=0),
    )
    sa = placer.run()
    print(
        f"TAP-2.5D*: reward {sa.reward:.4f}, "
        f"WL {sa.breakdown.wirelength:.0f} mm, "
        f"T {sa.breakdown.max_temperature_c:.2f} C, {sa.elapsed:.0f} s"
    )

    print("\nRLPlanner floorplan:")
    print(render_floorplan(rl.best_placement))
    print("\nTAP-2.5D* floorplan:")
    print(render_floorplan(sa.placement))


if __name__ == "__main__":
    main()
