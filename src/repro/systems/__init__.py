"""Benchmark chiplet systems (paper Section III).

Three open-source-derived systems and a seeded synthetic generator.  The
cited publications do not ship machine-readable floorplans, so die
sizes/powers here follow their public descriptions (see each module's
docstring); per-system thermal and reward parameters are calibrated so
the reference metrics land in the paper's reported ranges, and every
number is overridable.
"""

from repro.systems.spec import BenchmarkSpec
from repro.systems.multi_gpu import multi_gpu_system
from repro.systems.cpu_dram import cpu_dram_system
from repro.systems.ascend910 import ascend910_system
from repro.systems.synthetic import (
    synthetic_case,
    synthetic_system,
    synthetic_thermal_dataset,
)

__all__ = [
    "BenchmarkSpec",
    "multi_gpu_system",
    "cpu_dram_system",
    "ascend910_system",
    "synthetic_system",
    "synthetic_case",
    "synthetic_thermal_dataset",
    "get_benchmark",
    "benchmark_names",
]

_REGISTRY = {
    "multi_gpu": multi_gpu_system,
    "cpu_dram": cpu_dram_system,
    "ascend910": ascend910_system,
}
for _i in range(1, 6):
    _REGISTRY[f"synthetic{_i}"] = (
        lambda case=_i: synthetic_case(case)
    )


def benchmark_names() -> list:
    """All registered benchmark identifiers."""
    return list(_REGISTRY)


def get_benchmark(name: str) -> BenchmarkSpec:
    """Build a benchmark spec by name (see :func:`benchmark_names`)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {benchmark_names()}"
        ) from None
    return factory()
